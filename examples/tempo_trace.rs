//! Observe HERMES tempo control live: run one simulated benchmark and
//! print the power time series (the raw material of the paper's
//! Figs. 19–22) side by side for the baseline and unified policies,
//! together with the tempo-residency breakdown.
//!
//! ```sh
//! cargo run --release --example tempo_trace [knn|ray|sort|compare|hull]
//! ```

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::sim::{MachineSpec, SimConfig};
use hermes::workloads::Benchmark;

fn sparkline(series: &[(f64, f64)], lo: f64, hi: f64, cols: usize) -> String {
    let glyphs = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let chunk = series.len().div_ceil(cols).max(1);
    series
        .chunks(chunk)
        .map(|c| {
            let avg = c.iter().map(|&(_, w)| w).sum::<f64>() / c.len() as f64;
            let x = ((avg - lo) / (hi - lo)).clamp(0.0, 1.0);
            glyphs[(x * (glyphs.len() - 1) as f64).round() as usize]
        })
        .collect()
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ray".into());
    let bench = Benchmark::all()
        .into_iter()
        .find(|b| b.label() == which)
        .unwrap_or(Benchmark::Ray);
    let machine = MachineSpec::system_a();
    let workers = 16;

    println!("{bench} on {}, {workers} workers\n", machine.name);
    let mut reports = Vec::new();
    for policy in [Policy::Baseline, Policy::Unified] {
        let tempo = TempoConfig::builder()
            .policy(policy)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(workers)
            .threshold_scale(0.55)
            .build();
        let r = hermes::sim::run(&bench.dag(3), &SimConfig::new(machine.clone(), tempo))
            .expect("valid configuration");
        reports.push((policy, r));
    }

    let hi = reports
        .iter()
        .flat_map(|(_, r)| r.power_series.iter().map(|&(_, w)| w))
        .fold(f64::MIN, f64::max);
    let lo = reports
        .iter()
        .flat_map(|(_, r)| r.power_series.iter().map(|&(_, w)| w))
        .fold(f64::MAX, f64::min);

    for (policy, r) in &reports {
        println!(
            "{:<9} {:>7.1} ms  {:>7.2} J  mean {:>5.1} W  EDP {:.3}",
            policy.label(),
            r.elapsed.seconds() * 1e3,
            r.metered_energy_j,
            r.mean_power_w,
            r.edp()
        );
        println!("  power |{}|", sparkline(&r.power_series, lo, hi, 70));
        let busy: f64 = r.sched.busy_seconds_at.iter().map(|(_, s)| s).sum();
        print!("  residency: ");
        for (f, s) in &r.sched.busy_seconds_at {
            if *s > 0.0 {
                print!("{f}: {:.0}%  ", s / busy * 100.0);
            }
        }
        println!();
        println!(
            "  steals {}  dvfs transitions {}  relays {}  guard hits {}\n",
            r.sched.steals, r.sched.dvfs_transitions, r.tempo.relays, r.tempo.guard_suppressions
        );
    }
    let (_, base) = &reports[0];
    let (_, uni) = &reports[1];
    println!(
        "unified vs baseline: {:.1}% energy saved, {:.1}% time lost",
        (1.0 - uni.metered_energy_j / base.metered_energy_j) * 100.0,
        (uni.elapsed.seconds() / base.elapsed.seconds() - 1.0) * 100.0
    );
}
