//! Topology probe: discover the host machine's core/domain/package
//! structure from sysfs (falling back to an emulated System B), then run
//! a short workload under each victim-selection policy and print the
//! steal-distance histogram each one produces.
//!
//! ```sh
//! cargo run --release --example topology_probe
//! ```

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::{parallel_for, Pool};
use hermes::telemetry::{RingSink, TelemetrySink};
use hermes::topology::{self, Topology, VictimPolicy};
use std::sync::Arc;

/// Per-element work heavy enough that thieves see stealable chunks even
/// on small hosts.
fn spin_work(x: &mut u64) {
    let mut acc = *x;
    for _ in 0..2_000 {
        acc = std::hint::black_box(acc.wrapping_mul(2654435761).rotate_left(7));
    }
    *x = acc;
}

fn main() {
    // ── 1. Discover (or emulate) the machine topology. ───────────────
    let topo = match topology::discover() {
        Ok(t) if t.cores() >= 2 => {
            println!("discovered host topology from sysfs: {}", t.summary());
            t
        }
        Ok(t) => {
            println!(
                "discovered host topology ({}) is too small to steal on",
                t.summary()
            );
            println!("falling back to an emulated System B (AMD FX-8150)");
            Topology::system_b()
        }
        Err(e) => {
            println!("{e}");
            println!("falling back to an emulated System B (AMD FX-8150)");
            Topology::system_b()
        }
    };
    // Pack enough workers that clock domains are shared when the
    // topology pairs cores — that is where victim policies differ.
    let workers = topo.cores().clamp(2, 8);
    println!("running {workers} workers on {}\n", topo.summary());

    // ── 2. One short run per victim policy. ──────────────────────────
    println!(
        "{:<18} {:>8} {:>13} steal-distance histogram",
        "policy", "steals", "same-domain"
    );
    for victim in VictimPolicy::all() {
        let sink = Arc::new(RingSink::new(workers));
        let tempo = TempoConfig::builder()
            .policy(Policy::Unified)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(workers)
            .build();
        let mut pool = Pool::builder()
            .workers(workers)
            .tempo(tempo)
            .topology(topo.clone())
            .victim_policy(victim)
            .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        for _ in 0..10 {
            let mut v: Vec<u64> = (0..20_000).collect();
            pool.install(|| parallel_for(&mut v, 64, spin_work));
            if pool.stats().steals >= 50 {
                break;
            }
        }
        // Freeze the pool before folding so counters and events agree.
        pool.stop();
        pool.flush_energy_telemetry();
        let report = sink
            .report(victim.label(), "rt", pool.elapsed_ns() as f64 / 1e9, 0.0)
            .with_steal_distances(&pool.worker_distances());
        let same_domain = report
            .same_domain_steal_fraction()
            .map_or("n/a".to_string(), |f| format!("{f:.3}"));
        println!(
            "{:<18} {:>8} {:>13} {:?}",
            victim.label(),
            report.totals().steals,
            same_domain,
            report.steal_distance_hist
        );
    }
    println!(
        "\n(distance 0 = same core, 1 = same clock domain, 2 = same package, 3 = cross-package)"
    );
}
