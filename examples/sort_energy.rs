//! Domain example: sort a large key array with the parallel radix and
//! sample sorts on the tempo-controlled runtime, and compare the
//! policies' simulated energy on the paper's System A.
//!
//! ```sh
//! cargo run --release --example sort_energy
//! ```

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::Pool;
use hermes::sim::{MachineSpec, SimConfig};
use hermes::workloads::{radix_sort, sample_sort, skewed_keys, uniform_keys, Benchmark};

fn main() {
    // ── Real algorithms on real threads ──────────────────────────────
    let workers = 4;
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build();
    let pool = Pool::builder()
        .workers(workers)
        .tempo(tempo)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .build();

    let n = 2_000_000;
    let mut uniform = uniform_keys(n, 1);
    let t0 = std::time::Instant::now();
    pool.install(|| radix_sort(&mut uniform));
    println!(
        "radix_sort   {n} uniform keys: {:?} (sorted: {})",
        t0.elapsed(),
        uniform.windows(2).all(|w| w[0] <= w[1])
    );

    let mut skewed = skewed_keys(n, 2);
    let t0 = std::time::Instant::now();
    pool.install(|| sample_sort(&mut skewed));
    println!(
        "sample_sort  {n} skewed keys:  {:?} (sorted: {})",
        t0.elapsed(),
        skewed.windows(2).all(|w| w[0] <= w[1])
    );
    println!(
        "steals: {}, tempo: {}",
        pool.stats().steals,
        pool.tempo_stats()
    );
    if let Some(j) = pool.total_energy() {
        println!("virtual energy: {j:.2} J");
    }

    // ── Paper-style measurement in the simulator ─────────────────────
    println!("\nSimulated Integer Sort on System A, 8 workers:");
    println!(
        "{:<10} {:>9} {:>10} {:>8}",
        "policy", "time", "energy", "EDP"
    );
    let dag = Benchmark::Sort.dag_scaled(7, 0.5);
    let mut baseline: Option<f64> = None;
    for policy in Policy::all() {
        let tempo = TempoConfig::builder()
            .policy(policy)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(8)
            .threshold_scale(0.55)
            .build();
        let r = hermes::sim::run(&dag, &SimConfig::new(MachineSpec::system_a(), tempo))
            .expect("valid configuration");
        let rel = baseline.map_or(1.0, |b| r.metered_energy_j / b);
        if policy == Policy::Baseline {
            baseline = Some(r.metered_energy_j);
        }
        println!(
            "{:<10} {:>7.1}ms {:>8.2}J {:>8.3}   ({:.1}% saved)",
            policy.label(),
            r.elapsed.seconds() * 1e3,
            r.metered_energy_j,
            r.edp(),
            (1.0 - rel) * 100.0
        );
    }
}
