//! 100,000 concurrent slow requests on a 4-worker pool.
//!
//! The demonstration `submit_async` exists for: every request sleeps on
//! a deterministic [`VirtualTimer`], so at the peak all 100k requests
//! are in flight *simultaneously* — something run-once closures could
//! never do, since each blocked request would pin a worker and the pool
//! has only four. A pending future occupies no worker: it parks its
//! waker on the timer and the task's heap header (a few hundred bytes)
//! is the entire footprint. Advancing virtual time wakes the whole
//! cohort through the normal waker path — re-queue onto the pool,
//! unpark workers — and the pool drains 100k completions.
//!
//! ```sh
//! cargo run --release --example async_serve
//! ```

use hermes::serve::{Server, SubmitOptions, VirtualTimer};
use std::time::Instant;

/// Resident set size in KiB, read from /proc (Linux); `None` elsewhere.
fn rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    const WORKERS: usize = 4;
    const REQUESTS: usize = 100_000;
    const SLEEP_NS: u64 = 1_000_000; // 1 ms of virtual time per request

    let timer = VirtualTimer::new();
    let server = Server::builder().workers(WORKERS).parking(true).build();
    let rss_before = rss_kib();

    // Admit all 100k requests through the classed front door, striped
    // across the pool's injector cells by an explicit domain hint. Each
    // one's first poll runs on a worker, parks on the timer, and frees
    // that worker for the next — so four workers happily "hold" 100k
    // open requests.
    let cells = server.pool().injector_cells();
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let t = timer.clone();
            server.submit_async_with(
                async move {
                    t.sleep(SLEEP_NS).await;
                    i as u64
                },
                SubmitOptions::default().domain_hint(i % cells),
            )
        })
        .collect();
    let submit_s = t0.elapsed().as_secs_f64();

    // Wait for the workers to finish the first-poll wave: every request
    // parked on the timer, none completed, all in flight at once.
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    while timer.pending() < REQUESTS {
        assert!(
            Instant::now() < deadline,
            "stalled with {} of {REQUESTS} sleepers parked",
            timer.pending()
        );
        std::thread::yield_now();
    }
    assert_eq!(server.in_flight(), REQUESTS as u64);
    assert_eq!(server.completed(), 0);
    let rss_peak = rss_kib();
    println!(
        "{REQUESTS} requests in flight on {WORKERS} workers \
         (submitted in {submit_s:.2} s, {} sleepers parked)",
        timer.pending()
    );
    if let (Some(before), Some(peak)) = (rss_before, rss_peak) {
        let delta_mib = peak.saturating_sub(before) as f64 / 1024.0;
        println!(
            "memory: {delta_mib:.1} MiB for the open requests \
             (~{:.0} bytes/request)",
            delta_mib * 1024.0 * 1024.0 / REQUESTS as f64
        );
        assert!(
            delta_mib < 1024.0,
            "100k open requests must fit in well under a GiB, used {delta_mib:.1} MiB"
        );
    }

    // One clock tick wakes the entire cohort; the pool drains it.
    let t1 = Instant::now();
    let woken = timer.advance(SLEEP_NS);
    assert_eq!(woken, REQUESTS, "one advance wakes every sleeper");
    server.drain();
    let drain_s = t1.elapsed().as_secs_f64();
    assert_eq!(server.completed(), REQUESTS as u64);
    assert_eq!(server.in_flight(), 0);

    let stats = server.pool().stats();
    println!(
        "drained {REQUESTS} completions in {drain_s:.2} s: \
         {} polls, {} wakes, {} re-pushes",
        stats.future_polls, stats.future_wakes, stats.future_repushes
    );
    assert_eq!(stats.future_polls, 2 * REQUESTS as u64, "park + completion");
    assert_eq!(stats.future_repushes, REQUESTS as u64);
    // Submissions were striped across every injector cell, and the
    // per-cell pop counters reconcile exactly with the merged one.
    let cell_pops = server.pool().injector_cell_pops();
    println!("injector cells: {cells}, pops per cell {cell_pops:?}");
    assert!(cell_pops.iter().all(|&p| p > 0), "every cell saw traffic");
    assert_eq!(cell_pops.iter().sum::<u64>(), stats.injector_pops);

    for (i, t) in tickets.into_iter().enumerate() {
        assert_eq!(t.wait(), i as u64);
    }
    println!("all {REQUESTS} tickets redeemed");
}
