//! Trace a mixed serving run end to end and export it for Perfetto.
//!
//! The observability pipeline in one sitting: a traced [`Server`] takes
//! a batch of synchronous requests plus a cohort of async sleepers,
//! [`Server::metrics`] snapshots the pool *while the sleepers are still
//! parked* (no quiescing), and after the drain the span edges in the
//! telemetry rings are stitched into a [`SpanForest`], reconciled
//! against the run's `RunReport` counters, and exported as Chrome
//! trace-event JSON.
//!
//! ```sh
//! cargo run --release --example trace_viewer
//! ```
//!
//! Then open <https://ui.perfetto.dev> and load the written
//! `trace.json`: one track per worker plus a `machine` track for
//! off-pool submitters, `span:*` slices for request phases, and flow
//! arrows wherever a request hopped between threads.

use hermes::obs::{chrome_trace_json, validate_chrome_trace, SpanForest};
use hermes::serve::{Server, VirtualTimer};
use hermes::telemetry::{Event, RingSink, SpanPhase, TelemetrySink, MACHINE_STREAM};
use std::sync::Arc;

const WORKERS: usize = 2;
const SYNC: usize = 24;
const ASYNC: usize = 16;
const TOTAL: usize = SYNC + ASYNC;

/// Deterministic CPU work standing in for a request body.
fn spin(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..20_000u32 {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
    }
    std::hint::black_box(x)
}

/// Count span edges on the machine stream: off-pool submitters record
/// there, and [`RunReport::totals`](hermes::telemetry::RunReport::totals)
/// deliberately sums worker streams only.
fn machine_span_edges(sink: &RingSink) -> (u64, u64) {
    let mut begins = 0;
    let mut ends = 0;
    for (_, event) in sink.ring(MACHINE_STREAM).snapshot() {
        match event {
            Event::SpanBegin { .. } => begins += 1,
            Event::SpanEnd { .. } => ends += 1,
            _ => {}
        }
    }
    (begins, ends)
}

fn main() {
    let sink = Arc::new(RingSink::with_ring_capacity(WORKERS, 1 << 16));
    let timer = VirtualTimer::new();
    let server = Server::builder()
        .workers(WORKERS)
        .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
        .build();

    // Sync requests: admission (`inject`) on this thread's machine
    // stream, execution (`poll`) on whichever worker picked each one up
    // — every one of them a cross-stream hop in the trace.
    let sync_tickets: Vec<_> = (0..SYNC)
        .map(|i| server.submit(move || spin(i as u64)))
        .collect();

    // Async requests: each parks on the virtual timer after its first
    // poll, adding `queued` and `park_wait` episodes to its span.
    let async_tickets: Vec<_> = (0..ASYNC)
        .map(|i| {
            let t = timer.clone();
            server.submit_async(async move {
                t.sleep(1_000_000 + (i as u64) * 50_000).await;
                spin(i as u64)
            })
        })
        .collect();

    // Live metrics while the sleepers are parked: no barrier, no drain —
    // the seqlock snapshot reads whatever the workers have published.
    while timer.pending() < ASYNC {
        std::thread::yield_now();
    }
    let live = server.metrics().expect("a telemetry sink is attached");
    println!(
        "live snapshot: {} in flight, {} tasks executed, utilization {:.2}",
        live.in_flight,
        live.tasks(),
        live.utilization()
    );
    assert!(
        live.in_flight >= ASYNC as u64,
        "the async cohort is still open mid-run"
    );

    // Wake the cohort, drain, redeem every ticket.
    timer.advance(1_000_000 + ASYNC as u64 * 50_000);
    server.drain();
    for t in sync_tickets {
        t.wait();
    }
    for t in async_tickets {
        t.wait();
    }
    let elapsed_s = server.pool().elapsed_ns() as f64 / 1e9;
    let report = sink.report("trace_viewer", "serve", elapsed_s, 0.0);

    // Stitch and reconcile: every request became exactly one span, every
    // span terminated, and the begin/end edge totals (worker streams
    // from the report, machine stream counted directly) match what the
    // stitcher produced.
    let forest = SpanForest::from_sink(&sink);
    assert_eq!(forest.len(), TOTAL, "one span per request");
    for span in &forest.spans {
        assert!(
            span.completed_at.is_some(),
            "span {} never completed",
            span.id
        );
        assert!(
            !span.phase_intervals(SpanPhase::Poll).is_empty(),
            "span {} never ran",
            span.id
        );
    }
    let (machine_begins, machine_ends) = machine_span_edges(&sink);
    let totals = report.totals();
    let begins = totals.span_begins + machine_begins;
    let ends = totals.span_ends + machine_ends;
    assert_eq!(
        begins,
        forest.intervals() as u64,
        "every begin edge opened exactly one stitched episode"
    );
    assert_eq!(
        ends,
        begins + TOTAL as u64,
        "all episodes closed, plus one terminal complete-instant per request"
    );
    assert_eq!(totals.dropped_events, 0, "the rings retained everything");
    assert_eq!(report.latency_hist.count(), TOTAL as u64);
    assert!(
        forest.cross_stream_hops() >= TOTAL,
        "off-pool admission makes every request hop at least once"
    );

    // Export, validate, write.
    let json = chrome_trace_json(&sink);
    let stats = validate_chrome_trace(&json).expect("exporter emits well-formed trace events");
    assert_eq!(
        stats.span_slices,
        forest.intervals(),
        "one slice per stitched episode"
    );
    std::fs::write("trace.json", &json).expect("write trace.json");

    println!(
        "{} spans, {} episodes, {} cross-stream hops, p99 {:?} ns",
        forest.len(),
        forest.intervals(),
        forest.cross_stream_hops(),
        report.latency_hist.p99()
    );
    println!(
        "trace.json: {} events ({} span slices, {} instants, {} flow arrows) — load it at ui.perfetto.dev",
        stats.events, stats.span_slices, stats.instants, stats.flow_begins
    );
    server.shutdown();
}
