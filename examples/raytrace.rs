//! Domain example: the paper's Ray benchmark as an application — build a
//! BVH over a triangle soup and cast a grid of rays, rendering a coarse
//! ASCII depth map of what they hit.
//!
//! ```sh
//! cargo run --release --example raytrace
//! ```

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::Pool;
use hermes::workloads::{triangle_soup, Bvh, Point3, Ray};

fn main() {
    let workers = 4;
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build();
    let pool = Pool::builder()
        .workers(workers)
        .tempo(tempo)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .build();

    let tris = triangle_soup(60_000, 0.12, 21);
    let t0 = std::time::Instant::now();
    let bvh = pool.install(|| Bvh::build(&tris));
    println!(
        "BVH over {} triangles built in {:?}",
        tris.len(),
        t0.elapsed()
    );

    // A 60x30 image plane in front of the cube, one ray per cell.
    let (cols, rows) = (60usize, 30usize);
    let rays: Vec<Ray> = (0..rows * cols)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            Ray {
                origin: Point3 {
                    x: c as f64 / cols as f64,
                    y: r as f64 / rows as f64,
                    z: -1.0,
                },
                dir: Point3 {
                    x: 0.0,
                    y: 0.0,
                    z: 1.0,
                },
            }
        })
        .collect();

    let t0 = std::time::Instant::now();
    let hits: Vec<Option<f64>> = pool.install(|| {
        hermes::workloads::util::par_map(&rays, 64, &|ray| {
            bvh.first_hit(&tris, ray).map(|(_, t)| t)
        })
    });
    let cast = t0.elapsed();

    let shades = ['@', '#', '*', '+', '=', '-', ':', '.'];
    let mut image = String::new();
    for r in 0..rows {
        for c in 0..cols {
            image.push(match hits[r * cols + c] {
                // Depth t in [1, 2] across the cube maps dark-to-light.
                Some(t) => {
                    let x = ((t - 1.0).clamp(0.0, 1.0) * (shades.len() - 1) as f64) as usize;
                    shades[x]
                }
                None => ' ',
            });
        }
        image.push('\n');
    }
    let hit_count = hits.iter().filter(|h| h.is_some()).count();
    println!("cast {} rays in {cast:?} — {hit_count} hits", rays.len());
    println!("{image}");
    println!(
        "steals: {}  tempo: {}",
        pool.stats().steals,
        pool.tempo_stats()
    );
}
