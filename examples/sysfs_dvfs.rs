//! Real-hardware DVFS demo, gated so it degrades instead of failing.
//!
//! On a Linux box with the `userspace` cpufreq governor and write access to
//! `/sys/devices/system/cpu/cpu*/cpufreq` (the paper's setting), the pool
//! actuates real operating points and, where available, reports measured
//! RAPL energy. Everywhere else — containers, CI, macOS — it says why and
//! falls back to emulated DVFS so the example always runs to completion.
//!
//! ```sh
//! cargo run --release --example sysfs_dvfs
//! ```

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::{parallel_for, Pool, RaplProbe, SysfsCpufreqDriver};
use std::path::Path;
use std::sync::Arc;

fn main() {
    let workers = 4;
    let sysfs_root = Path::new("/sys/devices/system/cpu");

    // Frequency table: advertised by the hardware when cpufreq is present,
    // otherwise the paper's System A two-point configuration.
    let freqs = SysfsCpufreqDriver::available_frequencies(sysfs_root, 0)
        .unwrap_or_else(|_| vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)]);

    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(freqs.clone())
        .workers(workers)
        .build();

    let builder = Pool::builder().workers(workers).tempo(tempo);
    let (pool, live) = match SysfsCpufreqDriver::new((0..workers).collect()) {
        Ok(driver) => (builder.driver(Arc::new(driver)).build(), true),
        Err(e) => {
            eprintln!("no writable cpufreq ({e}); falling back to emulated DVFS");
            (builder.emulated_dvfs(freqs[0], 8.0).build(), false)
        }
    };

    let rapl = RaplProbe::discover().ok();
    let energy_before = rapl.as_ref().and_then(|p| p.read_joules().ok());

    let mut v: Vec<u64> = (0..2_000_000).collect();
    let started = std::time::Instant::now();
    pool.install(|| {
        parallel_for(&mut v, 4096, |x| {
            *x = x.wrapping_mul(2_654_435_761).rotate_left(7);
        });
    });
    let elapsed = started.elapsed();

    println!(
        "scrambled 2M words in {elapsed:?} on {workers} workers via {} driver",
        pool.driver_name()
    );
    println!("scheduler: {:?}", pool.stats());
    println!("tempo:     {}", pool.tempo_stats());
    match (
        energy_before,
        rapl.as_ref().and_then(|p| p.read_joules().ok()),
    ) {
        (Some(a), Some(b)) => println!("RAPL package energy: {:.3} J", b - a),
        _ if live => println!("RAPL unavailable; no measured energy"),
        _ => {
            if let Some(e) = pool.total_energy() {
                println!("virtual energy (emulated): {e:.3} J");
            }
        }
    }
}
