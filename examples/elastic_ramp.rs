//! Drive an elastic pool with a square-wave load and watch the worker
//! count track the ramp.
//!
//! Builds a four-worker elastic [`Pool`] (short cooldown so the demo
//! scales visibly), generates a deterministic Poisson arrival schedule
//! whose rate alternates between dense bursts and near-silent lulls
//! ([`PoissonSchedule::square_wave`]), and submits it open-loop while
//! sampling `Pool::active_workers`. During the lulls the scale
//! controller puts workers to sleep down toward the sentinel; each
//! burst wakes them back up. At the end the run reconciles: every
//! request completed exactly once, and every sleep bracket was closed
//! by exactly one wake.
//!
//! ```sh
//! cargo run --release --example elastic_ramp
//! ```

use hermes::rt::{ElasticConfig, Pool};
use hermes::serve::PoissonSchedule;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One request: ~400 µs of pure spin, long enough that a dense burst
/// overwhelms a lone sentinel and forces the wake path.
fn request() {
    let t0 = Instant::now();
    let mut acc = 0x9e3779b97f4a7c15u64;
    while t0.elapsed() < Duration::from_micros(400) {
        for _ in 0..64 {
            acc = std::hint::black_box(acc.wrapping_mul(2654435761).rotate_left(7));
        }
    }
}

fn main() {
    let workers = 4;
    let requests = 400;
    let half = 50; // requests per square-wave phase
    let phases = requests / half;
    let pool = Pool::builder()
        .workers(workers)
        .spin_budget(1)
        .elastic(ElasticConfig {
            cooldown_ns: 200_000,
            ..ElasticConfig::default()
        })
        .build();

    // On-phase: 4000 req/s against ~400 µs of service ≈ 1.6 cores of
    // offered work — more than the sentinel alone can absorb. Off-phase
    // gaps are 8× longer, ≈ 0.2 cores: idle enough to sleep on.
    let schedule = PoissonSchedule::unit(42, requests).square_wave(half, 0.125);
    let offsets = schedule.offsets(4_000.0);
    println!(
        "square-wave load: {phases} phases × {half} requests \
         (on ≈ 1.6 cores, off ≈ 0.2), {workers} workers, \
         schedule fingerprint {:016x}",
        schedule.fingerprint()
    );

    let done = Arc::new(AtomicU64::new(0));
    let mut phase_lo = vec![usize::MAX; phases];
    let mut phase_hi = vec![0usize; phases];
    let start = Instant::now();
    for (i, due) in offsets.iter().enumerate() {
        let phase = (i / half).min(phases - 1);
        loop {
            let active = pool.active_workers();
            phase_lo[phase] = phase_lo[phase].min(active);
            phase_hi[phase] = phase_hi[phase].max(active);
            if start.elapsed() >= *due {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        let done = Arc::clone(&done);
        pool.spawn(move || {
            request();
            done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Drain, then linger through one more lull so the tail scale-down
    // is visible too.
    let deadline = Instant::now() + Duration::from_secs(30);
    while done.load(Ordering::SeqCst) != requests as u64 {
        assert!(Instant::now() < deadline, "requests never drained");
        std::thread::yield_now();
    }
    let mut tail_lo = workers;
    let lull = Instant::now() + Duration::from_millis(80);
    while Instant::now() < lull {
        tail_lo = tail_lo.min(pool.active_workers());
        std::thread::sleep(Duration::from_micros(200));
    }

    for p in 0..phases {
        let kind = if p % 2 == 0 { "burst" } else { "lull " };
        println!(
            "phase {p} ({kind}): active workers {}..{}",
            phase_lo[p], phase_hi[p]
        );
    }
    println!("tail lull: active workers down to {tail_lo}");

    let mut pool = pool;
    pool.stop();
    let stats = pool.stats();
    println!(
        "completed {} requests | sleeps {} ({:.1} ms slept) | wakes {}",
        done.load(Ordering::SeqCst),
        stats.sleeps,
        stats.slept_ns as f64 / 1e6,
        stats.wakes,
    );

    // Reconciliation: exactly-once completion, the pool actually
    // scaled, every sleep bracket closed by exactly one wake, and
    // shutdown left the full complement awake.
    assert_eq!(done.load(Ordering::SeqCst), requests as u64);
    assert!(stats.sleeps > 0, "the lulls must put workers to sleep");
    assert!(
        tail_lo < workers,
        "the tail lull must scale the pool below {workers}"
    );
    assert_eq!(stats.wakes, stats.sleeps, "unbalanced sleep/wake brackets");
    assert_eq!(pool.active_workers(), workers);
    println!("ok: worker count tracked the ramp and reconciled");
}
