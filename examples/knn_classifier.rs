//! Domain example: the paper's KNN benchmark as an application — train a
//! k-nearest-neighbour classifier on labelled points and classify a
//! query set in parallel, with tempo telemetry.
//!
//! ```sh
//! cargo run --release --example knn_classifier
//! ```

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::Pool;
use hermes::workloads::{knn_classify, knn_classify_oracle, labeled_points, uniform_points2};

fn main() {
    let workers = 4;
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build();
    let pool = Pool::builder()
        .workers(workers)
        .tempo(tempo)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .build();

    let classes = 4u8;
    let mut train = labeled_points(200_000, classes, 11);
    let queries = uniform_points2(20_000, 12);
    let k = 7;

    let t0 = std::time::Instant::now();
    let labels = pool.install(|| knn_classify(&mut train, &queries, k));
    let elapsed = t0.elapsed();

    let mut histogram = [0usize; 4];
    for &l in &labels {
        histogram[l as usize] += 1;
    }
    println!(
        "classified {} queries against {} training points (k={k}) in {elapsed:?}",
        queries.len(),
        train.len()
    );
    println!("label histogram: {histogram:?}");

    // Verify a sample against the brute-force oracle.
    let sample = 200;
    let expect = knn_classify_oracle(&train, &queries[..sample], k);
    let agree = labels[..sample]
        .iter()
        .zip(&expect)
        .filter(|(a, b)| a == b)
        .count();
    println!("oracle agreement on {sample} sampled queries: {agree}/{sample}");
    assert_eq!(agree, sample, "kd-tree must match brute force exactly");

    println!("scheduler: {:?}", pool.stats());
    println!("tempo:     {}", pool.tempo_stats());
    if let Some(by_worker) = pool.energy_by_worker() {
        let total: f64 = by_worker.iter().sum();
        println!("virtual energy: {total:.2} J  per worker: {by_worker:.2?}");
    }
}
