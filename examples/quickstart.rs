//! Quickstart: run a parallel computation on the HERMES runtime with
//! tempo control, then replay the same benchmark in the simulator to get
//! paper-style energy numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::{join, Pool};
use hermes::sim::{MachineSpec, SimConfig};
use hermes::workloads::Benchmark;

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

fn main() {
    // ── 1. Real threads: a tempo-controlled work-stealing pool. ──────
    let workers = 4;
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build();
    let pool = Pool::builder()
        .workers(workers)
        .tempo(tempo)
        // No root/cpufreq here, so emulate DVFS: timing dilation plus an
        // 8 W-per-core power model.
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .build();

    let n = 30;
    let started = std::time::Instant::now();
    let result = pool.install(|| fib(n));
    let elapsed = started.elapsed();
    println!("fib({n}) = {result}  ({elapsed:?} on {workers} workers)");

    let stats = pool.tempo_stats();
    println!("scheduler: {:?}", pool.stats());
    println!("tempo:     {stats}");
    if let Some(energy) = pool.total_energy() {
        println!("virtual energy: {energy:.3} J via {}", pool.driver_name());
    }

    // ── 2. The simulator: deterministic paper-style measurements. ────
    let dag = Benchmark::Sort.dag_scaled(42, 0.25);
    for policy in [Policy::Baseline, Policy::Unified] {
        let tempo = TempoConfig::builder()
            .policy(policy)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(8)
            .threshold_scale(0.55)
            .build();
        let report = hermes::sim::run(&dag, &SimConfig::new(MachineSpec::system_a(), tempo))
            .expect("valid configuration");
        println!(
            "sim sort/8w {:9}: {:.0} ms, {:.2} J metered, EDP {:.3}",
            policy.label(),
            report.elapsed.seconds() * 1e3,
            report.metered_energy_j,
            report.edp()
        );
    }
}
