//! Serve a mixed-class open-loop Poisson request stream and read the
//! per-class latency tails.
//!
//! Builds a tempo-controlled, parking [`Server`] over the HERMES pool,
//! drives it at a moderate offered load with deterministic Poisson
//! arrivals through the classed front door
//! ([`Server::submit_with`]) — one in five requests is high-priority,
//! one in five is sheddable background, the rest are normal — and
//! prints the latency percentiles per class, admission-control
//! activity, park accounting, and virtual energy: the per-run view of
//! what `sweep --serve --serve-classes` sweeps as a grid.
//!
//! ```sh
//! cargo run --release --example serve_latency
//! ```

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::serve::{run_open_loop_classed, PoissonSchedule, Priority, Server, SubmitOptions};
use hermes::telemetry::{RingSink, TelemetrySink};
use std::sync::Arc;

/// One request: a small fork-join kernel, so requests parallelize
/// inside the pool and the tempo controller sees real hook traffic.
fn request() -> u64 {
    let mut v: Vec<u64> = (0..2_048).collect();
    hermes::rt::parallel_for(&mut v, 256, |x| {
        let mut acc = *x;
        for _ in 0..200 {
            acc = std::hint::black_box(acc.wrapping_mul(2654435761).rotate_left(7));
        }
        *x = acc;
    });
    v.iter().fold(0u64, |a, &b| a ^ b)
}

/// The mixed-tenant class schedule: deterministic by request index so
/// runs are reproducible. Every fifth request is latency-critical,
/// every fifth is best-effort, the rest are plain normal.
fn class_for(i: usize) -> SubmitOptions {
    match i % 5 {
        0 => SubmitOptions::default().priority(Priority::High),
        4 => SubmitOptions::default().priority(Priority::Background),
        _ => SubmitOptions::default(),
    }
}

fn main() {
    let workers = 4;
    let requests = 300;
    let sink = Arc::new(RingSink::new(workers));
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build();
    let mut server = Server::builder()
        .workers(workers)
        .tempo(tempo)
        .parking(true)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
        .build();

    // Calibrate the offered load to ~25 % of one core so the run is
    // visibly idle-dominated (the regime the parking subsystem exists
    // for).
    let t0 = std::time::Instant::now();
    for _ in 0..10 {
        std::hint::black_box(request());
    }
    let service_s = t0.elapsed().as_secs_f64() / 10.0;
    let rate_hz = 0.25 / service_s;
    println!(
        "serving {requests} requests at {rate_hz:.0}/s \
         (service ≈ {:.0} µs, {workers} workers, classes H/N/B)…",
        service_s * 1e6
    );

    let offsets = PoissonSchedule::unit(42, requests).offsets(rate_hz);
    let run = run_open_loop_classed(&server, &offsets, |_| request, class_for);
    server.stop();

    let completed = server.completed();
    println!(
        "completed {completed} requests in {:.2} s \
         ({} submissions late, {} shed by admission control)",
        server.pool().elapsed_ns() as f64 / 1e9,
        run.late_submissions,
        server.shed(),
    );
    for class in Priority::ALL {
        let hist = server.latency_for(class);
        println!(
            "{:>10}: {:>4} served | p50 {:>8.1} µs | p99 {:>8.1} µs",
            class.name(),
            hist.count(),
            hist.p50().unwrap_or(0) as f64 / 1e3,
            hist.p99().unwrap_or(0) as f64 / 1e3,
        );
    }
    let stats = server.pool().stats();
    let cell_pops = server.pool().injector_cell_pops();
    println!(
        "parking: {} episodes, {:.1} ms parked; injector pops: {} across {} cells {:?}",
        stats.parks,
        stats.parked_ns as f64 / 1e6,
        stats.injector_pops,
        cell_pops.len(),
        cell_pops,
    );
    assert_eq!(
        cell_pops.iter().sum::<u64>(),
        stats.injector_pops,
        "per-cell pops reconcile with the merged counter"
    );
    if let Some(energy) = server.pool().total_energy() {
        println!("virtual energy (busy + spin + parked): {energy:.3} J");
    }

    // The folded RunReport carries the same latency histogram: one
    // sample per *served* request (shed arrivals never ran).
    let report = sink.report(
        "serve-latency-example",
        "rt",
        server.pool().elapsed_ns() as f64 / 1e9,
        server.pool().total_energy().unwrap_or(0.0),
    );
    assert_eq!(report.latency_hist.count(), completed);
    assert_eq!(completed + server.shed(), requests as u64);
    println!(
        "telemetry: {} latency samples, {} parks in the RunReport",
        report.latency_hist.count(),
        report.totals().parks
    );
    let tickets = run.tickets.len();
    let mut redeemed = 0u64;
    for t in run.tickets {
        // Shed tickets redeem as typed errors, not values.
        redeemed += u64::from(std::hint::black_box(t.wait_result()).is_ok());
    }
    println!("all {tickets} tickets redeemed ({redeemed} with values)");
}
