//! Serve an open-loop Poisson request stream and read the latency tail.
//!
//! Builds a tempo-controlled, parking [`Server`] over the HERMES pool,
//! drives it at a moderate offered load with deterministic Poisson
//! arrivals, and prints the latency percentiles, park accounting, and
//! virtual energy — the per-run view of what `sweep --serve` sweeps as
//! a grid.
//!
//! ```sh
//! cargo run --release --example serve_latency
//! ```

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::serve::{run_open_loop, PoissonSchedule, Server};
use hermes::telemetry::{RingSink, TelemetrySink};
use std::sync::Arc;

/// One request: a small fork-join kernel, so requests parallelize
/// inside the pool and the tempo controller sees real hook traffic.
fn request() -> u64 {
    let mut v: Vec<u64> = (0..2_048).collect();
    hermes::rt::parallel_for(&mut v, 256, |x| {
        let mut acc = *x;
        for _ in 0..200 {
            acc = std::hint::black_box(acc.wrapping_mul(2654435761).rotate_left(7));
        }
        *x = acc;
    });
    v.iter().fold(0u64, |a, &b| a ^ b)
}

fn main() {
    let workers = 4;
    let requests = 300;
    let sink = Arc::new(RingSink::new(workers));
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build();
    let mut server = Server::builder()
        .workers(workers)
        .tempo(tempo)
        .parking(true)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
        .build();

    // Calibrate the offered load to ~25 % of one core so the run is
    // visibly idle-dominated (the regime the parking subsystem exists
    // for).
    let t0 = std::time::Instant::now();
    for _ in 0..10 {
        std::hint::black_box(request());
    }
    let service_s = t0.elapsed().as_secs_f64() / 10.0;
    let rate_hz = 0.25 / service_s;
    println!(
        "serving {requests} requests at {rate_hz:.0}/s \
         (service ≈ {:.0} µs, {workers} workers)…",
        service_s * 1e6
    );

    let offsets = PoissonSchedule::unit(42, requests).offsets(rate_hz);
    let run = run_open_loop(&server, &offsets, |_| request);
    server.stop();

    let hist = server.latency();
    println!(
        "completed {} requests in {:.2} s ({} submissions late)",
        server.completed(),
        server.pool().elapsed_ns() as f64 / 1e9,
        run.late_submissions
    );
    println!(
        "latency: p50 {:>8.1} µs | p99 {:>8.1} µs | p99.9 {:>8.1} µs",
        hist.p50().unwrap_or(0) as f64 / 1e3,
        hist.p99().unwrap_or(0) as f64 / 1e3,
        hist.p999().unwrap_or(0) as f64 / 1e3,
    );
    let stats = server.pool().stats();
    println!(
        "parking: {} episodes, {:.1} ms parked; injector pops: {}",
        stats.parks,
        stats.parked_ns as f64 / 1e6,
        stats.injector_pops
    );
    if let Some(energy) = server.pool().total_energy() {
        println!("virtual energy (busy + spin + parked): {energy:.3} J");
    }

    // The folded RunReport carries the same latency histogram.
    let report = sink.report(
        "serve-latency-example",
        "rt",
        server.pool().elapsed_ns() as f64 / 1e9,
        server.pool().total_energy().unwrap_or(0.0),
    );
    assert_eq!(report.latency_hist.count(), requests as u64);
    println!(
        "telemetry: {} latency samples, {} parks in the RunReport",
        report.latency_hist.count(),
        report.totals().parks
    );
    let tickets = run.tickets.len();
    for t in run.tickets {
        std::hint::black_box(t.wait());
    }
    println!("all {tickets} tickets redeemed");
}
