//! # HERMES — energy-efficient work-stealing runtimes
//!
//! A from-scratch Rust reproduction of *"Energy-Efficient Work-Stealing
//! Language Runtimes"* (Ribic & Liu, ASPLOS 2014): a work-stealing
//! runtime whose workers execute at coordinated *tempos* — DVFS operating
//! points chosen by two complementary algorithms (workpath-sensitive and
//! workload-sensitive) — saving 11-12 % energy for 3-4 % time on the
//! paper's benchmarks.
//!
//! This facade re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `hermes-core` | The tempo-control algorithms (the paper's contribution) |
//! | [`deque`] | `hermes-deque` | THE-protocol and Chase–Lev-style work-stealing deques |
//! | [`topology`] | `hermes-topology` | Machine topology (cores/domains/packages), steal distances, victim selection |
//! | [`sim`] | `hermes-sim` | Discrete-event multicore/DVFS/power simulator |
//! | [`rt`] | `hermes-rt` | Real-thread work-stealing pool with tempo hooks |
//! | [`serve`] | `hermes-serve` | Open-loop request serving: submission tickets, Poisson load, latency telemetry |
//! | [`workloads`] | `hermes-workloads` | The five PBBS-style benchmarks |
//! | [`telemetry`] | `hermes-telemetry` | Event rings, `RunReport` aggregation, JSON artifacts |
//! | [`obs`] | `hermes-obs` | Span stitching, Chrome/Perfetto trace export, Prometheus text, flight recorder |
//!
//! ## Two ways to run
//!
//! **Real threads** (`rt`): a rayon-style pool with the HERMES controller
//! wired into push/pop/steal, actuating emulated or real (sysfs) DVFS:
//!
//! ```
//! use hermes::core::{Frequency, Policy, TempoConfig};
//! use hermes::rt::{join, Pool};
//!
//! let tempo = TempoConfig::builder()
//!     .policy(Policy::Unified)
//!     .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
//!     .workers(2)
//!     .build();
//! let pool = Pool::builder().workers(2).tempo(tempo).build();
//! let (a, b) = pool.install(|| join(|| 1 + 1, || 2 + 2));
//! assert_eq!((a, b), (2, 4));
//! ```
//!
//! **Simulation** (`sim`): deterministic replicas of the paper's two AMD
//! machines with a 100 Hz supply-rail meter, regenerating every figure of
//! the evaluation (`cargo bench`):
//!
//! ```
//! use hermes::core::{Frequency, Policy, TempoConfig};
//! use hermes::sim::{MachineSpec, SimConfig};
//! use hermes::workloads::Benchmark;
//!
//! let tempo = TempoConfig::builder()
//!     .policy(Policy::Unified)
//!     .frequencies(vec![Frequency::from_mhz(3600), Frequency::from_mhz(2700)])
//!     .workers(4)
//!     .build();
//! let dag = Benchmark::Sort.dag_scaled(1, 0.02);
//! let report = hermes::sim::run(&dag, &SimConfig::new(MachineSpec::system_b(), tempo))?;
//! assert!(report.energy_j > 0.0);
//! # Ok::<(), hermes::sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hermes_core as core;
pub use hermes_deque as deque;
pub use hermes_obs as obs;
pub use hermes_rt as rt;
pub use hermes_serve as serve;
pub use hermes_sim as sim;
pub use hermes_telemetry as telemetry;
pub use hermes_topology as topology;
pub use hermes_workloads as workloads;
