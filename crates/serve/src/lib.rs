//! # hermes-serve
//!
//! The open-loop request-serving layer of the HERMES reproduction: the
//! subsystem that takes the runtime from "closed, saturated fork-join
//! jobs" to the ROADMAP's production-shaped regime — independent
//! requests arriving at a configurable offered load, with per-request
//! latency accounting and attributable idle energy.
//!
//! Why this matters for the paper's claim: in a closed fork-join run
//! thieves are rarely idle for long, so the energy the tempo controller
//! recovers is the energy of *briefly* spinning thieves. Under open-loop
//! arrival at low utilization, workers spend most of their time with
//! nothing to run — and what they do during that time (spin at full
//! frequency, spin procrastinated, or park) dominates the energy bill.
//! The `sweep --serve` ablation in `hermes-bench` measures exactly that
//! grid: utilization × tempo × parking.
//!
//! Three pieces:
//!
//! * [`Server`] — request admission over the rt pool's lock-free MPMC
//!   injector: [`Server::submit`] from any thread, completion through a
//!   latch-backed [`Ticket`], panic isolation, graceful
//!   [`drain`](Server::drain)/[`shutdown`](Server::shutdown), and one
//!   [`RequestLatency`](hermes_telemetry::Event::RequestLatency) event
//!   per completion.
//! * [`PoissonSchedule`] / [`run_open_loop`] — deterministic Poisson
//!   arrival schedules (seeded, fingerprintable) driven open-loop
//!   against a server.
//! * Latency accounting — per-request latencies land in a log-bucketed
//!   [`LatencyHistogram`](hermes_telemetry::LatencyHistogram)
//!   (p50/p99/p999, mergeable across workers, persisted in
//!   [`RunReport`](hermes_telemetry::RunReport)s).
//! * Non-blocking requests — [`Server::submit_async`] accepts a
//!   *future* and runs it on the pool's refcounted task layer: a
//!   pending request (a [`VirtualTimer`] sleep, an `.await` on another
//!   request's [`Ticket`]) occupies **no worker**, so a ≤4-worker pool
//!   sustains 100k+ concurrent slow requests. `Ticket` itself is a
//!   [`Future`](std::future::Future), and [`run_open_loop_async`]
//!   paces future-shaped arrivals.
//! * Request classes and admission control — [`Server::submit_with`]
//!   takes [`SubmitOptions`] (a [`Priority`] class, an optional
//!   deadline, an injector-cell hint); the [`AdmissionPolicy`] sheds
//!   background work under overload and refuses unmeetable deadlines
//!   up front, resolving the ticket with a typed [`ShedError`]
//!   (redeem via [`Ticket::wait_result`]) instead of queueing work
//!   that will miss.
//!
//! ```
//! use hermes_serve::{run_open_loop, PoissonSchedule, Server};
//!
//! let server = Server::builder().workers(2).build();
//! let offsets = PoissonSchedule::unit(42, 20).offsets(5_000.0);
//! let run = run_open_loop(&server, &offsets, |i| move || i + 1);
//! server.drain();
//! assert_eq!(server.completed(), 20);
//! let hist = server.latency();
//! assert_eq!(hist.count(), 20);
//! assert!(hist.p99().is_some());
//! # for t in run.tickets { t.wait(); }
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod loadgen;
mod server;
mod ticket;
mod timer;

pub use loadgen::{
    run_open_loop, run_open_loop_async, run_open_loop_classed, OpenLoopRun, PoissonSchedule,
};
pub use server::{AdmissionPolicy, P99Breach, Server, ServerBuilder, SubmitOptions};
pub use ticket::{ShedError, ShedReason, Ticket};
pub use timer::{TimerSleep, VirtualTimer};
// The observability companions a serving deployment wires in:
// always-on flight recording ([`AdmissionPolicy::flight_recorder`])
// and the live snapshot type [`Server::metrics`] returns.
pub use hermes_obs::{FlightDump, FlightRecorder};
// The request-class vocabulary `SubmitOptions` speaks, re-exported so
// callers need no separate hermes-rt import.
pub use hermes_rt::{ElasticConfig, MetricsSnapshot, Priority};
