//! The [`Server`]: external request admission over the rt [`Pool`].

use crate::ticket::{Outcome, ShedError, ShedReason, Ticket, TicketInner};
use hermes_core::TempoConfig;
use hermes_obs::{FlightDump, FlightRecorder};
use hermes_rt::{
    current_worker_energy_nj, current_worker_index, DequeKind, ElasticConfig, MetricsSnapshot,
    Pool, PoolBuilder, Priority, SpanPhase, SpawnOptions,
};
use hermes_telemetry::{Event, LatencyHistogram, LatencyRecorder, TelemetrySink, MACHINE_STREAM};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// How often the completion tail re-evaluates the rolling p99 against a
/// configured budget: every this-many completions. Amortizes the
/// histogram snapshot to noise while still catching a breach within one
/// batch of its onset.
const BREACH_CHECK_INTERVAL: u64 = 64;

/// How often the admission path refreshes its cached busy-time
/// utilization estimate from the pool's metrics hub: every this-many
/// submissions. Between refreshes admission reads two atomics, so the
/// hot submit path pays the hub's seqlock sweep only on the interval.
const ADMISSION_REFRESH_INTERVAL: u64 = 64;

/// Per-request submission options for
/// [`Server::submit_with`]/[`Server::submit_async_with`]: the request
/// class, an optional (relative) deadline, and an optional injector-cell
/// hint. `Default` is exactly the legacy [`Server::submit`] behaviour —
/// normal class, no deadline, automatic cell selection.
///
/// ```
/// use hermes_serve::{Priority, SubmitOptions};
/// use std::time::Duration;
/// let opts = SubmitOptions::default()
///     .priority(Priority::High)
///     .deadline(Duration::from_millis(5));
/// assert_eq!(opts.priority, Priority::High);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Request class (default [`Priority::Normal`]); decides both the
    /// admission rule applied and the injector drain lane.
    pub priority: Priority,
    /// Relative completion deadline. A deadline on a normal-class
    /// request routes it into the deadline lane (drained before plain
    /// normal work) — and lets admission refuse it up front when the
    /// live p99 says it cannot be met.
    pub deadline: Option<Duration>,
    /// Preferred injector cell, as a topology clock-domain index
    /// (taken modulo the cell count). `None` picks the least-loaded
    /// cell (or the submitting worker's own, for worker-originated
    /// submits).
    pub domain_hint: Option<usize>,
}

impl SubmitOptions {
    /// Set the request class.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set a relative completion deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Prefer a specific injector cell (clock-domain index).
    #[must_use]
    pub fn domain_hint(mut self, domain: usize) -> Self {
        self.domain_hint = Some(domain);
        self
    }
}

/// The server's admission-control policy: the front-door capacity, the
/// load-shedding rules, and the overload observability hooks (p99
/// budget watch, flight recorder), grouped so one value describes how
/// the server behaves at and past saturation.
///
/// The shedding protocol itself is fixed (DESIGN.md §Serve): background
/// requests are refused once the pool's utilization estimate crosses
/// [`shed_utilization`](Self::shed_utilization); deadline-carrying
/// normal requests are refused when the rolling p99 already exceeds
/// their deadline; high-priority requests are *never* refused — their
/// protection is the [`p99_budget`](Self::p99_budget) watch plus the
/// shedding of everything below them.
#[derive(Default)]
pub struct AdmissionPolicy {
    injector_capacity: Option<usize>,
    shed_utilization: Option<f64>,
    flight: Option<FlightRecorder>,
    breach: Option<BreachWatch>,
}

/// Utilization estimate (permille) above which background requests are
/// shed, unless overridden by [`AdmissionPolicy::shed_utilization`].
const DEFAULT_SHED_UTILIZATION_PERMILLE: u32 = 900;

impl std::fmt::Debug for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPolicy")
            .field("injector_capacity", &self.injector_capacity)
            .field("shed_utilization", &self.shed_utilization)
            .field("flight", &self.flight.is_some())
            .field("p99_budget", &self.breach.is_some())
            .finish()
    }
}

impl AdmissionPolicy {
    /// Total capacity of the pool's sharded submission front door. See
    /// [`PoolBuilder::injector_capacity`].
    #[must_use]
    pub fn injector_capacity(mut self, capacity: usize) -> Self {
        self.injector_capacity = Some(capacity);
        self
    }

    /// Utilization estimate (0.0–1.0) above which background-class
    /// requests are shed (default 0.9). Clamped to the unit interval.
    #[must_use]
    pub fn shed_utilization(mut self, threshold: f64) -> Self {
        self.shed_utilization = Some(threshold.clamp(0.0, 1.0));
        self
    }

    /// Arm a one-shot p99 latency budget: once the server's rolling
    /// p99 exceeds `budget` (evaluated every few dozen completions),
    /// `callback` fires exactly once with a [`P99Breach`] — including
    /// the flight recorder's retained tail when one is attached. The
    /// callback runs on the worker that completed the triggering
    /// request, so it must be cheap and must not block.
    #[must_use]
    pub fn p99_budget<F>(mut self, budget: Duration, callback: F) -> Self
    where
        F: Fn(P99Breach) + Send + Sync + 'static,
    {
        self.breach = Some(BreachWatch {
            budget_ns: budget.as_nanos() as u64,
            fired: AtomicBool::new(false),
            callback: Box::new(callback),
        });
        self
    }

    /// Attach an always-on [`FlightRecorder`]: it becomes the server's
    /// telemetry sink (replacing any sink set before the policy is
    /// installed), keeps a bounded tail of every worker's events, and
    /// its [`dump`](FlightRecorder::dump) is wired into the two places
    /// a post-mortem matters — the `Ticket::wait`-on-worker deadlock
    /// panic, and the [`p99_budget`](Self::p99_budget) breach callback.
    /// To also fold full reports or export traces, build the recorder
    /// with [`FlightRecorder::around`] over your own
    /// [`RingSink`](hermes_telemetry::RingSink).
    #[must_use]
    pub fn flight_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.flight = Some(recorder);
        self
    }
}

/// What [`ServerBuilder::p99_budget`] hands the breach callback.
#[derive(Debug)]
pub struct P99Breach {
    /// The rolling 99th-percentile latency that crossed the budget, ns.
    pub p99_ns: u64,
    /// The configured budget, ns.
    pub budget_ns: u64,
    /// Requests completed when the breach was detected.
    pub completed: u64,
    /// The flight recorder's retained event tail at detection, when a
    /// recorder is attached ([`ServerBuilder::flight_recorder`]) — the
    /// recent scheduling history leading into the breach.
    pub dump: Option<FlightDump>,
}

/// The armed p99-budget watch: budget, one-shot latch, callback.
struct BreachWatch {
    budget_ns: u64,
    fired: AtomicBool,
    callback: Box<dyn Fn(P99Breach) + Send + Sync>,
}

/// State shared between the server handle and every in-flight request
/// closure or future.
struct ServeShared {
    submitted: AtomicU64,
    completed: AtomicU64,
    in_flight: AtomicU64,
    /// Requests refused by admission control (never admitted, never
    /// counted in `completed` or `in_flight`).
    shed: AtomicU64,
    latency: LatencyRecorder,
    /// Per-class latency recorders, indexed by `Priority as usize` —
    /// the per-tenant view the multi-class gates read (a merged p99
    /// says nothing about whether the high class held its budget).
    class_latency: [LatencyRecorder; 3],
    /// Per-request energy samples, µJ (same log-bucketed recorder as
    /// latency). Only fed when the pool runs under emulated DVFS.
    energy: LatencyRecorder,
    /// Utilization estimate (permille) above which background requests
    /// are shed.
    shed_threshold_permille: u32,
    /// Cached busy-time utilization estimate, permille; refreshed from
    /// the metrics hub every [`ADMISSION_REFRESH_INTERVAL`] submissions.
    adm_util_permille: AtomicU32,
    /// The busy-ns / wall-ns readings at the last refresh, so the
    /// estimate is windowed (utilization *now*, not since the epoch).
    adm_last_busy_ns: AtomicU64,
    adm_last_at_ns: AtomicU64,
    /// Telemetry destination for [`Event::RequestLatency`] and the
    /// request-level span edges; `None` keeps the completion path free
    /// of event work.
    sink: Option<Arc<dyn TelemetrySink>>,
    /// Timestamp base for latency events (established at server build,
    /// a hair after the pool's own epoch).
    epoch: Instant,
    /// The pool's clock reading at `epoch`: serve-side events stamp
    /// `epoch_offset_ns + epoch.elapsed()` so they share the pool's
    /// timebase and interleave correctly with scheduler events.
    epoch_offset_ns: u64,
    /// Next request span id; ids are minted only when a sink is
    /// attached, starting at 1 (0 means untraced throughout the stack).
    next_span: AtomicU64,
    /// The always-on flight recorder, when attached.
    flight: Option<Arc<FlightRecorder>>,
    /// The p99 budget watch, when armed.
    breach: Option<BreachWatch>,
}

impl ServeShared {
    /// Now, on the pool's clock.
    fn pool_now_ns(&self) -> u64 {
        self.epoch_offset_ns + self.epoch.elapsed().as_nanos() as u64
    }

    /// Mint the next request span id, or 0 (untraced) without a sink.
    fn mint_span(&self) -> u64 {
        if self.sink.is_some() {
            self.next_span.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            0
        }
    }

    /// Record one span edge for request `span` on the calling thread's
    /// stream (the submitting thread may be off-pool, landing on
    /// [`MACHINE_STREAM`]). No-op for untraced requests.
    fn record_span(&self, span: u64, begin: bool, phase: SpanPhase) {
        if span == 0 {
            return;
        }
        if let Some(sink) = &self.sink {
            let event = if begin {
                Event::SpanBegin { id: span, phase }
            } else {
                Event::SpanEnd { id: span, phase }
            };
            sink.record(
                current_worker_index().unwrap_or(MACHINE_STREAM),
                self.pool_now_ns(),
                event,
            );
        }
    }

    /// First half of the completion tail, run *before* the ticket
    /// resolves: latency record (merged and per-class) + telemetry
    /// event, the request's energy reading when one was measured,
    /// terminal span edge.
    fn record_completion(&self, span: u64, t0: Instant, energy_uj: Option<u64>, class: Priority) {
        let ns = t0.elapsed().as_nanos() as u64;
        self.latency.record(ns);
        self.class_latency[class as usize].record(ns);
        if let Some(uj) = energy_uj {
            self.energy.record(uj);
        }
        if let Some(sink) = &self.sink {
            // Attribute to the worker that completed the request;
            // MACHINE_STREAM cannot occur in practice (requests run on
            // workers) but keeps the fallback total-preserving.
            let stream = current_worker_index().unwrap_or(MACHINE_STREAM);
            let now = self.pool_now_ns();
            sink.record(stream, now, Event::RequestLatency { ns });
            if let Some(uj) = energy_uj {
                sink.record(stream, now, Event::RequestEnergy { microjoules: uj });
            }
        }
        self.record_span(span, false, SpanPhase::Complete);
    }

    /// Second half, run *after* the ticket resolves: the counters
    /// `drain` watches, then the budget check.
    fn count_completion(&self) {
        let completed = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.check_breach(completed);
    }

    /// Every [`BREACH_CHECK_INTERVAL`] completions, compare the rolling
    /// p99 against the armed budget; fire the callback at most once.
    fn check_breach(&self, completed: u64) {
        let Some(watch) = &self.breach else { return };
        if !completed.is_multiple_of(BREACH_CHECK_INTERVAL) || watch.fired.load(Ordering::Relaxed) {
            return;
        }
        let Some(p99_ns) = self.latency.snapshot().p99() else {
            return;
        };
        if p99_ns > watch.budget_ns && !watch.fired.swap(true, Ordering::SeqCst) {
            (watch.callback)(P99Breach {
                p99_ns,
                budget_ns: watch.budget_ns,
                completed,
                dump: self.flight.as_ref().map(|f| f.dump()),
            });
        }
    }
}

/// Builder for [`Server`]; a thin veneer over [`PoolBuilder`] exposing
/// the knobs the serving ablation sweeps, plus serving-only state.
#[derive(Default)]
pub struct ServerBuilder {
    workers: Option<usize>,
    tempo: Option<TempoConfig>,
    parking: Option<bool>,
    spin_budget: Option<u32>,
    deque: DequeKind,
    elastic: Option<ElasticConfig>,
    emulated: Option<(hermes_core::Frequency, f64)>,
    telemetry: Option<Arc<dyn TelemetrySink>>,
    admission: AdmissionPolicy,
}

impl std::fmt::Debug for ServerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerBuilder")
            .field("workers", &self.workers)
            .field("parking", &self.parking)
            .field("spin_budget", &self.spin_budget)
            .finish()
    }
}

impl ServerBuilder {
    /// Number of worker threads (default: available parallelism).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Tempo-control configuration (default: baseline, no tempo
    /// control). Its worker count must match the server's.
    #[must_use]
    pub fn tempo(mut self, tempo: TempoConfig) -> Self {
        self.tempo = Some(tempo);
        self
    }

    /// Enable or disable worker parking (default: enabled). See
    /// [`PoolBuilder::parking`].
    #[must_use]
    pub fn parking(mut self, on: bool) -> Self {
        self.parking = Some(on);
        self
    }

    /// Idle-spin budget before parking. See
    /// [`PoolBuilder::spin_budget`].
    #[must_use]
    pub fn spin_budget(mut self, budget: u32) -> Self {
        self.spin_budget = Some(budget);
        self
    }

    /// Install the server's [`AdmissionPolicy`]: front-door capacity,
    /// shed thresholds, p99 budget watch, flight recorder. Replaces any
    /// previously installed policy wholesale; a flight recorder in the
    /// policy also becomes the server's telemetry sink (replacing any
    /// sink set before this call).
    #[must_use]
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        if let Some(recorder) = &policy.flight {
            self.telemetry = Some(Arc::new(recorder.clone()) as Arc<dyn TelemetrySink>);
        }
        self.admission = policy;
        self
    }

    /// Capacity of the pool's submission injector. See
    /// [`PoolBuilder::injector_capacity`].
    #[deprecated(
        since = "0.2.0",
        note = "regrouped under the admission policy: \
                `admission(AdmissionPolicy::default().injector_capacity(n))`"
    )]
    #[must_use]
    pub fn injector_capacity(mut self, capacity: usize) -> Self {
        self.admission.injector_capacity = Some(capacity);
        self
    }

    /// Deque implementation for the pool's workers.
    #[must_use]
    pub fn deque(mut self, kind: DequeKind) -> Self {
        self.deque = kind;
        self
    }

    /// Enable elastic worker-count scaling under load swings (default:
    /// off — the worker count is fixed). See [`PoolBuilder::elastic`]
    /// for the sentinel invariant and hysteresis semantics; composes
    /// with [`tempo`](Self::tempo) per the precedence rule in
    /// DESIGN.md §Elastic.
    #[must_use]
    pub fn elastic(mut self, cfg: ElasticConfig) -> Self {
        self.elastic = Some(cfg);
        self
    }

    /// Run the pool under emulated DVFS (timing dilation plus the
    /// virtual power model) so the server reports energy. See
    /// [`PoolBuilder::emulated_dvfs`].
    #[must_use]
    pub fn emulated_dvfs(mut self, fastest: hermes_core::Frequency, busy_watts_fast: f64) -> Self {
        self.emulated = Some((fastest, busy_watts_fast));
        self
    }

    /// Attach a telemetry sink: the pool emits its scheduler events
    /// into it as usual, and the server adds one
    /// [`Event::RequestLatency`] per completed request on the
    /// completing worker's stream.
    #[must_use]
    pub fn telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Attach an always-on [`FlightRecorder`]. See
    /// [`AdmissionPolicy::flight_recorder`].
    #[deprecated(
        since = "0.2.0",
        note = "regrouped under the admission policy: \
                `admission(AdmissionPolicy::default().flight_recorder(recorder))`"
    )]
    #[must_use]
    pub fn flight_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.telemetry = Some(Arc::new(recorder.clone()) as Arc<dyn TelemetrySink>);
        self.admission.flight = Some(recorder);
        self
    }

    /// Arm a one-shot p99 latency budget. See
    /// [`AdmissionPolicy::p99_budget`].
    #[deprecated(
        since = "0.2.0",
        note = "regrouped under the admission policy: \
                `admission(AdmissionPolicy::default().p99_budget(budget, callback))`"
    )]
    #[must_use]
    pub fn p99_budget<F>(mut self, budget: Duration, callback: F) -> Self
    where
        F: Fn(P99Breach) + Send + Sync + 'static,
    {
        self.admission.breach = Some(BreachWatch {
            budget_ns: budget.as_nanos() as u64,
            fired: AtomicBool::new(false),
            callback: Box::new(callback),
        });
        self
    }

    /// Build the server (and its pool) and start serving.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PoolBuilder::build`].
    #[must_use]
    pub fn build(self) -> Server {
        let mut pool: PoolBuilder = Pool::builder().deque(self.deque);
        if let Some(n) = self.workers {
            pool = pool.workers(n);
        }
        if let Some(t) = self.tempo {
            pool = pool.tempo(t);
        }
        if let Some(p) = self.parking {
            pool = pool.parking(p);
        }
        if let Some(b) = self.spin_budget {
            pool = pool.spin_budget(b);
        }
        if let Some(c) = self.admission.injector_capacity {
            pool = pool.injector_capacity(c);
        }
        if let Some(e) = self.elastic {
            pool = pool.elastic(e);
        }
        if let Some((fastest, watts)) = self.emulated {
            pool = pool.emulated_dvfs(fastest, watts);
        }
        if let Some(sink) = &self.telemetry {
            pool = pool.telemetry(Arc::clone(sink));
        }
        let pool = pool.build();
        let epoch = Instant::now();
        // Read the pool clock at (essentially) the same instant as the
        // serve epoch so serve-side events share the pool's timebase.
        let epoch_offset_ns = pool.elapsed_ns();
        let shed_threshold_permille = self
            .admission
            .shed_utilization
            .map_or(DEFAULT_SHED_UTILIZATION_PERMILLE, |t| (t * 1000.0) as u32);
        Server {
            pool,
            shared: Arc::new(ServeShared {
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                latency: LatencyRecorder::new(),
                class_latency: std::array::from_fn(|_| LatencyRecorder::new()),
                energy: LatencyRecorder::new(),
                shed_threshold_permille,
                adm_util_permille: AtomicU32::new(0),
                adm_last_busy_ns: AtomicU64::new(0),
                adm_last_at_ns: AtomicU64::new(0),
                sink: self.telemetry.filter(|s| !s.is_null()),
                epoch,
                epoch_offset_ns,
                next_span: AtomicU64::new(0),
                flight: self.admission.flight.map(Arc::new),
                breach: self.admission.breach,
            }),
        }
    }
}

/// An open-loop request server over a HERMES work-stealing [`Pool`].
///
/// Requests enter through [`submit`](Self::submit) from any thread (the
/// pool's lock-free injector is the admission queue), run on the pool's
/// workers — free to use [`join`](hermes_rt::join) and friends
/// internally for parallelism — and resolve a [`Ticket`] through the
/// runtime's latch machinery. Per-request latency is recorded into a
/// log-bucketed [`LatencyHistogram`] (and, when a sink is attached, as
/// [`Event::RequestLatency`] telemetry on the completing worker's
/// stream).
///
/// ```
/// use hermes_serve::Server;
/// let server = Server::builder().workers(2).build();
/// let ticket = server.submit(|| 6 * 7);
/// assert_eq!(ticket.wait(), 42);
/// server.shutdown();
/// ```
pub struct Server {
    pool: Pool,
    shared: Arc<ServeShared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.pool.workers())
            .field("in_flight", &self.in_flight())
            .field("completed", &self.completed())
            .finish()
    }
}

impl Server {
    /// Start configuring a server.
    #[must_use]
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Submit one request; returns immediately with a [`Ticket`] for
    /// the result (open-loop admission: the caller never waits for
    /// execution). Equivalent to [`submit_with`](Self::submit_with)
    /// with default [`SubmitOptions`] — normal class, no deadline,
    /// never shed.
    ///
    /// A panicking request never takes down a worker: the panic is
    /// caught, the request counts as completed (so
    /// [`drain`](Self::drain) terminates), and the payload re-raises on
    /// whoever redeems the ticket.
    pub fn submit<R, F>(&self, request: F) -> Ticket<R>
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        self.submit_with(request, SubmitOptions::default())
    }

    /// Submit one request with an explicit class, deadline, and cell
    /// preference ([`SubmitOptions`]); returns immediately with a
    /// [`Ticket`] for the result.
    ///
    /// This is the server's one true front door — [`submit`](Self::submit)
    /// and [`submit_async`](Self::submit_async) are thin wrappers over
    /// it and its async sibling. Admission control runs here, before
    /// any pool work: a refused request resolves its ticket at once
    /// with the [`Shed`](crate::ShedError) outcome (redeem via
    /// [`Ticket::wait_result`]), costs no worker time, and records no
    /// latency or energy sample.
    pub fn submit_with<R, F>(&self, request: F, opts: SubmitOptions) -> Ticket<R>
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        let shared = Arc::clone(&self.shared);
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        let (ticket, inner) = Ticket::new(shared.flight.clone());
        if let Err(shed) = self.admit(opts) {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            inner.complete(Outcome::Shed(shed));
            return ticket;
        }
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let t0 = Instant::now();
        // Causal span: the inject phase brackets admission → execution
        // start (queueing in the injector / a deque), then one poll
        // phase covers the closure body, then the terminal complete.
        let span = shared.mint_span();
        shared.record_span(span, true, SpanPhase::Inject);
        let class = opts.priority;
        self.pool.spawn_with(
            move || {
                shared.record_span(span, false, SpanPhase::Inject);
                shared.record_span(span, true, SpanPhase::Poll);
                // Bracket the request body with the worker's energy meter:
                // the delta is the joules this request's execution drew
                // (µJ-rounded). `None` without emulated DVFS.
                let meter0 = current_worker_energy_nj();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(request));
                let energy_uj = meter0.and_then(|e0| {
                    current_worker_energy_nj().map(|e1| (e1.saturating_sub(e0) + 500) / 1_000)
                });
                shared.record_span(span, false, SpanPhase::Poll);
                shared.record_completion(span, t0, energy_uj, class);
                if let Some(uj) = energy_uj {
                    inner.set_energy_uj(uj);
                }
                inner.complete(outcome.into());
                shared.count_completion();
            },
            self.spawn_options(opts),
        );
        ticket
    }

    /// Submit one *non-blocking* request: the future is polled on pool
    /// workers and, while pending, pins no worker — ten thousand
    /// requests sleeping on timers or awaiting other tickets occupy
    /// queue slots and heap, never threads. Returns immediately with a
    /// [`Ticket`], which is itself a [`Future`]: request futures
    /// compose by `.await`ing the tickets of requests they fan out.
    ///
    /// Latency accounting matches [`submit`](Self::submit): the clock
    /// starts at admission, so a request that spends its life awaiting
    /// a timer reports the full admission-to-completion span.
    ///
    /// A panicking poll never takes down a worker: the panic is caught,
    /// the request counts as completed (so [`drain`](Self::drain)
    /// terminates), and the payload re-raises on whoever redeems the
    /// ticket.
    pub fn submit_async<R, F>(&self, request: F) -> Ticket<R>
    where
        F: Future<Output = R> + Send + 'static,
        R: Send + 'static,
    {
        self.submit_async_with(request, SubmitOptions::default())
    }

    /// [`submit_async`](Self::submit_async) with an explicit class,
    /// deadline, and cell preference — the async sibling of
    /// [`submit_with`](Self::submit_with), with the same admission
    /// protocol (a shed request's future is dropped unpolled; its
    /// ticket resolves to the typed [`ShedError`](crate::ShedError)).
    /// The task keeps its class across waker re-queues: every re-push
    /// drains in the same priority lane the admission decision chose.
    pub fn submit_async_with<R, F>(&self, request: F, opts: SubmitOptions) -> Ticket<R>
    where
        F: Future<Output = R> + Send + 'static,
        R: Send + 'static,
    {
        let shared = Arc::clone(&self.shared);
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        let (ticket, inner) = Ticket::new(shared.flight.clone());
        if let Err(shed) = self.admit(opts) {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            inner.complete(Outcome::Shed(shed));
            return ticket;
        }
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let t0 = Instant::now();
        // Causal span: the serve layer brackets admission → first poll
        // as the inject phase and marks the terminal complete; the rt
        // task layer records the queued / poll / park-wait journey in
        // between under the same id (`spawn_future_traced`).
        let span = shared.mint_span();
        shared.record_span(span, true, SpanPhase::Inject);
        let class = opts.priority;
        self.pool.spawn_future_traced_with(
            RequestFuture {
                request: Box::pin(request),
                span,
                inject_open: span != 0,
                energy_nj: None,
                class,
                done: Some((shared, inner, t0)),
            },
            span,
            self.spawn_options(opts),
        );
        ticket
    }

    /// Translate serve-level [`SubmitOptions`] into the pool's
    /// [`SpawnOptions`]: the relative deadline becomes an absolute
    /// instant on the pool's clock.
    fn spawn_options(&self, opts: SubmitOptions) -> SpawnOptions {
        let mut spawn = SpawnOptions::default().priority(opts.priority);
        if let Some(d) = opts.deadline {
            spawn = spawn.deadline_ns(
                self.shared
                    .pool_now_ns()
                    .saturating_add(d.as_nanos() as u64)
                    .max(1),
            );
        }
        if let Some(domain) = opts.domain_hint {
            spawn = spawn.domain_hint(domain);
        }
        spawn
    }

    /// The admission decision (DESIGN.md §Serve): high-class requests
    /// are always admitted; normal requests are admitted unless they
    /// carry a deadline the live p99 already exceeds; background
    /// requests are admitted only below the policy's utilization
    /// threshold.
    fn admit(&self, opts: SubmitOptions) -> Result<(), ShedError> {
        match opts.priority {
            Priority::High => Ok(()),
            Priority::Normal => {
                let Some(deadline) = opts.deadline else {
                    return Ok(());
                };
                let deadline_ns = deadline.as_nanos() as u64;
                match self.shared.latency.snapshot().p99() {
                    Some(p99_ns) if p99_ns > deadline_ns => Err(ShedError {
                        priority: Priority::Normal,
                        reason: ShedReason::DeadlineUnmeetable {
                            p99_ns,
                            deadline_ns,
                        },
                    }),
                    _ => Ok(()),
                }
            }
            Priority::Background => {
                let utilization_permille = self.utilization_estimate_permille();
                if utilization_permille >= self.shared.shed_threshold_permille {
                    Err(ShedError {
                        priority: Priority::Background,
                        reason: ShedReason::Overloaded {
                            utilization_permille,
                        },
                    })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The pool's live utilization estimate, permille of the unit
    /// interval. Two signals, take the larger: instantaneous queue
    /// pressure (in-flight requests over workers — always available,
    /// reacts within one submission) and windowed busy time from the
    /// metrics hub when a telemetry sink is attached (refreshed every
    /// [`ADMISSION_REFRESH_INTERVAL`] submissions; between refreshes
    /// it is one relaxed load).
    fn utilization_estimate_permille(&self) -> u32 {
        let workers = self.pool.workers().max(1) as u64;
        let queue_pressure = ((self.in_flight() * 1000) / workers).min(1000) as u32;
        let shared = &self.shared;
        if shared
            .submitted
            .load(Ordering::Relaxed)
            .is_multiple_of(ADMISSION_REFRESH_INTERVAL)
        {
            if let Some(snapshot) = self.pool.metrics() {
                let busy: u64 = snapshot.workers.iter().map(|w| w.busy_ns).sum();
                let wall = snapshot.at_ns.saturating_mul(workers);
                let last_busy = shared.adm_last_busy_ns.swap(busy, Ordering::Relaxed);
                let last_wall = shared.adm_last_at_ns.swap(wall, Ordering::Relaxed);
                if wall > last_wall {
                    let permille =
                        (busy.saturating_sub(last_busy) * 1000 / (wall - last_wall)).min(1000);
                    shared
                        .adm_util_permille
                        .store(permille as u32, Ordering::Relaxed);
                }
            }
        }
        queue_pressure.max(shared.adm_util_permille.load(Ordering::Relaxed))
    }

    /// Requests submitted so far.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.shared.submitted.load(Ordering::Relaxed)
    }

    /// Requests completed so far (including panicked ones; shed
    /// requests never ran and are counted by [`shed`](Self::shed)
    /// instead).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Requests refused by admission control so far.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Requests currently admitted but not yet completed.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Snapshot of the per-request latency histogram so far.
    #[must_use]
    pub fn latency(&self) -> LatencyHistogram {
        self.shared.latency.snapshot()
    }

    /// Snapshot of the latency histogram for one request class — the
    /// per-tenant view a mixed-class deployment gates on (shed requests
    /// contribute nothing; they never ran).
    #[must_use]
    pub fn latency_for(&self, class: Priority) -> LatencyHistogram {
        self.shared.class_latency[class as usize].snapshot()
    }

    /// Snapshot of the per-request *energy* histogram so far (µJ
    /// values in the same log-bucketed shape as [`latency`](Self::latency)).
    /// Empty unless the server runs under
    /// [`emulated_dvfs`](ServerBuilder::emulated_dvfs) — without a
    /// meter no request is charged anything.
    #[must_use]
    pub fn request_energy(&self) -> LatencyHistogram {
        self.shared.energy.snapshot()
    }

    /// A live [`MetricsSnapshot`] without quiescing anything:
    /// [`Pool::metrics`] (per-worker busy/steal/park time, task counts,
    /// injector depth — seqlock-published by the workers) completed
    /// with the request-level view only the server has — in-flight
    /// count and rolling latency/energy quantiles. `None` unless a telemetry
    /// sink is attached ([`ServerBuilder::telemetry`] or
    /// [`ServerBuilder::flight_recorder`]).
    #[must_use]
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut snapshot = self.pool.metrics()?;
        snapshot.in_flight = self.in_flight();
        let hist = self.shared.latency.snapshot();
        snapshot.latency_p50_ns = hist.p50();
        snapshot.latency_p99_ns = hist.p99();
        let energy = self.shared.energy.snapshot();
        snapshot.energy_p50_uj = energy.p50();
        snapshot.energy_p99_uj = energy.p99();
        Some(snapshot)
    }

    /// The pool underneath, for scheduler statistics, energy totals,
    /// and fork-join use from non-request code.
    #[must_use]
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Block until every submitted request has completed (graceful
    /// drain). New submissions during a drain extend it.
    pub fn drain(&self) {
        let drained = self.drain_for(Duration::MAX);
        debug_assert!(drained, "unbounded drain cannot time out");
    }

    /// Like [`drain`](Self::drain) with a deadline; returns whether the
    /// server fully drained within `timeout`.
    ///
    /// Polls with a short-spin-then-sleep cadence (the `Latch::wait`
    /// pattern): a drain waiting out a tail of long requests must not
    /// burn a core the workers could be finishing those requests on.
    #[must_use]
    pub fn drain_for(&self, timeout: Duration) -> bool {
        let deadline = Instant::now().checked_add(timeout);
        let mut spins = 0u32;
        while self.in_flight() > 0 {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return self.in_flight() == 0;
                }
            }
            if spins < 64 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        true
    }

    /// Drain, then stop and join the pool's workers, keeping the server
    /// for post-run inspection (statistics, latency snapshot, energy) —
    /// the serving analogue of [`Pool::stop`].
    pub fn stop(&mut self) {
        self.drain();
        self.pool.stop();
    }

    /// Drain and shut the pool down.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

/// Adapter polled by the pool's future tasks: drives one request
/// future, then runs the same completion tail as [`Server::submit`]
/// (latency record, telemetry event, ticket resolution, counters).
///
/// Boxed-and-pinned inside (`Pin<Box<dyn Future>>` is `Unpin`), so this
/// whole type stays in safe code under the crate's `forbid(unsafe_code)`
/// — no pin projection needed.
struct RequestFuture<R> {
    request: Pin<Box<dyn Future<Output = R> + Send>>,
    /// The request's causal span id (0 = untraced).
    span: u64,
    /// Whether the inject span is still open: the first poll closes it
    /// (admission → execution start), whatever the poll returns.
    inject_open: bool,
    /// Energy accumulated across this request's polls, nJ: each poll is
    /// bracketed by two reads of the executing worker's energy meter
    /// and the deltas sum here — a request that parks for a second
    /// between polls is charged only what its polls actually drew.
    /// Stays `None` without emulated DVFS.
    energy_nj: Option<u64>,
    /// The request's class, for the per-class latency recorder.
    class: Priority,
    /// Completion context, taken exactly once at the final poll. If the
    /// task is dropped unpolled (pool shut down), this drops too and
    /// the ticket's latch stays unset — exactly like a `submit` closure
    /// released from a terminated pool's queues.
    done: Option<(Arc<ServeShared>, Arc<TicketInner<R>>, Instant)>,
}

impl<R> Future for RequestFuture<R> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.inject_open {
            this.inject_open = false;
            if let Some((shared, _, _)) = &this.done {
                shared.record_span(this.span, false, SpanPhase::Inject);
            }
        }
        let meter0 = current_worker_energy_nj();
        let polled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            this.request.as_mut().poll(cx)
        }));
        if let (Some(e0), Some(e1)) = (meter0, current_worker_energy_nj()) {
            this.energy_nj = Some(this.energy_nj.unwrap_or(0) + e1.saturating_sub(e0));
        }
        let outcome = match polled {
            Ok(Poll::Pending) => return Poll::Pending,
            Ok(Poll::Ready(value)) => Outcome::Done(value),
            Err(payload) => Outcome::Panicked(payload),
        };
        let (shared, inner, t0) = this
            .done
            .take()
            .expect("request future polled again after completion");
        let energy_uj = this.energy_nj.map(|nj| (nj + 500) / 1_000);
        shared.record_completion(this.span, t0, energy_uj, this.class);
        if let Some(uj) = energy_uj {
            inner.set_energy_uj(uj);
        }
        inner.complete(outcome);
        shared.count_completion();
        Poll::Ready(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_wait_round_trips() {
        let server = Server::builder().workers(2).build();
        let t = server.submit(|| 21 * 2);
        assert_eq!(t.wait(), 42);
        assert_eq!(server.submitted(), 1);
        server.drain();
        assert_eq!(server.completed(), 1);
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.latency().count(), 1);
        server.shutdown();
    }

    #[test]
    fn requests_may_fork_join_internally() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = hermes_rt::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let server = Server::builder().workers(4).build();
        let tickets: Vec<_> = (0..8).map(|_| server.submit(|| fib(16))).collect();
        for t in tickets {
            assert_eq!(t.wait(), 987);
        }
        assert!(server.pool().stats().pushes > 0, "requests forked");
        server.shutdown();
    }

    #[test]
    fn dropped_tickets_still_complete_and_drain() {
        let server = Server::builder().workers(2).build();
        for i in 0..64u64 {
            drop(server.submit(move || i * i));
        }
        server.drain();
        assert_eq!(server.completed(), 64);
        assert_eq!(server.latency().count(), 64);
        server.shutdown();
    }

    #[test]
    fn panicking_request_is_isolated() {
        let server = Server::builder().workers(2).build();
        let bad = server.submit(|| panic!("bad request"));
        let good = server.submit(|| "still serving");
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || bad.wait())).is_err()
        );
        assert_eq!(good.wait(), "still serving");
        server.drain();
        assert_eq!(server.completed(), 2, "panicked request still completed");
        server.shutdown();
    }

    #[test]
    fn drain_for_times_out_honestly() {
        let server = Server::builder().workers(1).build();
        let t = server.submit(|| std::thread::sleep(Duration::from_millis(300)));
        assert!(!server.drain_for(Duration::from_millis(10)));
        assert!(server.drain_for(Duration::from_secs(10)));
        t.wait();
        server.shutdown();
    }

    #[test]
    fn latency_events_reach_the_sink() {
        use hermes_telemetry::RingSink;
        let workers = 2;
        let sink = Arc::new(RingSink::new(workers));
        let mut server = Server::builder()
            .workers(workers)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        for _ in 0..32 {
            drop(server.submit(|| std::hint::black_box(3 + 4)));
        }
        server.stop();
        let report = sink.report("serve-unit", "rt", 0.1, 0.0);
        assert_eq!(report.latency_hist.count(), 32, "one event per request");
        assert_eq!(server.latency().count(), 32);
        // The sink's merged histogram and the server's own recorder saw
        // the same samples (bucket-for-bucket).
        assert_eq!(report.latency_hist, server.latency());
    }

    #[test]
    fn submit_async_round_trips() {
        let server = Server::builder().workers(2).build();
        let t = server.submit_async(async { 21 * 2 });
        assert_eq!(t.wait(), 42);
        server.drain();
        assert_eq!(server.completed(), 1);
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.latency().count(), 1);
        server.shutdown();
    }

    #[test]
    fn async_requests_compose_by_awaiting_tickets() {
        // One worker: if awaiting the inner ticket *blocked* the worker,
        // nothing could ever run the inner request and this would hang.
        // Awaiting parks the outer future instead, freeing the worker.
        let server = Arc::new(Server::builder().workers(1).build());
        let inner_server = Arc::clone(&server);
        let outer = server.submit_async(async move {
            let inner = inner_server.submit(|| 21u64);
            inner.await * 2
        });
        assert_eq!(outer.wait(), 42);
        server.drain();
        assert_eq!(server.completed(), 2);
        assert_eq!(server.in_flight(), 0);
    }

    #[test]
    fn waiting_on_a_ticket_inside_a_worker_panics_instead_of_deadlocking() {
        // Regression: `Ticket::wait()` from a pool worker used to be a
        // silent deadlock on a 1-worker pool (the waiting worker is the
        // only thread that could run the inner request). It must panic
        // with a diagnosis instead.
        let server = Arc::new(Server::builder().workers(1).build());
        let inner_server = Arc::clone(&server);
        let outer = server.submit(move || {
            let inner = inner_server.submit(|| 1u32);
            inner.wait()
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || outer.wait()))
            .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("guard panics with a formatted message");
        assert!(
            msg.contains("deadlock"),
            "diagnosis names the hazard: {msg}"
        );
        assert!(msg.contains("submit_async"), "and the remedy: {msg}");
        // The inner request is still queued and still completes; the
        // panicked outer request completed (as a panic outcome) too.
        server.drain();
        assert_eq!(server.completed(), 2);
    }

    #[test]
    fn metrics_are_live_and_carry_request_state() {
        use hermes_telemetry::RingSink;
        let server = Server::builder().workers(2).build();
        assert!(
            server.metrics().is_none(),
            "no sink, no metrics hub, no snapshot"
        );
        server.shutdown();

        let sink = Arc::new(RingSink::new(2));
        let server = Server::builder()
            .workers(2)
            .telemetry(sink as Arc<dyn TelemetrySink>)
            .build();
        // A request that holds until we've sampled mid-run metrics.
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release = Arc::clone(&gate);
        let slow = server.submit(move || {
            while !release.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
        for _ in 0..16 {
            drop(server.submit(|| std::hint::black_box(7 * 6)));
        }
        // Mid-run: the slow request is admitted and unfinished.
        let deadline = Instant::now() + Duration::from_secs(10);
        let snapshot = loop {
            let m = server.metrics().expect("sink attached");
            if m.in_flight >= 1 && m.at_ns > 0 {
                break m;
            }
            assert!(Instant::now() < deadline, "no live snapshot observed");
            std::thread::yield_now();
        };
        assert!(snapshot.in_flight >= 1, "slow request still in flight");
        assert_eq!(snapshot.workers.len(), 2);
        assert!(snapshot.utilization() >= 0.0 && snapshot.utilization() <= 1.0);
        gate.store(true, Ordering::SeqCst);
        slow.wait();
        server.drain();
        let settled = server.metrics().expect("sink attached");
        assert_eq!(settled.in_flight, 0);
        assert!(settled.latency_p50_ns.is_some(), "17 latencies recorded");
        assert!(settled.latency_p99_ns.is_some());
        assert!(settled.tasks() >= 17, "every request executed on a worker");
        let text = hermes_obs::prometheus_text(&settled, "hermes");
        assert!(text.contains("hermes_requests_in_flight 0"));
        server.shutdown();
    }

    #[test]
    fn request_spans_stitch_and_reconcile_with_counters() {
        use hermes_obs::SpanForest;
        use hermes_telemetry::{RingSink, SpanPhase};
        const SYNC: u64 = 12;
        const ASYNC: u64 = 9;
        // Pend once, waking immediately: forces every async request
        // through a park-wait/wake/re-queue round so the stitched spans
        // exercise the full task lifecycle.
        struct YieldOnce(bool);
        impl Future for YieldOnce {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.0 {
                    Poll::Ready(())
                } else {
                    self.0 = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        let sink = Arc::new(RingSink::with_ring_capacity(2, 1 << 16));
        let mut server = Server::builder()
            .workers(2)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        let tickets: Vec<_> = (0..SYNC).map(|i| server.submit(move || i * 2)).collect();
        let async_tickets: Vec<_> = (0..ASYNC)
            .map(|i| {
                server.submit_async(async move {
                    YieldOnce(false).await;
                    i * 3
                })
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), i as u64 * 2);
        }
        for (i, t) in async_tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), i as u64 * 3);
        }
        server.stop();

        let forest = SpanForest::from_sink(&sink);
        assert_eq!(
            forest.len() as u64,
            SYNC + ASYNC,
            "one span per request, sync and async alike"
        );
        let mut completed = 0;
        for span in &forest.spans {
            // Every request's journey starts with an inject episode
            // (admission → execution start) and ends with the terminal
            // complete instant.
            assert_eq!(
                span.phase_intervals(SpanPhase::Inject).len(),
                1,
                "span {} inject episodes",
                span.id
            );
            assert!(
                !span.phase_intervals(SpanPhase::Poll).is_empty(),
                "span {} was polled/executed",
                span.id
            );
            completed += u64::from(span.completed_at.is_some());
        }
        assert_eq!(completed, SYNC + ASYNC, "every span terminated");
        // Async requests additionally ride the rt task layer: their
        // queued episodes come from `spawn_future_traced`.
        let queued_spans = forest
            .spans
            .iter()
            .filter(|s| !s.phase_intervals(SpanPhase::Queued).is_empty())
            .count() as u64;
        assert_eq!(queued_spans, ASYNC);
        // Nothing was lost: zero ring drops, so the reconciliation
        // above was over the complete record.
        let report = sink.report("serve-spans", "rt", 0.1, 0.0);
        assert_eq!(report.totals().dropped_events, 0);
        assert_eq!(report.latency_hist.count(), SYNC + ASYNC);
    }

    #[test]
    fn requests_are_charged_joules_under_emulated_dvfs() {
        use hermes_core::Frequency;
        use hermes_telemetry::RingSink;
        const N: u64 = 24;
        let sink = Arc::new(RingSink::new(2));
        let mut server = Server::builder()
            .workers(2)
            .emulated_dvfs(Frequency::from_mhz(2_400), 8.0)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        let spin = || {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_micros(300) {
                std::hint::black_box(0u64);
            }
        };
        let sync_tickets: Vec<Ticket<()>> = (0..N / 2).map(|_| server.submit(spin)).collect();
        let async_tickets: Vec<Ticket<()>> = (0..N / 2)
            .map(|_| server.submit_async(async move { spin() }))
            .collect();
        for t in sync_tickets.into_iter().chain(async_tickets) {
            while !t.is_done() {
                std::thread::yield_now();
            }
            let uj = t
                .energy_microjoules()
                .expect("emulated DVFS meters every request");
            // 300 µs of busy work at a several-watt draw is on the
            // order of a millijoule; zero would mean the bracket missed.
            assert!(uj > 0, "request charged {uj} µJ");
            t.wait();
        }
        // The server-side recorder saw one sample per request, and its
        // quantiles surface through the metrics snapshot.
        assert_eq!(server.request_energy().count(), N);
        let metrics = server.metrics().expect("sink attached");
        assert!(metrics.energy_p50_uj.is_some());
        assert!(metrics.energy_p99_uj.is_some());
        server.stop();
        // Per-worker meters reached the snapshot, so the prometheus
        // energy families render.
        let settled = server.metrics().expect("sink attached");
        assert!(settled.workers.iter().any(|w| w.energy_uj > 0));
        let text = hermes_obs::prometheus_text(&settled, "hermes");
        assert!(text.contains("hermes_energy_joules_total{worker=\"0\"}"));
        assert!(text.contains("hermes_request_energy_p50_joules"));
        // One RequestEnergy event per request landed in the sink, and
        // the folded report's energy histogram matches the recorder.
        let report = sink.report("serve-energy", "rt", 0.1, 0.0);
        assert_eq!(report.energy_hist.count(), N);
        assert_eq!(report.energy_hist, server.request_energy());
    }

    #[test]
    fn unmetered_requests_report_no_energy() {
        let server = Server::builder().workers(2).build();
        let t = server.submit(|| 2 + 2);
        while !t.is_done() {
            std::thread::yield_now();
        }
        assert_eq!(t.energy_microjoules(), None, "no meter, no joules");
        assert_eq!(t.wait(), 4);
        assert_eq!(server.request_energy().count(), 0);
        server.shutdown();
    }

    #[test]
    fn p99_budget_breach_fires_once_with_flight_dump() {
        use hermes_obs::FlightRecorder;
        use parking_lot::Mutex;
        let breaches: Arc<Mutex<Vec<P99Breach>>> = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&breaches);
        let mut server = Server::builder()
            .workers(2)
            .admission(
                AdmissionPolicy::default()
                    .flight_recorder(FlightRecorder::new(2))
                    // Zero budget: the first check (64 completions in)
                    // breaches.
                    .p99_budget(Duration::ZERO, move |b| seen.lock().push(b)),
            )
            .build();
        for _ in 0..(3 * BREACH_CHECK_INTERVAL) {
            drop(server.submit(|| std::hint::black_box(1 + 1)));
        }
        server.stop();
        let breaches = breaches.lock();
        assert_eq!(breaches.len(), 1, "one-shot latch: exactly one callback");
        let breach = &breaches[0];
        assert!(breach.p99_ns > 0, "a real quantile crossed the budget");
        assert_eq!(breach.budget_ns, 0);
        assert_eq!(breach.completed % BREACH_CHECK_INTERVAL, 0);
        let dump = breach.dump.as_ref().expect("recorder attached");
        assert!(!dump.is_empty(), "the dump carries scheduling history");
    }

    #[test]
    fn deadlock_panic_carries_the_flight_recorder_tail() {
        use hermes_obs::FlightRecorder;
        let server = Arc::new(
            Server::builder()
                .workers(1)
                .admission(AdmissionPolicy::default().flight_recorder(FlightRecorder::new(1)))
                .build(),
        );
        let inner_server = Arc::clone(&server);
        let outer = server.submit(move || {
            let inner = inner_server.submit(|| 1u32);
            inner.wait()
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || outer.wait()))
            .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("guard panics with a formatted message");
        assert!(msg.contains("deadlock"), "still diagnoses: {msg}");
        assert!(
            msg.contains("flight-recorder events"),
            "and now ships the post-mortem: {msg}"
        );
        assert!(msg.contains("worker 0"), "events name their stream: {msg}");
        server.drain();
    }

    #[test]
    fn background_is_shed_under_overload_but_high_never_is() {
        use std::sync::atomic::AtomicBool;
        // One worker, held hostage: in-flight / workers == 1.0, well
        // past the default 0.9 shed threshold.
        let server = Server::builder().workers(1).build();
        let gate = Arc::new(AtomicBool::new(false));
        let release = Arc::clone(&gate);
        let slow = server.submit(move || {
            while !release.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
        // Background: refused, typed error, nothing ran.
        let shed = server.submit_with(
            || 1u32,
            SubmitOptions::default().priority(Priority::Background),
        );
        assert!(shed.is_done(), "shed tickets resolve at submission");
        assert!(shed.was_shed());
        let err = shed.shed_error().expect("typed shed error");
        assert_eq!(err.priority, Priority::Background);
        assert!(matches!(
            err.reason,
            ShedReason::Overloaded {
                utilization_permille
            } if utilization_permille >= 900
        ));
        // Shed requests have no energy reading and no latency sample.
        let shed2 = server.submit_with(
            || 2u32,
            SubmitOptions::default().priority(Priority::Background),
        );
        assert_eq!(shed2.energy_microjoules(), None);
        assert!(shed2.wait_result().is_err());
        assert_eq!(server.shed(), 2);
        assert_eq!(server.latency().count(), 0, "no latency for shed work");
        assert_eq!(server.latency_for(Priority::Background).count(), 0);
        // High and plain Normal are admitted even at full utilization.
        let high = server.submit_with(|| 10u32, SubmitOptions::default().priority(Priority::High));
        let normal = server.submit_with(|| 20u32, SubmitOptions::default());
        assert!(!high.is_done() || !high.was_shed());
        gate.store(true, Ordering::SeqCst);
        slow.wait();
        assert_eq!(high.wait_result(), Ok(10));
        assert_eq!(normal.wait(), 20);
        server.drain();
        // Shed requests never inflate the completion counters.
        assert_eq!(server.completed(), 3);
        assert_eq!(server.submitted(), 5);
        assert_eq!(server.latency_for(Priority::High).count(), 1);
        server.shutdown();
    }

    #[test]
    fn background_is_admitted_again_once_load_clears() {
        let server = Server::builder().workers(2).build();
        server.drain();
        // Idle pool: utilization estimate 0, background sails through.
        let t = server.submit_with(
            || "best effort",
            SubmitOptions::default().priority(Priority::Background),
        );
        assert_eq!(t.wait_result(), Ok("best effort"));
        assert_eq!(server.shed(), 0);
        assert_eq!(server.latency_for(Priority::Background).count(), 1);
        server.shutdown();
    }

    #[test]
    fn unmeetable_deadlines_are_refused_up_front() {
        let server = Server::builder().workers(2).build();
        // Teach the p99 estimate that requests take ~2 ms.
        let tickets: Vec<_> = (0..8)
            .map(|_| server.submit(|| std::thread::sleep(Duration::from_millis(2))))
            .collect();
        for t in tickets {
            t.wait();
        }
        let p99 = server.latency().p99().expect("8 samples recorded");
        assert!(p99 >= 2_000_000);
        // A normal request demanding completion in 1 µs is hopeless;
        // admission says so immediately instead of queueing it.
        let doomed = server.submit_with(
            || 1u32,
            SubmitOptions::default().deadline(Duration::from_micros(1)),
        );
        let err = doomed.wait_result().expect_err("deadline unmeetable");
        assert_eq!(err.priority, Priority::Normal);
        assert!(matches!(
            err.reason,
            ShedReason::DeadlineUnmeetable { p99_ns, deadline_ns }
                if p99_ns == p99 && deadline_ns == 1_000
        ));
        // A generous deadline is admitted (and rides the deadline lane).
        let fine = server.submit_with(
            || 2u32,
            SubmitOptions::default().deadline(Duration::from_secs(30)),
        );
        assert_eq!(fine.wait_result(), Ok(2));
        server.shutdown();
    }

    #[test]
    fn async_submission_sheds_with_the_same_protocol() {
        use std::sync::atomic::AtomicBool;
        let server = Server::builder().workers(1).build();
        let gate = Arc::new(AtomicBool::new(false));
        let release = Arc::clone(&gate);
        let slow = server.submit(move || {
            while !release.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
        let shed = server.submit_async_with(
            async { 1u32 },
            SubmitOptions::default().priority(Priority::Background),
        );
        assert!(shed.was_shed(), "async background shed under overload");
        assert_eq!(server.shed(), 1);
        let high = server.submit_async_with(
            async { 2u32 },
            SubmitOptions::default().priority(Priority::High),
        );
        gate.store(true, Ordering::SeqCst);
        slow.wait();
        assert_eq!(high.wait_result(), Ok(2));
        server.drain();
        assert_eq!(server.completed(), 2);
        server.shutdown();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_builder_knobs_still_configure_the_policy() {
        use hermes_obs::FlightRecorder;
        use parking_lot::Mutex;
        // The pre-redesign spelling compiles and behaves identically:
        // the shims forward into the admission policy.
        let breaches: Arc<Mutex<Vec<P99Breach>>> = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&breaches);
        let mut server = Server::builder()
            .workers(2)
            .injector_capacity(1 << 12)
            .flight_recorder(FlightRecorder::new(2))
            .p99_budget(Duration::ZERO, move |b| seen.lock().push(b))
            .build();
        for _ in 0..(2 * BREACH_CHECK_INTERVAL) {
            drop(server.submit(|| std::hint::black_box(1 + 1)));
        }
        server.stop();
        let breaches = breaches.lock();
        assert_eq!(breaches.len(), 1, "shimmed p99 budget still fires");
        assert!(
            breaches[0].dump.is_some(),
            "shimmed flight recorder still wired into the breach"
        );
    }

    #[test]
    fn timer_backed_requests_occupy_no_worker() {
        use crate::VirtualTimer;
        const N: usize = 4_096;
        let timer = VirtualTimer::new();
        let server = Server::builder().workers(2).build();
        let tickets: Vec<_> = (0..N)
            .map(|i| {
                let t = timer.clone();
                server.submit_async(async move {
                    t.sleep(1_000).await;
                    i as u64
                })
            })
            .collect();
        // Two workers drain 4096 first-polls; every one parks on the
        // timer without holding a worker.
        let deadline = Instant::now() + Duration::from_secs(30);
        while timer.pending() < N {
            assert!(
                Instant::now() < deadline,
                "stalled with {} of {N} sleepers parked",
                timer.pending()
            );
            std::thread::yield_now();
        }
        assert_eq!(server.in_flight(), N as u64);
        assert_eq!(server.completed(), 0);
        assert_eq!(timer.advance(1_000), N, "one advance wakes the cohort");
        server.drain();
        assert_eq!(server.completed(), N as u64);
        assert_eq!(server.latency().count(), N as u64);
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), i as u64);
        }
        server.shutdown();
    }
}
