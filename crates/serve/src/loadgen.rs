//! Deterministic open-loop load generation.
//!
//! An *open-loop* generator submits requests at externally scheduled
//! arrival instants, never waiting for completions — the regime of a
//! service behind independent clients, and the one where queueing
//! delay, idle-thief energy, and parking behaviour actually show up (a
//! closed loop self-throttles and hides all three).
//!
//! Arrivals are Poisson: inter-arrival gaps are exponential draws from
//! the vendored deterministic `rand` shim, so the *shape* of a schedule
//! is a pure function of its seed and length. The schedule is generated
//! in **unit-mean** gaps and scaled to a target rate at use time — the
//! bench harness pins the seeded unit schedule (hashable, reproducible
//! across hosts) while calibrating the rate to the host's measured
//! service time.

use crate::{Server, Ticket};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// A deterministic Poisson arrival schedule in unit-mean inter-arrival
/// gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonSchedule {
    gaps: Vec<f64>,
    seed: u64,
}

impl PoissonSchedule {
    /// `n` exponential unit-mean gaps drawn deterministically from
    /// `seed`.
    #[must_use]
    pub fn unit(seed: u64, n: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let gaps = (0..n)
            .map(|_| {
                // u ∈ [0, 1) ⇒ 1 − u ∈ (0, 1]: the log argument is
                // never zero.
                let u: f64 = rng.gen();
                -(1.0 - u).ln()
            })
            .collect();
        PoissonSchedule { gaps, seed }
    }

    /// The seed this schedule was drawn from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of arrivals in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Cumulative arrival offsets from the start of the run at
    /// `rate_hz` requests per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_hz` is positive and finite.
    #[must_use]
    pub fn offsets(&self, rate_hz: f64) -> Vec<Duration> {
        assert!(
            rate_hz > 0.0 && rate_hz.is_finite(),
            "arrival rate must be positive and finite, got {rate_hz}"
        );
        let mut t = 0.0f64;
        self.gaps
            .iter()
            .map(|gap| {
                t += gap / rate_hz;
                Duration::from_secs_f64(t)
            })
            .collect()
    }

    /// On/off square-wave burst modulation: arrivals alternate between
    /// full-rate "on" bursts and an "off" lull at `off_ratio` of the
    /// base rate, switching phase every `half_period` arrivals. Gap `i`
    /// is divided by its phase's rate ratio, so the result is a new
    /// schedule the existing [`offsets`](Self::offsets) /
    /// [`fingerprint`](Self::fingerprint) machinery consumes unchanged
    /// — modulation is pure arithmetic on the seeded draw, and the same
    /// seed and parameters reproduce the identical schedule (and
    /// fingerprint) on any host.
    ///
    /// # Panics
    ///
    /// Panics unless `half_period` is nonzero and `off_ratio` is
    /// positive, finite, and at most 1.
    #[must_use]
    pub fn square_wave(&self, half_period: usize, off_ratio: f64) -> Self {
        assert!(half_period > 0, "square-wave half period must be nonzero");
        assert!(
            off_ratio > 0.0 && off_ratio.is_finite() && off_ratio <= 1.0,
            "off-phase rate ratio must be in (0, 1], got {off_ratio}"
        );
        let gaps = self
            .gaps
            .iter()
            .enumerate()
            .map(|(i, gap)| {
                let on = (i / half_period).is_multiple_of(2);
                gap / if on { 1.0 } else { off_ratio }
            })
            .collect();
        PoissonSchedule {
            gaps,
            seed: self.seed,
        }
    }

    /// Linear ramp modulation: the instantaneous rate climbs (or falls)
    /// from `start_ratio` to `end_ratio` of the base rate across the
    /// schedule, gap `i` divided by the interpolated ratio. Like
    /// [`square_wave`](Self::square_wave), the transform is
    /// deterministic arithmetic on the seeded gaps — same seed, same
    /// ramp, same fingerprint everywhere.
    ///
    /// # Panics
    ///
    /// Panics unless both ratios are positive and finite.
    #[must_use]
    pub fn ramp(&self, start_ratio: f64, end_ratio: f64) -> Self {
        for r in [start_ratio, end_ratio] {
            assert!(
                r > 0.0 && r.is_finite(),
                "ramp rate ratios must be positive and finite, got {r}"
            );
        }
        let n = self.gaps.len();
        let gaps = self
            .gaps
            .iter()
            .enumerate()
            .map(|(i, gap)| {
                let frac = if n > 1 {
                    i as f64 / (n - 1) as f64
                } else {
                    0.0
                };
                gap / (start_ratio + (end_ratio - start_ratio) * frac)
            })
            .collect();
        PoissonSchedule {
            gaps,
            seed: self.seed,
        }
    }

    /// FNV-1a hash of the schedule's exact gap bit patterns — the
    /// reproducibility fingerprint the bench artifact commits, so CI
    /// can prove it replayed the identical arrival process.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for gap in &self.gaps {
            for byte in gap.to_bits().to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Outcome of one open-loop run (see [`run_open_loop`]).
#[derive(Debug)]
pub struct OpenLoopRun<R> {
    /// One ticket per submitted request, in arrival order.
    pub tickets: Vec<Ticket<R>>,
    /// Wall-clock from the first scheduled instant to the last
    /// submission returning.
    pub submit_elapsed: Duration,
    /// Submissions that fell behind their scheduled instant by more
    /// than one millisecond (generator overload — the schedule, not the
    /// server, was the bottleneck for these).
    pub late_submissions: usize,
}

/// The shared pacing loop: hold each submission to its scheduled
/// instant, then hand the index to `submit`.
fn run_paced<R>(
    offsets: &[Duration],
    mut submit: impl FnMut(usize) -> Ticket<R>,
) -> OpenLoopRun<R> {
    // OS sleep granularity is coarse (hundreds of µs to ms in
    // containers) while open-loop inter-arrival gaps are often shorter:
    // sleep until close to the instant, then yield-spin the residue —
    // yielding, not busy-spinning, so a one-core host's workers still
    // run while the generator waits.
    const SPIN_RESIDUE: Duration = Duration::from_micros(500);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(offsets.len());
    let mut late = 0usize;
    for (i, &at) in offsets.iter().enumerate() {
        let now = start.elapsed();
        if at > now + SPIN_RESIDUE {
            std::thread::sleep(at - now - SPIN_RESIDUE);
        }
        while start.elapsed() < at {
            std::thread::yield_now();
        }
        if start.elapsed().saturating_sub(at) > Duration::from_millis(1) {
            late += 1;
        }
        tickets.push(submit(i));
    }
    OpenLoopRun {
        tickets,
        submit_elapsed: start.elapsed(),
        late_submissions: late,
    }
}

/// Drive `server` open-loop: submit `make_request(i)` at each offset of
/// `offsets`, sleeping between arrivals and never waiting on
/// completions. Returns the tickets plus generator-side health
/// counters; call [`Server::drain`] afterwards to wait for the tail.
pub fn run_open_loop<R, F, Req>(
    server: &Server,
    offsets: &[Duration],
    mut make_request: F,
) -> OpenLoopRun<R>
where
    F: FnMut(usize) -> Req,
    Req: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    run_paced(offsets, |i| server.submit(make_request(i)))
}

/// [`run_open_loop`] through the classed front door: `classify` picks
/// each arrival's [`SubmitOptions`](crate::SubmitOptions) (class,
/// deadline, cell hint) by request index, and submission goes through
/// [`Server::submit_with`] — so admission control applies, and arrivals
/// it refuses come back as already-resolved shed tickets (redeem with
/// [`Ticket::wait_result`](crate::Ticket::wait_result)). The multi-tenant
/// smoke corner in `sweep --serve --serve-classes` drives exactly this.
pub fn run_open_loop_classed<R, F, Req, C>(
    server: &Server,
    offsets: &[Duration],
    mut make_request: F,
    mut classify: C,
) -> OpenLoopRun<R>
where
    F: FnMut(usize) -> Req,
    Req: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
    C: FnMut(usize) -> crate::SubmitOptions,
{
    run_paced(offsets, |i| {
        server.submit_with(make_request(i), classify(i))
    })
}

/// The async sibling of [`run_open_loop`]: each arrival submits a
/// *future* via [`Server::submit_async`], so pending requests (timer
/// waits, awaited sub-requests) occupy no worker. The generator still
/// paces admissions in real time; requests that sleep on a
/// [`VirtualTimer`](crate::VirtualTimer) additionally need the caller
/// to advance virtual time before [`Server::drain`] can finish.
pub fn run_open_loop_async<R, F, Fut>(
    server: &Server,
    offsets: &[Duration],
    mut make_request: F,
) -> OpenLoopRun<R>
where
    F: FnMut(usize) -> Fut,
    Fut: std::future::Future<Output = R> + Send + 'static,
    R: Send + 'static,
{
    run_paced(offsets, |i| server.submit_async(make_request(i)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = PoissonSchedule::unit(7, 500);
        let b = PoissonSchedule::unit(7, 500);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = PoissonSchedule::unit(8, 500);
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed changes the draw");
        assert_ne!(
            a.fingerprint(),
            PoissonSchedule::unit(7, 499).fingerprint(),
            "length changes the fingerprint"
        );
    }

    #[test]
    fn unit_gaps_have_roughly_unit_mean() {
        let s = PoissonSchedule::unit(42, 20_000);
        let mean = s.gaps.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "exponential mean ≈ 1: {mean}");
        assert!(s.gaps.iter().all(|&g| g >= 0.0 && g.is_finite()));
    }

    #[test]
    fn offsets_scale_with_rate() {
        let s = PoissonSchedule::unit(1, 100);
        let slow = s.offsets(10.0);
        let fast = s.offsets(1000.0);
        assert_eq!(slow.len(), 100);
        // Offsets are cumulative (sorted) and scale inversely with rate.
        assert!(slow.windows(2).all(|w| w[0] <= w[1]));
        let ratio = slow[99].as_secs_f64() / fast[99].as_secs_f64();
        assert!((ratio - 100.0).abs() < 1.0, "rate ratio preserved: {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = PoissonSchedule::unit(1, 4).offsets(0.0);
    }

    #[test]
    fn square_wave_stretches_off_phase_gaps_deterministically() {
        let base = PoissonSchedule::unit(11, 400);
        let burst = base.square_wave(100, 0.25);
        assert_eq!(burst, base.square_wave(100, 0.25), "pure transform");
        assert_ne!(burst.fingerprint(), base.fingerprint());
        // On-phase gaps are untouched; off-phase gaps are 4× longer.
        assert_eq!(burst.gaps[0], base.gaps[0]);
        assert_eq!(burst.gaps[150], base.gaps[150] / 0.25);
        assert_eq!(burst.gaps[250], base.gaps[250]);
        // Offsets still consume the modulated schedule unchanged.
        let offs = burst.offsets(1_000.0);
        assert_eq!(offs.len(), 400);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ramp_densifies_arrivals_toward_the_end() {
        let base = PoissonSchedule::unit(13, 2_000);
        let up = base.ramp(0.2, 1.0);
        assert_eq!(up, base.ramp(0.2, 1.0), "pure transform");
        assert_ne!(up.fingerprint(), base.fingerprint());
        // Rising rate ⇒ the first half of the run spans more unit time
        // than the second half.
        let first: f64 = up.gaps[..1_000].iter().sum();
        let second: f64 = up.gaps[1_000..].iter().sum();
        assert!(
            first > 2.0 * second,
            "ramp front-loads the gaps: {first} vs {second}"
        );
        // Endpoint ratios hit exactly.
        assert_eq!(up.gaps[0], base.gaps[0] / 0.2);
        assert_eq!(up.gaps[1_999], base.gaps[1_999]);
    }

    #[test]
    #[should_panic(expected = "half period")]
    fn zero_half_period_panics() {
        let _ = PoissonSchedule::unit(1, 4).square_wave(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "ramp rate ratios")]
    fn non_positive_ramp_ratio_panics() {
        let _ = PoissonSchedule::unit(1, 4).ramp(0.0, 1.0);
    }

    #[test]
    fn open_loop_submits_every_request() {
        let server = Server::builder().workers(2).build();
        // ~2000 req/s for 50 requests: a ~25 ms run.
        let offsets = PoissonSchedule::unit(3, 50).offsets(2_000.0);
        let run = run_open_loop(&server, &offsets, |i| move || i as u64 * 2);
        assert_eq!(run.tickets.len(), 50);
        server.drain();
        assert_eq!(server.completed(), 50);
        for (i, t) in run.tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), i as u64 * 2);
        }
        assert_eq!(server.latency().count(), 50);
        server.shutdown();
    }

    #[test]
    fn open_loop_async_submits_every_request() {
        let server = Server::builder().workers(2).build();
        let offsets = PoissonSchedule::unit(9, 40).offsets(4_000.0);
        let run = run_open_loop_async(&server, &offsets, |i| async move { i as u64 + 1 });
        assert_eq!(run.tickets.len(), 40);
        server.drain();
        assert_eq!(server.completed(), 40);
        for (i, t) in run.tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), i as u64 + 1);
        }
        server.shutdown();
    }
}
