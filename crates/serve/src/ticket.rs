//! Completion tickets handed out by [`Server::submit`](crate::Server::submit)
//! and [`Server::submit_async`](crate::Server::submit_async).

use hermes_obs::FlightRecorder;
use hermes_rt::{current_worker_index, Priority, WakerLatch};
use parking_lot::Mutex;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};

/// How many flight-recorder entries the deadlock panic appends: enough
/// recent history to see what every worker was doing, small enough to
/// stay readable in a panic message.
const PANIC_DUMP_TAIL: usize = 48;

/// Why admission control refused a request. Carried by the
/// [`Shed`](Outcome::Shed) terminal outcome and returned (typed, not
/// panicked) from [`Ticket::wait_result`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The pool's utilization estimate crossed the policy's shed
    /// threshold; background work is refused first under overload.
    Overloaded {
        /// The utilization estimate at the admission decision, in
        /// permille (937 = 93.7%).
        utilization_permille: u32,
    },
    /// A deadline-carrying normal request whose deadline the live p99
    /// says cannot be met — better to refuse now than to queue work
    /// that will miss.
    DeadlineUnmeetable {
        /// The rolling 99th-percentile service latency at the decision, ns.
        p99_ns: u64,
        /// The request's relative deadline, ns.
        deadline_ns: u64,
    },
}

/// The typed error a shed request resolves to: the request never ran
/// (its energy and latency stay unrecorded), and redeeming its ticket
/// through [`Ticket::wait_result`] yields this instead of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedError {
    /// The refused request's class.
    pub priority: Priority,
    /// Why admission control refused it.
    pub reason: ShedReason,
}

impl std::fmt::Display for ShedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            ShedReason::Overloaded {
                utilization_permille,
            } => write!(
                f,
                "{} request shed: pool at {}.{}% utilization",
                self.priority.name(),
                utilization_permille / 10,
                utilization_permille % 10,
            ),
            ShedReason::DeadlineUnmeetable {
                p99_ns,
                deadline_ns,
            } => write!(
                f,
                "{} request shed: {deadline_ns} ns deadline unmeetable (p99 {p99_ns} ns)",
                self.priority.name(),
            ),
        }
    }
}

impl std::error::Error for ShedError {}

/// What a request left behind: its value, the payload of the panic that
/// killed it, or the [`ShedError`] admission control refused it with.
pub(crate) enum Outcome<R> {
    /// The request ran to completion.
    Done(R),
    /// The request panicked; the payload re-raises on redemption.
    Panicked(Box<dyn std::any::Any + Send + 'static>),
    /// Admission control refused the request; it never ran.
    Shed(ShedError),
}

impl<R> From<std::thread::Result<R>> for Outcome<R> {
    fn from(result: std::thread::Result<R>) -> Self {
        match result {
            Ok(value) => Outcome::Done(value),
            Err(payload) => Outcome::Panicked(payload),
        }
    }
}

/// Sentinel for "no energy measurement": the request ran on a pool
/// without emulated DVFS (or off-worker), so the ticket reports `None`
/// rather than a misleading zero.
const ENERGY_UNMEASURED: u64 = u64::MAX;

pub(crate) struct TicketInner<R> {
    latch: WakerLatch,
    outcome: Mutex<Option<Outcome<R>>>,
    /// Energy the request's polls consumed on their workers, µJ;
    /// [`ENERGY_UNMEASURED`] until (and unless) the completion tail
    /// writes it, always before the latch is set.
    energy_uj: AtomicU64,
}

impl<R> TicketInner<R> {
    pub(crate) fn new() -> Self {
        TicketInner {
            latch: WakerLatch::new(),
            outcome: Mutex::new(None),
            energy_uj: AtomicU64::new(ENERGY_UNMEASURED),
        }
    }

    /// Publish the request's measured energy. Must happen before
    /// [`complete`](Self::complete): the latch's release/acquire pair is
    /// what makes this relaxed store visible to the redeeming thread.
    pub(crate) fn set_energy_uj(&self, uj: u64) {
        self.energy_uj
            .store(uj.min(ENERGY_UNMEASURED - 1), Ordering::Relaxed);
    }

    /// Publish the request's outcome and release the waiter. Write
    /// first, then set the latch: the waiter's acquire-probe of the
    /// latch orders the outcome read after this write. Setting the
    /// latch also wakes a registered waker, if the ticket is being
    /// awaited rather than waited on.
    pub(crate) fn complete(&self, outcome: Outcome<R>) {
        *self.outcome.lock() = Some(outcome);
        self.latch.set();
    }
}

/// A handle to one submitted request: redeem it with
/// [`wait`](Ticket::wait) for the request's return value, `.await` it
/// (a `Ticket` is a [`Future`]), or poll [`is_done`](Ticket::is_done).
/// Dropping the ticket is fine — the request still runs to completion
/// and still counts toward [`Server::drain`](crate::Server::drain);
/// only the return value is discarded (fire-and-forget submission).
pub struct Ticket<R> {
    inner: Arc<TicketInner<R>>,
    /// The server's flight recorder, when one is attached: the
    /// deadlock-guard panic in [`wait`](Self::wait) appends its
    /// retained event tail so the post-mortem ships with the panic.
    flight: Option<Arc<FlightRecorder>>,
}

impl<R> Ticket<R> {
    pub(crate) fn new(flight: Option<Arc<FlightRecorder>>) -> (Ticket<R>, Arc<TicketInner<R>>) {
        let inner = Arc::new(TicketInner::new());
        (
            Ticket {
                inner: Arc::clone(&inner),
                flight,
            },
            inner,
        )
    }

    /// Whether the request has completed (non-blocking).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.inner.latch.probe()
    }

    /// Emulated energy this request's execution consumed, in
    /// microjoules — the meter delta summed over its polls on pool
    /// workers. `None` until the request completes, and `None` forever
    /// when the server runs without
    /// [`emulated_dvfs`](crate::ServerBuilder::emulated_dvfs) (no meter,
    /// no joules — absent beats a misleading zero).
    #[must_use]
    pub fn energy_microjoules(&self) -> Option<u64> {
        if !self.is_done() {
            return None;
        }
        match self.inner.energy_uj.load(Ordering::Relaxed) {
            ENERGY_UNMEASURED => None,
            uj => Some(uj),
        }
    }

    /// Whether the request was refused by admission control
    /// (non-blocking; `false` while still pending).
    #[must_use]
    pub fn was_shed(&self) -> bool {
        self.shed_error().is_some()
    }

    /// The [`ShedError`] this request was refused with, once resolved;
    /// `None` while pending and for requests that actually ran.
    #[must_use]
    pub fn shed_error(&self) -> Option<ShedError> {
        if !self.is_done() {
            return None;
        }
        match self.inner.outcome.lock().as_ref() {
            Some(Outcome::Shed(err)) => Some(*err),
            _ => None,
        }
    }

    /// Block until the request resolves; `Ok` with its value, or the
    /// typed [`ShedError`] when admission control refused it. This is
    /// the shed-aware redemption path — sheds surface as errors here,
    /// never as panics.
    ///
    /// # Panics
    ///
    /// Panics under the same worker-thread deadlock guard as
    /// [`wait`](Self::wait), and re-raises the request's own panic if
    /// it died executing.
    pub fn wait_result(self) -> Result<R, ShedError> {
        self.deadlock_guard();
        self.inner.latch.wait();
        let outcome = self.take_written_outcome();
        match outcome {
            Outcome::Done(value) => Ok(value),
            Outcome::Panicked(payload) => std::panic::resume_unwind(payload),
            Outcome::Shed(err) => Err(err),
        }
    }

    /// Block until the request completes and return its value.
    ///
    /// # Panics
    ///
    /// Panics immediately if called from inside a pool worker thread:
    /// blocking a worker on a ticket can deadlock the pool (on a
    /// 1-worker pool the waiting worker *is* the only thread that could
    /// run the awaited request). Request code composes on tickets by
    /// `.await`ing them inside [`submit_async`](crate::Server::submit_async)
    /// futures, or polls [`is_done`](Self::is_done).
    ///
    /// If the request closure panicked, the panic is resumed here, on
    /// the waiter — the worker that ran the request has already moved
    /// on (the pool isolates request panics; see
    /// [`Server::submit`](crate::Server::submit)). A request shed by
    /// admission control also panics here (there is no value to
    /// return); callers submitting sheddable classes redeem through
    /// [`wait_result`](Self::wait_result) instead.
    pub fn wait(self) -> R {
        self.deadlock_guard();
        self.inner.latch.wait();
        self.take_outcome()
    }

    /// The `wait`-on-a-worker deadlock diagnosis, shared by both
    /// blocking redemption paths.
    fn deadlock_guard(&self) {
        if let Some(w) = current_worker_index() {
            let mut msg = format!(
                "Ticket::wait() called on pool worker {w}: blocking a worker \
                 on another request can deadlock the pool (the waited-on \
                 request may be queued behind this very thread). `.await` the \
                 ticket inside a submit_async future, or poll is_done()."
            );
            if let Some(flight) = &self.flight {
                let dump = flight.dump();
                msg.push_str(&format!(
                    "\nlast {} flight-recorder events ({} retained, {} overwritten):",
                    PANIC_DUMP_TAIL.min(dump.len()),
                    dump.len(),
                    dump.dropped
                ));
                for entry in dump.tail(PANIC_DUMP_TAIL) {
                    msg.push_str(&format!("\n  {entry}"));
                }
            }
            panic!("{msg}");
        }
    }

    /// Take the written outcome. Only call after the latch was
    /// observed set.
    fn take_written_outcome(&self) -> Outcome<R> {
        self.inner
            .outcome
            .lock()
            .take()
            .expect("latch set implies the outcome was written (tickets redeem once)")
    }

    /// Take the written outcome, resuming the request's panic if it
    /// died and panicking on a shed (value-returning paths have no
    /// error channel). Only call after the latch was observed set.
    fn take_outcome(&self) -> R {
        match self.take_written_outcome() {
            Outcome::Done(value) => value,
            Outcome::Panicked(payload) => std::panic::resume_unwind(payload),
            Outcome::Shed(err) => panic!("redeemed a shed ticket for its value: {err}"),
        }
    }
}

/// Awaiting a ticket parks the enclosing future until the request
/// completes — the non-blocking sibling of [`wait`](Ticket::wait),
/// safe on pool workers: the worker moves on to other tasks while the
/// ticket is pending.
impl<R> Future for Ticket<R> {
    type Output = R;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<R> {
        // Probe, then register-and-re-probe: `WakerLatch::register`
        // returns true when the latch was set concurrently, so a
        // completion racing this poll is never missed.
        if self.inner.latch.probe() || self.inner.latch.register(cx.waker()) {
            return Poll::Ready(self.take_outcome());
        }
        Poll::Pending
    }
}

impl<R> std::fmt::Debug for Ticket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("done", &self.is_done())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_resolves_after_complete() {
        let (ticket, inner) = Ticket::new(None);
        assert!(!ticket.is_done());
        inner.complete(Outcome::Done(41 + 1));
        assert!(ticket.is_done());
        assert_eq!(ticket.wait(), 42);
    }

    #[test]
    fn energy_is_none_until_measured_and_sticks_once_set() {
        let (ticket, inner) = Ticket::new(None);
        assert_eq!(ticket.energy_microjoules(), None, "pending: no reading");
        inner.set_energy_uj(1_250);
        assert_eq!(
            ticket.energy_microjoules(),
            None,
            "a reading is only visible once the request completed"
        );
        inner.complete(Outcome::Done(()));
        assert_eq!(ticket.energy_microjoules(), Some(1_250));

        // Unmeasured requests (no emulated DVFS) stay None forever.
        let (ticket, inner) = Ticket::<u8>::new(None);
        inner.complete(Outcome::Done(0));
        assert_eq!(ticket.energy_microjoules(), None);

        // The sentinel itself is unrepresentable as a measurement.
        let (ticket, inner) = Ticket::<u8>::new(None);
        inner.set_energy_uj(u64::MAX);
        inner.complete(Outcome::Done(0));
        assert_eq!(ticket.energy_microjoules(), Some(u64::MAX - 1));
    }

    #[test]
    fn ticket_wait_blocks_until_cross_thread_completion() {
        let (ticket, inner) = Ticket::new(None);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(15));
            inner.complete(Outcome::Done("served"));
        });
        assert_eq!(ticket.wait(), "served");
        h.join().unwrap();
    }

    #[test]
    fn panicked_request_resumes_on_the_waiter() {
        let (ticket, inner) = Ticket::<()>::new(None);
        inner.complete(Outcome::Panicked(Box::new("request blew up")));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || ticket.wait()))
            .unwrap_err();
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "request blew up");
    }

    #[test]
    fn shed_ticket_redeems_as_a_typed_error_not_a_panic() {
        let shed = ShedError {
            priority: Priority::Background,
            reason: ShedReason::Overloaded {
                utilization_permille: 937,
            },
        };
        let (ticket, inner) = Ticket::<u32>::new(None);
        assert!(!ticket.was_shed(), "pending tickets are not yet shed");
        inner.complete(Outcome::Shed(shed));
        assert!(ticket.is_done());
        assert!(ticket.was_shed());
        assert_eq!(ticket.shed_error(), Some(shed));
        // A shed request never ran, so it has no energy reading.
        assert_eq!(ticket.energy_microjoules(), None);
        assert_eq!(ticket.wait_result(), Err(shed));

        // The legacy value-returning path has no error channel; there
        // it is a panic that names the shed.
        let (ticket, inner) = Ticket::<u32>::new(None);
        inner.complete(Outcome::Shed(shed));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || ticket.wait()))
            .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("shed"), "{msg}");
        assert!(msg.contains("93.7%"), "{msg}");
    }

    #[test]
    fn wait_result_returns_values_and_resumes_panics() {
        let (ticket, inner) = Ticket::new(None);
        inner.complete(Outcome::Done(7u32));
        assert_eq!(ticket.wait_result(), Ok(7));

        let (ticket, inner) = Ticket::<u32>::new(None);
        inner.complete(Outcome::Panicked(Box::new("boom")));
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || ticket.wait_result()))
                .unwrap_err();
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "boom");
    }

    #[test]
    fn shed_error_displays_both_reasons() {
        let overload = ShedError {
            priority: Priority::Background,
            reason: ShedReason::Overloaded {
                utilization_permille: 905,
            },
        };
        assert_eq!(
            overload.to_string(),
            "background request shed: pool at 90.5% utilization"
        );
        let deadline = ShedError {
            priority: Priority::Normal,
            reason: ShedReason::DeadlineUnmeetable {
                p99_ns: 2_000_000,
                deadline_ns: 1_000_000,
            },
        };
        assert_eq!(
            deadline.to_string(),
            "normal request shed: 1000000 ns deadline unmeetable (p99 2000000 ns)"
        );
    }

    #[test]
    fn awaiting_a_completed_ticket_is_ready_immediately() {
        let (ticket, inner) = Ticket::new(None);
        inner.complete(Outcome::Done(7u32));
        let waker = std::task::Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut ticket = Box::pin(ticket);
        assert_eq!(ticket.as_mut().poll(&mut cx), Poll::Ready(7));
    }

    #[test]
    fn pending_ticket_registers_and_is_woken_by_complete() {
        let (ticket, inner) = Ticket::new(None);
        let waker = std::task::Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut ticket = Box::pin(ticket);
        assert_eq!(ticket.as_mut().poll(&mut cx), Poll::Pending);
        inner.complete(Outcome::Done("async"));
        assert_eq!(ticket.as_mut().poll(&mut cx), Poll::Ready("async"));
    }
}
