//! Completion tickets handed out by [`Server::submit`](crate::Server::submit).

use hermes_rt::Latch;
use parking_lot::Mutex;
use std::sync::Arc;

/// What a request left behind: its value, or the payload of the panic
/// that killed it.
type Outcome<R> = std::thread::Result<R>;

pub(crate) struct TicketInner<R> {
    latch: Latch,
    outcome: Mutex<Option<Outcome<R>>>,
}

impl<R> TicketInner<R> {
    pub(crate) fn new() -> Self {
        TicketInner {
            latch: Latch::new(),
            outcome: Mutex::new(None),
        }
    }

    /// Publish the request's outcome and release the waiter. Write
    /// first, then set the latch: the waiter's acquire-probe of the
    /// latch orders the outcome read after this write.
    pub(crate) fn complete(&self, outcome: Outcome<R>) {
        *self.outcome.lock() = Some(outcome);
        self.latch.set();
    }
}

/// A handle to one submitted request: redeem it with
/// [`wait`](Ticket::wait) for the request's return value, or poll
/// [`is_done`](Ticket::is_done). Dropping the ticket is fine — the
/// request still runs to completion and still counts toward
/// [`Server::drain`](crate::Server::drain); only the return value is
/// discarded (fire-and-forget submission).
pub struct Ticket<R> {
    inner: Arc<TicketInner<R>>,
}

impl<R> Ticket<R> {
    pub(crate) fn new() -> (Ticket<R>, Arc<TicketInner<R>>) {
        let inner = Arc::new(TicketInner::new());
        (
            Ticket {
                inner: Arc::clone(&inner),
            },
            inner,
        )
    }

    /// Whether the request has completed (non-blocking).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.inner.latch.probe()
    }

    /// Block until the request completes and return its value.
    ///
    /// # Panics
    ///
    /// If the request closure panicked, the panic is resumed here, on
    /// the waiter — the worker that ran the request has already moved
    /// on (the pool isolates request panics; see
    /// [`Server::submit`](crate::Server::submit)).
    pub fn wait(self) -> R {
        self.inner.latch.wait();
        let outcome = self
            .inner
            .outcome
            .lock()
            .take()
            .expect("latch set implies the outcome was written");
        match outcome {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

impl<R> std::fmt::Debug for Ticket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("done", &self.is_done())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_resolves_after_complete() {
        let (ticket, inner) = Ticket::new();
        assert!(!ticket.is_done());
        inner.complete(Ok(41 + 1));
        assert!(ticket.is_done());
        assert_eq!(ticket.wait(), 42);
    }

    #[test]
    fn ticket_wait_blocks_until_cross_thread_completion() {
        let (ticket, inner) = Ticket::new();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(15));
            inner.complete(Ok("served"));
        });
        assert_eq!(ticket.wait(), "served");
        h.join().unwrap();
    }

    #[test]
    fn panicked_request_resumes_on_the_waiter() {
        let (ticket, inner) = Ticket::<()>::new();
        inner.complete(Err(Box::new("request blew up")));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || ticket.wait()))
            .unwrap_err();
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "request blew up");
    }
}
