//! A deterministic virtual-time source for timer-backed requests.
//!
//! Real timers make a 100k-concurrent-slow-request experiment both slow
//! (wall-clock seconds of actual sleeping) and irreproducible (wakeup
//! order depends on OS timer slack). A [`VirtualTimer`] replaces the
//! clock with a number: futures sleep until a virtual deadline, and the
//! test or load generator *advances* time explicitly. Advancing wakes
//! every due sleeper through the normal waker path — re-queue onto the
//! pool, unpark workers — so the scheduler work is exactly what a real
//! timer wheel would drive, minus the nondeterminism and the waiting.
//!
//! Lost-wakeup freedom: a sleep's decisive "is it due?" check and the
//! clock write in [`advance`](VirtualTimer::advance) happen under the
//! same lock, so a poll either observes the advanced clock (completes)
//! or registers its waker before the advance drains the heap (gets
//! woken). Wakers are invoked *outside* the lock: a wake can re-queue
//! the task and run arbitrary scheduler code (including injector
//! backpressure that executes jobs inline, whose polls re-lock this
//! timer), so holding the lock across wakes would deadlock.

use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// One parked sleep registration, ordered by `(deadline_ns, seq)` so
/// wake order is deterministic (FIFO among equal deadlines).
struct Sleeper {
    deadline_ns: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for Sleeper {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline_ns, self.seq) == (other.deadline_ns, other.seq)
    }
}

impl Eq for Sleeper {}

impl PartialOrd for Sleeper {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sleeper {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline_ns, self.seq).cmp(&(other.deadline_ns, other.seq))
    }
}

struct TimerState {
    now_ns: u64,
    next_seq: u64,
    sleepers: BinaryHeap<Reverse<Sleeper>>,
}

/// A shared, manually advanced clock; see the module docs. Cloning is
/// cheap and every clone is the same clock.
#[derive(Clone)]
pub struct VirtualTimer {
    state: Arc<Mutex<TimerState>>,
}

impl Default for VirtualTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualTimer {
    /// A fresh clock at `now == 0` with no sleepers.
    #[must_use]
    pub fn new() -> Self {
        VirtualTimer {
            state: Arc::new(Mutex::new(TimerState {
                now_ns: 0,
                next_seq: 0,
                sleepers: BinaryHeap::new(),
            })),
        }
    }

    /// The current virtual time in nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.state.lock().now_ns
    }

    /// Sleep registrations currently parked (one per pending poll of a
    /// not-yet-due sleep).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.state.lock().sleepers.len()
    }

    /// The earliest parked deadline, if any sleeper is parked.
    #[must_use]
    pub fn next_deadline_ns(&self) -> Option<u64> {
        self.state
            .lock()
            .sleepers
            .peek()
            .map(|Reverse(s)| s.deadline_ns)
    }

    /// A future that completes once virtual time reaches
    /// `deadline_ns` (absolute). Already-passed deadlines complete on
    /// their first poll.
    #[must_use]
    pub fn sleep_until(&self, deadline_ns: u64) -> TimerSleep {
        TimerSleep {
            state: Arc::clone(&self.state),
            deadline_ns,
        }
    }

    /// A future that completes `duration_ns` after *now* (a relative
    /// [`sleep_until`](Self::sleep_until)).
    #[must_use]
    pub fn sleep(&self, duration_ns: u64) -> TimerSleep {
        let deadline_ns = self.state.lock().now_ns.saturating_add(duration_ns);
        self.sleep_until(deadline_ns)
    }

    /// Advance the clock by `delta_ns`, waking every sleeper whose
    /// deadline was reached. Returns how many sleepers woke.
    pub fn advance(&self, delta_ns: u64) -> usize {
        let due: Vec<Waker> = {
            let mut st = self.state.lock();
            st.now_ns = st.now_ns.saturating_add(delta_ns);
            let mut due = Vec::new();
            while let Some(Reverse(head)) = st.sleepers.peek() {
                if head.deadline_ns > st.now_ns {
                    break;
                }
                let Reverse(sleeper) = st.sleepers.pop().expect("peeked");
                due.push(sleeper.waker);
            }
            due
        };
        // Wake outside the lock (see module docs): each wake may run
        // scheduler code that polls other sleeps of this same timer.
        let woken = due.len();
        for waker in due {
            waker.wake();
        }
        woken
    }

    /// Advance exactly to the earliest parked deadline and wake its
    /// cohort; returns how many sleepers woke (`0` when none are
    /// parked). The deterministic event-loop step for drains:
    /// `while timer.advance_to_next() > 0 {}`.
    pub fn advance_to_next(&self) -> usize {
        let Some(deadline) = self.next_deadline_ns() else {
            return 0;
        };
        let now = self.now_ns();
        self.advance(deadline.saturating_sub(now))
    }
}

impl std::fmt::Debug for VirtualTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("VirtualTimer")
            .field("now_ns", &st.now_ns)
            .field("pending", &st.sleepers.len())
            .finish()
    }
}

/// Future returned by [`VirtualTimer::sleep`] /
/// [`VirtualTimer::sleep_until`].
pub struct TimerSleep {
    state: Arc<Mutex<TimerState>>,
    deadline_ns: u64,
}

impl Future for TimerSleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.state.lock();
        // Decisive read: under the same lock `advance` writes `now_ns`,
        // so this either sees the advanced clock or the registration
        // below lands before the advance drains the heap.
        if st.now_ns >= self.deadline_ns {
            return Poll::Ready(());
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.sleepers.push(Reverse(Sleeper {
            deadline_ns: self.deadline_ns,
            seq,
            waker: cx.waker().clone(),
        }));
        Poll::Pending
    }
}

impl std::fmt::Debug for TimerSleep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerSleep")
            .field("deadline_ns", &self.deadline_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll_once(fut: &mut TimerSleep) -> Poll<()> {
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        Pin::new(fut).poll(&mut cx)
    }

    #[test]
    fn due_sleeps_complete_without_registering() {
        let timer = VirtualTimer::new();
        let mut s = timer.sleep_until(0);
        assert_eq!(poll_once(&mut s), Poll::Ready(()));
        assert_eq!(timer.pending(), 0);
    }

    #[test]
    fn advance_wakes_in_deadline_order() {
        use std::sync::atomic::{AtomicU32, Ordering};
        struct NoteWake(Arc<AtomicU32>, u32);
        impl std::task::Wake for NoteWake {
            fn wake(self: Arc<Self>) {
                // Record the wave each sleeper woke in (1-indexed by
                // the stored marker).
                self.0.fetch_add(self.1, Ordering::SeqCst);
            }
        }
        let timer = VirtualTimer::new();
        let tally = Arc::new(AtomicU32::new(0));
        for (deadline, marker) in [(100u64, 1u32), (200, 100), (300, 10_000)] {
            let mut s = timer.sleep_until(deadline);
            let waker = Waker::from(Arc::new(NoteWake(Arc::clone(&tally), marker)));
            let mut cx = Context::from_waker(&waker);
            assert_eq!(Pin::new(&mut s).poll(&mut cx), Poll::Pending);
        }
        assert_eq!(timer.pending(), 3);
        assert_eq!(timer.next_deadline_ns(), Some(100));
        assert_eq!(timer.advance(150), 1);
        assert_eq!(tally.load(Ordering::SeqCst), 1, "only the 100ns sleeper");
        assert_eq!(timer.advance(50), 1);
        assert_eq!(tally.load(Ordering::SeqCst), 101);
        assert_eq!(timer.advance_to_next(), 1);
        assert_eq!(tally.load(Ordering::SeqCst), 10_101);
        assert_eq!(timer.now_ns(), 300);
        assert_eq!(timer.pending(), 0);
        assert_eq!(timer.advance_to_next(), 0, "nothing left");
    }

    #[test]
    fn relative_sleep_is_anchored_at_now() {
        let timer = VirtualTimer::new();
        timer.advance(1_000);
        let mut s = timer.sleep(500);
        assert_eq!(poll_once(&mut s), Poll::Pending);
        timer.advance(499);
        assert_eq!(timer.pending(), 1);
        timer.advance(1);
        assert_eq!(timer.pending(), 0);
        assert_eq!(poll_once(&mut s), Poll::Ready(()));
    }

    #[test]
    fn clones_share_the_clock() {
        let a = VirtualTimer::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now_ns(), 42);
    }
}
