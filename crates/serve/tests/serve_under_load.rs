//! End-to-end: a tempo-controlled, parking server under deterministic
//! open-loop Poisson load, with the full telemetry story — parks,
//! latency histogram, energy — folded into one `RunReport`.

use hermes_core::{Frequency, Policy, TempoConfig};
use hermes_serve::{run_open_loop, PoissonSchedule, Server};
use hermes_telemetry::{RingSink, TelemetrySink};
use std::sync::Arc;
use std::time::Duration;

fn spin_for(d: Duration) {
    let deadline = std::time::Instant::now() + d;
    while std::time::Instant::now() < deadline {
        std::hint::black_box(0u64);
        std::hint::spin_loop();
    }
}

#[test]
fn low_utilization_serving_parks_and_reports() {
    const WORKERS: usize = 2;
    const REQUESTS: usize = 60;
    let sink = Arc::new(RingSink::new(WORKERS));
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(WORKERS)
        .build();
    let mut server = Server::builder()
        .workers(WORKERS)
        .tempo(tempo)
        .parking(true)
        .spin_budget(4)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
        .build();

    // ~200 µs of service per request at ~10 % utilization on 2 workers:
    // rate = 0.1 × 2 / 200 µs = 1000 req/s — a ~60 ms run, mostly idle.
    let offsets = PoissonSchedule::unit(11, REQUESTS).offsets(1_000.0);
    let run = run_open_loop(&server, &offsets, |_| {
        || spin_for(Duration::from_micros(200))
    });
    assert_eq!(run.tickets.len(), REQUESTS);
    server.stop();

    assert_eq!(server.completed(), REQUESTS as u64);
    assert_eq!(server.in_flight(), 0);

    // Latency: every request measured; the histogram is sane.
    let hist = server.latency();
    assert_eq!(hist.count(), REQUESTS as u64);
    let p50 = hist.p50().unwrap();
    let p99 = hist.p99().unwrap();
    assert!(p50 >= 150_000, "p50 at least near the service time: {p50}");
    assert!(p99 >= p50, "quantiles are ordered");

    // Parking: at ~10 % utilization the workers must actually park.
    let stats = server.pool().stats();
    assert!(stats.parks > 0, "low utilization must park: {stats:?}");
    assert!(stats.parked_ns > 0);
    // Requests entered through the injector, not the deques.
    assert!(stats.injector_pops >= REQUESTS as u64);

    // Energy: idle + parked + busy time all accounted.
    let energy = server.pool().total_energy().unwrap();
    assert!(energy > 0.0);

    // The folded report carries the same story.
    let report = sink.report(
        "serve-e2e",
        "rt",
        server.pool().elapsed_ns() as f64 / 1e9,
        energy,
    );
    let totals = report.totals();
    assert_eq!(report.latency_hist.count(), REQUESTS as u64);
    assert_eq!(report.latency_hist, hist);
    assert_eq!(totals.parks, stats.parks);
    assert_eq!(totals.parked_ns, stats.parked_ns);
    // And it survives its own JSON codec with the histogram intact.
    let parsed = hermes_telemetry::RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn same_seed_same_schedule_across_servers() {
    // The deterministic half of the `--serve` ablation's protocol: two
    // runs of the same seed produce the identical arrival process.
    let a = PoissonSchedule::unit(0x5EED, 200);
    let b = PoissonSchedule::unit(0x5EED, 200);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.offsets(5_000.0), b.offsets(5_000.0));
}
