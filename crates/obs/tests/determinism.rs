//! Same seed ⇒ identical span timeline, on the sim executor.
//!
//! The simulator is deterministic by construction (virtual time, seeded
//! victim selection), and span recording is pure observation — so the
//! stitched [`SpanForest`] of a run, cross-worker hops and all, must be
//! a pure function of `(spec, config, seed)`. The fingerprint is the
//! regression handle: any change to the engine's event emission or the
//! stitcher's pairing shows up as a digest change here.

use hermes_core::{Frequency, Policy, TempoConfig};
use hermes_obs::{chrome_trace_json, validate_chrome_trace, SpanForest};
use hermes_sim::{run, DagSpec, MachineSpec, SimConfig};
use hermes_telemetry::{RingSink, TelemetrySink};
use std::sync::Arc;

fn tempo(workers: usize) -> TempoConfig {
    TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build()
}

/// Run a steal-heavy DAG under `seed` and stitch the span forest.
fn forest_for(seed: u64) -> (SpanForest, Arc<RingSink>) {
    forest_on(seed, 4)
}

fn forest_on(seed: u64, workers: usize) -> (SpanForest, Arc<RingSink>) {
    let dag = DagSpec::parallel_for(48, 5_000, |i| 150_000 + (i as u64 % 5) * 40_000);
    let sink = Arc::new(RingSink::with_ring_capacity(workers, 1 << 16));
    let cfg = SimConfig::new(MachineSpec::system_a(), tempo(workers))
        .with_seed(seed)
        .with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    run(&dag, &cfg).expect("sim run succeeds");
    (SpanForest::from_sink(&sink), sink)
}

#[test]
fn same_seed_yields_identical_span_fingerprints() {
    let (a, _) = forest_for(42);
    let (b, _) = forest_for(42);
    assert!(!a.is_empty(), "the run produced spans");
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "replaying a seed must reproduce the span timeline bit-for-bit"
    );
    assert_eq!(a, b, "not just the digest: the stitched forests match");
    assert!(
        a.cross_stream_hops() > 0,
        "a 4-worker run steals, so hops are part of what is reproduced"
    );
}

#[test]
fn different_schedules_change_the_fingerprint() {
    // Different worker counts produce different steal timelines by
    // construction (a seed change alone may converge to the same
    // schedule on a regular DAG — determinism cuts both ways).
    let (a, _) = forest_on(42, 2);
    let (b, _) = forest_on(42, 4);
    assert_ne!(
        a.fingerprint(),
        b.fingerprint(),
        "a different schedule must move the digest"
    );
}

#[test]
fn sim_trace_exports_and_validates() {
    let (forest, sink) = forest_for(7);
    let text = chrome_trace_json(&sink);
    let stats = validate_chrome_trace(&text).expect("sim trace validates");
    assert_eq!(
        stats.span_slices,
        forest.intervals(),
        "one slice per stitched phase episode"
    );
    assert!(stats.flow_begins > 0, "steals draw arrows");
}
