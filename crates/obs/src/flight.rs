//! Always-on flight recorder: a bounded event ring you can afford to
//! leave attached, plus a one-call dump for post-mortems.
//!
//! [`FlightRecorder`] is a [`TelemetrySink`] that delegates to an inner
//! [`RingSink`] — attach it (or wrap an existing sink) and the last
//! `capacity` events per stream are always available. When something
//! goes wrong (a deadlock panic in `Ticket::wait`, a p99 budget
//! breach), [`dump`](FlightRecorder::dump) interleaves every stream
//! into one time-ordered [`FlightDump`] suitable for a panic message or
//! a log line — no exporter, no file, no quiescing.

use hermes_telemetry::{Event, RingSink, TelemetrySink, MACHINE_STREAM};
use std::fmt;
use std::sync::Arc;

/// Default per-stream capacity: small enough to stay resident, large
/// enough to cover the last few scheduling round-trips per worker.
pub const FLIGHT_RING_CAPACITY: usize = 512;

/// A delegating sink that keeps the tail of every event stream.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RingSink>,
}

impl FlightRecorder {
    /// A recorder with its own rings of [`FLIGHT_RING_CAPACITY`].
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self::with_capacity(workers, FLIGHT_RING_CAPACITY)
    }

    /// A recorder with its own rings of `capacity` events per stream.
    #[must_use]
    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(RingSink::with_ring_capacity(workers, capacity)),
        }
    }

    /// Wrap an existing sink: the recorder and other consumers (report
    /// folding, trace export) then share one set of rings.
    #[must_use]
    pub fn around(sink: Arc<RingSink>) -> Self {
        FlightRecorder { inner: sink }
    }

    /// The wrapped sink, for report folding or trace export.
    #[must_use]
    pub fn sink(&self) -> &Arc<RingSink> {
        &self.inner
    }

    /// Interleave every stream's retained tail into one time-ordered
    /// dump. Cheap enough to call from a panic path.
    #[must_use]
    pub fn dump(&self) -> FlightDump {
        let mut entries = Vec::new();
        let mut dropped = 0;
        for stream in (0..self.inner.workers()).chain([MACHINE_STREAM]) {
            let ring = self.inner.ring(stream);
            dropped += ring.dropped();
            for (at_ns, event) in ring.snapshot() {
                entries.push(FlightEntry {
                    stream,
                    at_ns,
                    event,
                });
            }
        }
        entries.sort_by_key(|e| (e.at_ns, e.stream));
        FlightDump { entries, dropped }
    }
}

impl TelemetrySink for FlightRecorder {
    fn record(&self, worker: usize, at_ns: u64, event: Event) {
        self.inner.record(worker, at_ns, event);
    }
}

/// One retained event: stream, timestamp, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEntry {
    /// Worker index, or [`MACHINE_STREAM`].
    pub stream: usize,
    /// Host timestamp, ns.
    pub at_ns: u64,
    /// The event.
    pub event: Event,
}

impl fmt::Display for FlightEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stream == MACHINE_STREAM {
            write!(f, "[{:>12} ns] machine    {:?}", self.at_ns, self.event)
        } else {
            write!(
                f,
                "[{:>12} ns] worker {:<3} {:?}",
                self.at_ns, self.stream, self.event
            )
        }
    }
}

/// A time-ordered interleaving of every stream's retained tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightDump {
    /// Retained events, ascending by `(at_ns, stream)`.
    pub entries: Vec<FlightEntry>,
    /// Events the rings overwrote before the dump — nonzero means the
    /// timeline's head is truncated, not that counters are wrong.
    pub dropped: u64,
}

impl FlightDump {
    /// The last `n` entries (the most recent history).
    #[must_use]
    pub fn tail(&self, n: usize) -> &[FlightEntry] {
        let start = self.entries.len().saturating_sub(n);
        &self.entries[start..]
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for FlightDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flight recorder: {} events retained, {} overwritten",
            self.entries.len(),
            self.dropped
        )?;
        for entry in &self.entries {
            writeln!(f, "  {entry}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_interleaves_streams_in_time_order() {
        let rec = FlightRecorder::with_capacity(2, 8);
        rec.record(1, 30, Event::TaskPoll);
        rec.record(0, 10, Event::TaskWake);
        rec.record(MACHINE_STREAM, 20, Event::TaskRepush);
        let dump = rec.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump.dropped, 0);
        let order: Vec<u64> = dump.entries.iter().map(|e| e.at_ns).collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert_eq!(dump.tail(1)[0].event, Event::TaskPoll);
        let text = dump.to_string();
        assert!(text.contains("machine"));
        assert!(text.contains("worker 1"));
        assert!(text.contains("3 events retained"));
    }

    #[test]
    fn bounded_rings_overwrite_and_report_truncation() {
        let rec = FlightRecorder::with_capacity(1, 4);
        for i in 0..10 {
            rec.record(0, i, Event::TaskPoll);
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 4, "ring keeps the tail");
        assert_eq!(dump.dropped, 6);
        assert_eq!(dump.entries.first().unwrap().at_ns, 6);
    }

    #[test]
    fn around_shares_rings_with_the_wrapped_sink() {
        let sink = Arc::new(RingSink::new(1));
        let rec = FlightRecorder::around(Arc::clone(&sink));
        rec.record(0, 5, Event::TaskPoll);
        assert_eq!(sink.ring(0).recorded(), 1);
        assert!(Arc::ptr_eq(rec.sink(), &sink));
    }
}
