//! Joining power timelines against causal spans: where did the joules go?
//!
//! Hosts that run an energy model record per-worker
//! [`Event::PowerInterval`]s — constant-power segments classified as
//! busy, spin, or parked — alongside the span edges the
//! [`SpanForest`](crate::SpanForest) stitches. This module charges each
//! span the integral of its worker's busy power over the span's poll
//! episodes, banks spin/park power in an explicit idle bucket, and keeps
//! whatever busy power fell outside any span (internal subtasks,
//! scheduler work) visible as a third bucket instead of silently
//! spreading it around.
//!
//! The point of the three-bucket split is the **closure invariant**:
//!
//! ```text
//! attributed + idle + unattributed_busy ≈ meter total
//! ```
//!
//! checked by [`EnergyLedger::closure_error`]. When it holds, the
//! per-request joule figures are trustworthy — every joule the meter
//! billed is in exactly one bucket. When it drifts, something is wrong
//! (ring overflow ate intervals, a host stopped emitting, clocks
//! skewed), and the sweep's `--gate-energy-attr` gate fails loudly.
//!
//! Park power lands in the idle bucket, not on requests: a parked
//! worker draws its floor power because the *pool* keeps it warm, and
//! charging that to whichever request happens to complete next would
//! make per-request joules depend on arrival luck rather than work.

use crate::SpanForest;
use hermes_telemetry::{Event, PowerKind, RingSink, SpanPhase, TelemetrySink, MACHINE_STREAM};

/// One decoded power segment: `[start_ns, end_ns]` on `stream` at a
/// constant `milliwatts`, classified by `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerSegment {
    /// Stream the interval was recorded on (worker index or
    /// [`MACHINE_STREAM`]).
    pub stream: usize,
    /// Segment start, host-epoch nanoseconds (recorded end minus
    /// duration — hosts emit intervals when they close).
    pub start_ns: u64,
    /// Segment end (the event's timestamp).
    pub end_ns: u64,
    /// Constant power over the segment, milliwatts.
    pub milliwatts: u64,
    /// Watts-class of the segment.
    pub kind: PowerKind,
}

impl PowerSegment {
    /// Energy of the whole segment, joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        (self.end_ns - self.start_ns) as f64 * self.milliwatts as f64 * 1e-12
    }
}

/// Decode every [`Event::PowerInterval`] retained in `sink`'s rings
/// (worker streams then machine stream), in stream-then-time order.
#[must_use]
pub fn collect_power_segments(sink: &RingSink) -> Vec<PowerSegment> {
    let mut segments = Vec::new();
    for stream in (0..sink.workers()).chain([MACHINE_STREAM]) {
        for (at_ns, event) in sink.ring(stream).snapshot() {
            if let Event::PowerInterval {
                kind,
                duration_ns,
                milliwatts,
            } = event
            {
                segments.push(PowerSegment {
                    stream,
                    start_ns: at_ns.saturating_sub(duration_ns),
                    end_ns: at_ns,
                    milliwatts,
                    kind,
                });
            }
        }
    }
    segments
}

/// Energy attributed to one span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEnergy {
    /// The span id.
    pub id: u64,
    /// Joules of busy power overlapping the span's poll episodes.
    pub joules: f64,
}

/// The three-bucket energy attribution for one run. Build with
/// [`EnergyLedger::from_sink`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyLedger {
    /// Busy joules charged to spans, one entry per span in the forest
    /// (ascending id, same order as the forest).
    pub per_span: Vec<SpanEnergy>,
    /// Σ busy joules charged to spans.
    pub attributed_j: f64,
    /// Spin + parked joules: power the pool spent keeping workers warm,
    /// deliberately not billed to any request (see the module docs).
    pub idle_j: f64,
    /// Busy joules outside every span's poll episodes — scheduler work,
    /// untraced tasks, internal fork-join subtasks.
    pub unattributed_busy_j: f64,
    /// The independent meter total the buckets must rebuild: pass the
    /// *attributable* total (e.g. `Pool::total_energy()`, or the sim's
    /// integrated energy minus package-static — uncore draw belongs to
    /// no worker and no bucket).
    pub meter_total_j: f64,
    /// Events the sink dropped while recording. Nonzero means rings
    /// overflowed and the buckets may under-count; closure catches the
    /// damage, this field names the cause.
    pub dropped_events: u64,
}

impl EnergyLedger {
    /// Join `sink`'s power intervals against `forest`'s spans and check
    /// them against `meter_total_j` (see
    /// [`meter_total_j`](Self::meter_total_j) for what to pass).
    #[must_use]
    pub fn from_sink(sink: &RingSink, forest: &SpanForest, meter_total_j: f64) -> EnergyLedger {
        let mut ledger = EnergyLedger::from_segments(collect_power_segments(sink), forest);
        ledger.meter_total_j = meter_total_j;
        ledger.dropped_events = sink.dropped_events();
        ledger
    }

    /// [`from_sink`](Self::from_sink) over pre-collected segments, with
    /// `meter_total_j` and `dropped_events` left at zero for the caller
    /// to fill.
    #[must_use]
    pub fn from_segments(segments: Vec<PowerSegment>, forest: &SpanForest) -> EnergyLedger {
        // Partition: spin/park → idle; busy → per-stream lists for the
        // span join below.
        let mut idle_j = 0.0;
        let mut busy_total_j = 0.0;
        let max_stream = segments.iter().map(|s| s.stream).max().unwrap_or(0);
        let mut busy: Vec<Vec<PowerSegment>> = vec![Vec::new(); max_stream + 1];
        for seg in segments {
            match seg.kind {
                PowerKind::Spin | PowerKind::Parked => idle_j += seg.energy_j(),
                PowerKind::Busy => {
                    busy_total_j += seg.energy_j();
                    busy[seg.stream].push(seg);
                }
            }
        }
        for list in &mut busy {
            list.sort_by_key(|s| s.start_ns);
        }

        // Charge each span the busy-power integral over its closed poll
        // episodes, on the stream the episode ran on. A worker runs one
        // task at a time, so episodes of one stream should be disjoint —
        // but stitching can pair same-timestamp edges imperfectly (a
        // zero-length episode whose end sorts before its begin leaves an
        // episode spuriously spanning other spans' time), so the sweep
        // below charges every stream nanosecond AT MOST ONCE: episodes
        // are walked in begin order with a per-stream high-water mark,
        // and only the part past the mark is charged. That keeps the
        // closure invariant exact (no joule counted twice) at the cost
        // of misassigning contested time to the earlier-beginning span,
        // which for well-formed timelines is no cost at all.
        let mut per_span: Vec<SpanEnergy> = forest
            .spans
            .iter()
            .map(|s| SpanEnergy {
                id: s.id,
                joules: 0.0,
            })
            .collect();
        let mut episodes: Vec<(usize, u64, u64, usize)> = Vec::new();
        for (idx, span) in forest.spans.iter().enumerate() {
            for iv in &span.intervals {
                if iv.phase != SpanPhase::Poll {
                    continue;
                }
                if let Some(end) = iv.end_ns {
                    if end > iv.begin_ns {
                        episodes.push((iv.begin_stream, iv.begin_ns, end, idx));
                    }
                }
            }
        }
        episodes.sort_unstable_by_key(|&(stream, begin, end, _)| (stream, begin, end));
        let mut attributed_j = 0.0;
        let mut mark: Option<(usize, u64)> = None;
        for (stream, begin, end, idx) in episodes {
            let lo = match mark {
                Some((s, high)) if s == stream => begin.max(high),
                _ => begin,
            };
            mark = Some((
                stream,
                match mark {
                    Some((s, high)) if s == stream => high.max(end),
                    _ => end,
                },
            ));
            if lo >= end {
                continue; // fully inside already-charged time
            }
            let Some(list) = busy.get(stream) else {
                continue;
            };
            // First segment that might overlap: the last one starting
            // at or before the clipped begin.
            let from = list.partition_point(|s| s.start_ns < lo);
            let mut joules = 0.0;
            for seg in &list[from.saturating_sub(1)..] {
                if seg.start_ns >= end {
                    break;
                }
                let hi = seg.end_ns.min(end);
                let low = seg.start_ns.max(lo);
                if hi > low {
                    joules += (hi - low) as f64 * seg.milliwatts as f64 * 1e-12;
                }
            }
            attributed_j += joules;
            per_span[idx].joules += joules;
        }

        EnergyLedger {
            per_span,
            attributed_j,
            idle_j,
            unattributed_busy_j: (busy_total_j - attributed_j).max(0.0),
            meter_total_j: 0.0,
            dropped_events: 0,
        }
    }

    /// Joules attributed to span `id`, if it exists in the forest.
    #[must_use]
    pub fn span_energy_j(&self, id: u64) -> Option<f64> {
        self.per_span
            .binary_search_by_key(&id, |s| s.id)
            .ok()
            .map(|i| self.per_span[i].joules)
    }

    /// Σ of the three buckets — what the meter total is checked against.
    #[must_use]
    pub fn accounted_j(&self) -> f64 {
        self.attributed_j + self.idle_j + self.unattributed_busy_j
    }

    /// Relative closure error: `|accounted − meter| / meter` (0 when the
    /// meter read nothing and nothing was accounted).
    #[must_use]
    pub fn closure_error(&self) -> f64 {
        if self.meter_total_j <= 0.0 {
            return if self.accounted_j() > 0.0 {
                f64::MAX
            } else {
                0.0
            };
        }
        (self.accounted_j() - self.meter_total_j).abs() / self.meter_total_j
    }

    /// Whether every metered joule landed in a bucket, within `tol`
    /// (relative; the sweep gate uses 0.02).
    #[must_use]
    pub fn closes_within(&self, tol: f64) -> bool {
        self.closure_error() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanEvent;
    use hermes_telemetry::TelemetrySink;

    fn seg(stream: usize, start: u64, end: u64, mw: u64, kind: PowerKind) -> PowerSegment {
        PowerSegment {
            stream,
            start_ns: start,
            end_ns: end,
            milliwatts: mw,
            kind,
        }
    }

    fn edge(stream: usize, at_ns: u64, id: u64, begin: bool) -> SpanEvent {
        SpanEvent {
            stream,
            at_ns,
            id,
            phase: SpanPhase::Poll,
            begin,
        }
    }

    #[test]
    fn busy_overlap_splits_into_attributed_and_unattributed() {
        // Worker 0: busy 8 W over [0, 1000]; span 1 polls [200, 700].
        // 500 ns of the segment belong to the span, 500 ns do not.
        let forest = SpanForest::from_events(&[edge(0, 200, 1, true), edge(0, 700, 1, false)]);
        let ledger =
            EnergyLedger::from_segments(vec![seg(0, 0, 1000, 8_000, PowerKind::Busy)], &forest);
        let expect = 500.0 * 8_000.0 * 1e-12;
        assert!((ledger.attributed_j - expect).abs() < 1e-18);
        assert!((ledger.unattributed_busy_j - expect).abs() < 1e-18);
        assert_eq!(ledger.span_energy_j(1), Some(ledger.attributed_j));
        assert_eq!(ledger.idle_j, 0.0);
    }

    #[test]
    fn idle_banks_spin_and_park_and_streams_do_not_cross() {
        // Span 1 polls on worker 0, but the busy power is on worker 1:
        // nothing attributes across streams. Spin and park power land
        // in the idle bucket regardless of span overlap.
        let forest = SpanForest::from_events(&[edge(0, 0, 1, true), edge(0, 1000, 1, false)]);
        let ledger = EnergyLedger::from_segments(
            vec![
                seg(1, 0, 1000, 8_000, PowerKind::Busy),
                seg(0, 0, 500, 2_000, PowerKind::Spin),
                seg(0, 500, 1000, 400, PowerKind::Parked),
            ],
            &forest,
        );
        assert_eq!(ledger.attributed_j, 0.0);
        let busy = 1000.0 * 8_000.0 * 1e-12;
        let idle = (500.0 * 2_000.0 + 500.0 * 400.0) * 1e-12;
        assert!((ledger.unattributed_busy_j - busy).abs() < 1e-18);
        assert!((ledger.idle_j - idle).abs() < 1e-18);
    }

    #[test]
    fn multiple_episodes_and_segments_tile_exactly() {
        // Two spans' poll episodes tile a stretch of busy power at two
        // wattages; everything attributes, closure is exact.
        let forest = SpanForest::from_events(&[
            edge(0, 0, 1, true),
            edge(0, 400, 1, false),
            edge(0, 400, 2, true),
            edge(0, 1000, 2, false),
        ]);
        let segments = vec![
            seg(0, 0, 600, 8_000, PowerKind::Busy),
            seg(0, 600, 1000, 4_000, PowerKind::Busy),
        ];
        let total: f64 = segments.iter().map(PowerSegment::energy_j).sum();
        let mut ledger = EnergyLedger::from_segments(segments, &forest);
        ledger.meter_total_j = total;
        assert!((ledger.attributed_j - total).abs() < 1e-18);
        assert!(ledger.unattributed_busy_j.abs() < 1e-18);
        let span1 = 400.0 * 8_000.0 * 1e-12;
        let span2 = (200.0 * 8_000.0 + 400.0 * 4_000.0) * 1e-12;
        assert!((ledger.span_energy_j(1).unwrap() - span1).abs() < 1e-18);
        assert!((ledger.span_energy_j(2).unwrap() - span2).abs() < 1e-18);
        assert!(ledger.closes_within(1e-12));
        assert_eq!(ledger.closure_error(), 0.0);
    }

    #[test]
    fn overlapping_episodes_never_charge_a_nanosecond_twice() {
        // Span 1's episode [0, 1000] spuriously covers span 2's
        // [400, 600] (the zero-length-episode stitching artifact): the
        // sweep charges each nanosecond once, so attributed equals the
        // busy energy exactly and span 2 gets only uncontested time.
        let forest = SpanForest::from_events(&[
            edge(0, 0, 1, true),
            edge(0, 1000, 1, false),
            edge(0, 400, 2, true),
            edge(0, 600, 2, false),
        ]);
        let segments = vec![seg(0, 0, 1000, 8_000, PowerKind::Busy)];
        let total: f64 = segments.iter().map(PowerSegment::energy_j).sum();
        let ledger = EnergyLedger::from_segments(segments, &forest);
        assert!((ledger.attributed_j - total).abs() < 1e-18);
        assert!(ledger.unattributed_busy_j.abs() < 1e-18);
        assert_eq!(
            ledger.span_energy_j(2),
            Some(0.0),
            "contested time goes once"
        );
        assert!((ledger.span_energy_j(1).unwrap() - total).abs() < 1e-18);
    }

    #[test]
    fn closure_detects_missing_intervals() {
        // The meter billed 1 J but only half shows up as intervals
        // (e.g. a host stopped emitting): the gate must fail.
        let forest = SpanForest::default();
        let mut ledger =
            EnergyLedger::from_segments(vec![seg(0, 0, 1_000_000, 500, PowerKind::Busy)], &forest);
        ledger.meter_total_j = 1e-3;
        assert!(!ledger.closes_within(0.02));
        assert!((ledger.closure_error() - 0.5).abs() < 1e-9);
        // And a silent-zero ledger against a live meter is the worst
        // case, not a pass.
        let empty = EnergyLedger {
            meter_total_j: 1.0,
            ..EnergyLedger::from_segments(Vec::new(), &forest)
        };
        assert!(!empty.closes_within(0.5));
    }

    #[test]
    fn sim_run_closes_end_to_end() {
        // Full pipeline on the deterministic executor: run a DAG with
        // spans + power intervals, stitch, join, close against the
        // integrated energy minus package-static (uncore draw belongs
        // to no worker). Busy time in the sim always sits inside some
        // frame's poll episode, so nearly everything attributes.
        use hermes_sim::{DagSpec, MachineSpec, SimConfig};
        let dag = DagSpec::parallel_for(64, 10_000, |i| 200_000 + (i as u64 % 9) * 50_000);
        let sink = std::sync::Arc::new(RingSink::with_ring_capacity(4, 1 << 16));
        let tempo = hermes_core::TempoConfig::builder()
            .policy(hermes_core::Policy::Unified)
            .frequencies(vec![
                hermes_core::Frequency::from_mhz(3600),
                hermes_core::Frequency::from_mhz(2700),
            ])
            .workers(4)
            .build();
        let cfg = SimConfig::new(MachineSpec::system_b(), tempo)
            .with_telemetry(std::sync::Arc::clone(&sink) as std::sync::Arc<dyn TelemetrySink>);
        let report = hermes_sim::run(&dag, &cfg).unwrap();
        let forest = SpanForest::from_sink(&sink);
        assert!(!forest.is_empty());
        let attributable = report.energy_j
            - MachineSpec::system_b().power.package_static * report.elapsed.seconds();
        let ledger = EnergyLedger::from_sink(&sink, &forest, attributable);
        assert_eq!(ledger.dropped_events, 0, "capacity sized for the run");
        assert!(
            ledger.closes_within(0.02),
            "closure error {:.4}: attributed {} + idle {} + unattributed {} vs meter {}",
            ledger.closure_error(),
            ledger.attributed_j,
            ledger.idle_j,
            ledger.unattributed_busy_j,
            ledger.meter_total_j
        );
        // The workload is compute-dominated: most joules attribute to
        // spans, and every span with a closed poll episode got some.
        assert!(ledger.attributed_j > ledger.meter_total_j * 0.5);
        assert!(ledger.attributed_j > ledger.unattributed_busy_j);
        let charged = ledger.per_span.iter().filter(|s| s.joules > 0.0).count();
        assert!(charged * 2 > ledger.per_span.len(), "{charged} charged");
    }
}
