//! Chrome trace-event (Perfetto) export.
//!
//! Renders a [`RingSink`]'s event streams as the Trace Event Format
//! that `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly: one track per worker (plus one for off-pool threads)
//! carrying complete (`"X"`) slices for span phases, park episodes,
//! and elastic sleep episodes (named `"sleep"`, distinct from
//! `"park"`), instant (`"i"`) markers for tempo transitions, DVFS
//! actuations, and
//! request completions, and flow (`"s"`/`"f"`) arrows for the two
//! cross-worker edges — a successful steal (victim → thief) and a
//! remote wake closing a park-wait from another thread.
//!
//! Timestamps in the format are microseconds; the sink records
//! nanoseconds, so slices keep sub-microsecond precision as fractional
//! `ts`/`dur` values (both viewers accept doubles).

use crate::span::SpanForest;
use hermes_telemetry::json::Value;
use hermes_telemetry::{Event, RingSink, StealOutcome, MACHINE_STREAM};

/// Slice name for elastic sleep episodes. Distinct from `"park"` so a
/// viewer (and [`validate_chrome_trace`]) can tell a 1 ms-recheck park
/// from an indefinite elastic sleep at a glance.
const SLEEP_SLICE: &str = "sleep";

/// The `pid` every track is parented under — the trace models one
/// process (the pool).
const TRACE_PID: u64 = 1;

fn us(ns: u64) -> Value {
    Value::Num(ns as f64 / 1_000.0)
}

/// The `tid` a stream renders as. Worker streams keep their index; the
/// machine stream (recorded as [`MACHINE_STREAM`] = `usize::MAX`, not
/// representable in JSON) becomes the track after the last worker.
fn tid_of(stream: usize, workers: usize) -> u64 {
    if stream == MACHINE_STREAM {
        workers as u64
    } else {
        stream as u64
    }
}

fn event_obj(ph: &str, name: &str, tid: u64, at_ns: u64) -> Vec<(&'static str, Value)> {
    vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("ts", us(at_ns)),
        ("pid", Value::Num(TRACE_PID as f64)),
        ("tid", Value::Num(tid as f64)),
    ]
}

fn push_obj(out: &mut Vec<Value>, fields: Vec<(&str, Value)>) {
    out.push(Value::obj(fields));
}

/// Build the Chrome trace-event document for `sink` as a JSON value:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
#[must_use]
pub fn chrome_trace(sink: &RingSink) -> Value {
    let workers = sink.workers();
    let forest = SpanForest::from_sink(sink);
    let mut events: Vec<Value> = Vec::new();

    // Track names, so the viewer shows "worker 0..n" and "machine"
    // instead of bare tids.
    for stream in (0..workers).chain([MACHINE_STREAM]) {
        let tid = tid_of(stream, workers);
        let name = if stream == MACHINE_STREAM {
            "machine".to_string()
        } else {
            format!("worker {stream}")
        };
        let mut fields = event_obj("M", "thread_name", tid, 0);
        fields.push(("args", Value::obj(vec![("name", Value::Str(name))])));
        push_obj(&mut events, fields);
    }

    // Span phase slices and the completion instants, plus a flow arrow
    // for every interval whose end landed on a different stream than
    // its begin (steal-moved queue episodes, remote wakes).
    let mut flow_id: u64 = 0;
    for span in &forest.spans {
        for interval in &span.intervals {
            let tid = tid_of(interval.begin_stream, workers);
            let name = format!("span:{}", interval.phase.label());
            let mut fields = event_obj("X", &name, tid, interval.begin_ns);
            fields.push(("dur", Value::Num(interval.duration_ns() as f64 / 1_000.0)));
            fields.push((
                "args",
                Value::obj(vec![("span_id", Value::Num(span.id as f64))]),
            ));
            push_obj(&mut events, fields);

            if interval.crosses_streams() {
                let (end_ns, end_stream) = (
                    interval.end_ns.expect("crossing interval is closed"),
                    interval.end_stream.expect("crossing interval is closed"),
                );
                flow_id += 1;
                let mut s = event_obj("s", "hop", tid, interval.begin_ns);
                s.push(("id", Value::Num(flow_id as f64)));
                push_obj(&mut events, s);
                let mut f = event_obj("f", "hop", tid_of(end_stream, workers), end_ns);
                f.push(("id", Value::Num(flow_id as f64)));
                f.push(("bp", Value::Str("e".to_string())));
                push_obj(&mut events, f);
            }
        }
        if let Some((at_ns, stream)) = span.completed_at {
            let tid = tid_of(stream, workers);
            let mut fields = event_obj("i", "span:complete", tid, at_ns);
            fields.push(("s", Value::Str("t".to_string())));
            fields.push((
                "args",
                Value::obj(vec![("span_id", Value::Num(span.id as f64))]),
            ));
            push_obj(&mut events, fields);
        }
    }

    // Non-span machinery: park brackets, tempo/DVFS instants, and steal
    // flow arrows, straight off the rings.
    for stream in (0..workers).chain([MACHINE_STREAM]) {
        let tid = tid_of(stream, workers);
        for (at_ns, event) in sink.ring(stream).snapshot() {
            match event {
                Event::WorkerUnpark { parked_ns } => {
                    // The unpark instant closes the bracket; the slice
                    // starts where the park began.
                    let begin_ns = at_ns.saturating_sub(parked_ns);
                    let mut fields = event_obj("X", "park", tid, begin_ns);
                    fields.push(("dur", Value::Num(parked_ns as f64 / 1_000.0)));
                    push_obj(&mut events, fields);
                }
                Event::WorkerWake { reason, slept_ns } => {
                    // Elastic sleeps bracket like parks — the wake
                    // closes the slice — but render under their own
                    // name so scaled-down workers read differently
                    // from parked ones, with the wake reason in args.
                    let begin_ns = at_ns.saturating_sub(slept_ns);
                    let mut fields = event_obj("X", SLEEP_SLICE, tid, begin_ns);
                    fields.push(("dur", Value::Num(slept_ns as f64 / 1_000.0)));
                    fields.push((
                        "args",
                        Value::obj(vec![("reason", Value::Str(reason.label().to_string()))]),
                    ));
                    push_obj(&mut events, fields);
                }
                Event::TempoTransition { kind, level } => {
                    let name = format!("tempo:{}", kind.label());
                    let mut fields = event_obj("i", &name, tid, at_ns);
                    fields.push(("s", Value::Str("t".to_string())));
                    fields.push((
                        "args",
                        Value::obj(vec![("level", Value::Num(f64::from(level)))]),
                    ));
                    push_obj(&mut events, fields);
                }
                Event::DvfsActuation { freq_khz } => {
                    let mut fields = event_obj("i", "dvfs", tid, at_ns);
                    fields.push(("s", Value::Str("t".to_string())));
                    fields.push((
                        "args",
                        Value::obj(vec![("freq_khz", Value::Num(freq_khz as f64))]),
                    ));
                    push_obj(&mut events, fields);
                }
                Event::StealAttempt {
                    victim,
                    outcome: StealOutcome::Success,
                } => {
                    // Arrow from the victim's track to the thief's.
                    flow_id += 1;
                    let mut s = event_obj("s", "steal", u64::from(victim), at_ns);
                    s.push(("id", Value::Num(flow_id as f64)));
                    push_obj(&mut events, s);
                    let mut f = event_obj("f", "steal", tid, at_ns);
                    f.push(("id", Value::Num(flow_id as f64)));
                    f.push(("bp", Value::Str("e".to_string())));
                    push_obj(&mut events, f);
                }
                _ => {}
            }
        }
    }

    // Counter tracks ("C"): a per-worker watts timeline stepped from
    // the power intervals (each sample sets the value from its instant
    // until the next sample; intervals are recorded when they close, so
    // the sample lands at the interval's *start* and a trailing zero
    // closes the timeline), and a per-domain frequency timeline from
    // the DVFS actuations on each worker's stream (one worker per
    // clock domain under the paper's placement).
    for stream in (0..workers).chain([MACHINE_STREAM]) {
        let tid = tid_of(stream, workers);
        let track = if stream == MACHINE_STREAM {
            "machine".to_string()
        } else {
            format!("worker {stream}")
        };
        let mut watts: Vec<(u64, f64)> = Vec::new();
        let mut freqs: Vec<(u64, f64)> = Vec::new();
        let mut last_end: Option<u64> = None;
        for (at_ns, event) in sink.ring(stream).snapshot() {
            match event {
                Event::PowerInterval {
                    duration_ns,
                    milliwatts,
                    ..
                } => {
                    watts.push((at_ns.saturating_sub(duration_ns), milliwatts as f64 / 1e3));
                    last_end = Some(last_end.map_or(at_ns, |e| e.max(at_ns)));
                }
                Event::DvfsActuation { freq_khz } => {
                    freqs.push((at_ns, freq_khz as f64 / 1e3));
                }
                _ => {}
            }
        }
        // Ring order is close-time order; counter samples sit at open
        // instants, which adjacent intervals can jitter out of order.
        watts.sort_by_key(|&(ts, _)| ts);
        if let Some(end) = last_end {
            watts.push((end, 0.0));
        }
        let watts_name = format!("watts {track}");
        for (ts, w) in watts {
            let mut fields = event_obj("C", &watts_name, tid, ts);
            fields.push(("args", Value::obj(vec![("watts", Value::Num(w))])));
            push_obj(&mut events, fields);
        }
        let freq_name = format!("freq_mhz {track}");
        for (ts, mhz) in freqs {
            let mut fields = event_obj("C", &freq_name, tid, ts);
            fields.push(("args", Value::obj(vec![("mhz", Value::Num(mhz))])));
            push_obj(&mut events, fields);
        }
    }

    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ])
}

/// [`chrome_trace`] serialized as pretty-printed JSON, ready to write
/// to a `.json` file and load in Perfetto.
#[must_use]
pub fn chrome_trace_json(sink: &RingSink) -> String {
    chrome_trace(sink).to_string_pretty()
}

/// What [`validate_chrome_trace`] counted, for reconciliation against
/// [`RunReport`](hermes_telemetry::RunReport) counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete (`"X"`) slices.
    pub slices: usize,
    /// Complete slices whose name starts with `span:`.
    pub span_slices: usize,
    /// Complete `"sleep"` slices (elastic sleep episodes).
    pub sleep_slices: usize,
    /// Instant (`"i"`) markers.
    pub instants: usize,
    /// Flow begin (`"s"`) arrows.
    pub flow_begins: usize,
    /// Flow end (`"f"`) arrows.
    pub flow_ends: usize,
    /// Metadata (`"M"`) entries.
    pub metadata: usize,
    /// Counter (`"C"`) samples.
    pub counters: usize,
    /// Distinct counter track names.
    pub counter_tracks: usize,
}

/// Parse `text` as a Chrome trace-event document and check the schema
/// every consumer relies on: a top-level `traceEvents` array whose
/// entries all carry `name`/`ph`/`ts`/`pid`/`tid`, with `dur` on `"X"`
/// slices, a string `args.reason` on `"sleep"` slices, `id` on
/// `"s"`/`"f"` flows, and flow begins balancing flow ends. Counter (`"C"`) samples must carry an object `args` of
/// non-negative numeric values, each counter track's timestamps must be
/// monotone non-decreasing, and counter track names must not collide
/// with slice/instant names (a viewer would merge the tracks). Returns
/// counts by kind, or the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = Value::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let trace_events = doc
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?;
    let entries = trace_events
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut stats = TraceStats::default();
    // Counter-track bookkeeping: name → last sample timestamp.
    let mut counter_last_ts: Vec<(String, f64)> = Vec::new();
    let mut other_names: Vec<&str> = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let at = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let ph = entry
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing \"ph\""))?;
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing \"name\""))?;
        let ts = entry
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| at("missing numeric \"ts\""))?;
        entry
            .get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| at("missing numeric \"pid\""))?;
        entry
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| at("missing numeric \"tid\""))?;
        stats.events += 1;
        if ph != "C" && !other_names.contains(&name) {
            other_names.push(name);
        }
        match ph {
            "X" => {
                let dur = entry
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| at("\"X\" slice missing numeric \"dur\""))?;
                if dur < 0.0 {
                    return Err(at("negative \"dur\""));
                }
                stats.slices += 1;
                if name.starts_with("span:") {
                    stats.span_slices += 1;
                }
                if name == SLEEP_SLICE {
                    // Sleep slices carry the wake reason; a viewer's
                    // args panel (and reconciliation scripts) rely on
                    // it to split signal wakes from rotations.
                    entry
                        .get("args")
                        .and_then(|a| a.get("reason"))
                        .and_then(Value::as_str)
                        .ok_or_else(|| at("\"sleep\" slice missing string \"args.reason\""))?;
                    stats.sleep_slices += 1;
                }
            }
            "i" => stats.instants += 1,
            "s" | "f" => {
                entry
                    .get("id")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| at("flow event missing \"id\""))?;
                if ph == "s" {
                    stats.flow_begins += 1;
                } else {
                    stats.flow_ends += 1;
                }
            }
            "M" => stats.metadata += 1,
            "C" => {
                let args = entry
                    .get("args")
                    .ok_or_else(|| at("counter sample missing \"args\""))?;
                let Value::Obj(pairs) = args else {
                    return Err(at("counter \"args\" is not an object"));
                };
                if pairs.is_empty() {
                    return Err(at("counter \"args\" is empty"));
                }
                for (key, value) in pairs {
                    let v = value
                        .as_f64()
                        .ok_or_else(|| at(&format!("counter value {key:?} not numeric")))?;
                    if v < 0.0 {
                        return Err(at(&format!("negative counter value {key:?}")));
                    }
                }
                match counter_last_ts.iter_mut().find(|(n, _)| n == name) {
                    Some((_, last)) => {
                        if ts < *last {
                            return Err(at(&format!(
                                "counter track {name:?} timestamps go backwards"
                            )));
                        }
                        *last = ts;
                    }
                    None => counter_last_ts.push((name.to_string(), ts)),
                }
                stats.counters += 1;
            }
            other => return Err(at(&format!("unknown phase {other:?}"))),
        }
    }
    if stats.flow_begins != stats.flow_ends {
        return Err(format!(
            "unbalanced flows: {} begins vs {} ends",
            stats.flow_begins, stats.flow_ends
        ));
    }
    stats.counter_tracks = counter_last_ts.len();
    if let Some((name, _)) = counter_last_ts
        .iter()
        .find(|(n, _)| other_names.contains(&n.as_str()))
    {
        return Err(format!(
            "counter track {name:?} collides with a non-counter event name"
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_telemetry::{SpanPhase, TelemetrySink, TransitionKind};

    fn span_begin(id: u64, phase: SpanPhase) -> Event {
        Event::SpanBegin { id, phase }
    }

    fn span_end(id: u64, phase: SpanPhase) -> Event {
        Event::SpanEnd { id, phase }
    }

    fn scenario_sink() -> RingSink {
        let sink = RingSink::new(2);
        // Request 1: injected off-pool, queued, stolen to worker 1,
        // polled there, completed.
        sink.record(MACHINE_STREAM, 100, span_begin(1, SpanPhase::Queued));
        sink.record(
            1,
            400,
            Event::StealAttempt {
                victim: 0,
                outcome: StealOutcome::Success,
            },
        );
        sink.record(1, 400, span_end(1, SpanPhase::Queued));
        sink.record(1, 410, span_begin(1, SpanPhase::Poll));
        sink.record(1, 900, span_end(1, SpanPhase::Poll));
        sink.record(1, 900, span_end(1, SpanPhase::Complete));
        // Worker 0 parks, a tempo step and a DVFS actuation land.
        sink.record(0, 300, Event::WorkerPark);
        sink.record(0, 800, Event::WorkerUnpark { parked_ns: 500 });
        sink.record(
            0,
            850,
            Event::TempoTransition {
                kind: TransitionKind::WorkloadDown,
                level: 2,
            },
        );
        sink.record(
            0,
            860,
            Event::DvfsActuation {
                freq_khz: 1_600_000,
            },
        );
        sink
    }

    #[test]
    fn sleep_slices_are_distinct_from_park_slices() {
        use hermes_telemetry::WakeReason;
        let sink = RingSink::new(2);
        // Worker 0 parks briefly; worker 1 takes an elastic sleep.
        sink.record(0, 300, Event::WorkerPark);
        sink.record(0, 800, Event::WorkerUnpark { parked_ns: 500 });
        sink.record(1, 1_000, Event::WorkerSleep);
        sink.record(
            1,
            5_000,
            Event::WorkerWake {
                reason: WakeReason::Signal,
                slept_ns: 4_000,
            },
        );
        let text = chrome_trace_json(&sink);
        let stats = validate_chrome_trace(&text).expect("sleep trace validates");
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.sleep_slices, 1);
        let doc = chrome_trace(&sink);
        let entries = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let sleep = entries
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("sleep"))
            .expect("sleep slice present");
        // Bracketed back from the wake instant: [1000, 5000] ns.
        assert_eq!(sleep.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(sleep.get("dur").unwrap().as_f64(), Some(4.0));
        assert_eq!(sleep.get("tid").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            sleep.get("args").unwrap().get("reason").unwrap().as_str(),
            Some("signal")
        );
        let park = entries
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("park"))
            .expect("park slice present");
        assert_eq!(park.get("tid").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn validator_rejects_sleep_slices_without_a_reason() {
        let bare = r#"{"traceEvents": [
            {"name": "sleep", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bare)
            .unwrap_err()
            .contains("args.reason"));
        let with_reason = r#"{"traceEvents": [
            {"name": "sleep", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 0,
             "args": {"reason": "signal"}}
        ]}"#;
        let stats = validate_chrome_trace(with_reason).expect("reasoned sleep validates");
        assert_eq!(stats.sleep_slices, 1);
    }

    #[test]
    fn trace_round_trips_through_its_own_validator() {
        let sink = scenario_sink();
        let text = chrome_trace_json(&sink);
        let stats = validate_chrome_trace(&text).expect("trace must validate");
        // 3 tracks named (2 workers + machine).
        assert_eq!(stats.metadata, 3);
        // Two span slices (queued, poll) + one park slice.
        assert_eq!(stats.span_slices, 2);
        assert_eq!(stats.slices, 3);
        // Instants: complete + tempo + dvfs.
        assert_eq!(stats.instants, 3);
        // Flows: the steal arrow and the machine→worker-1 queue hop.
        assert_eq!(stats.flow_begins, 2);
        assert_eq!(stats.flow_ends, 2);
        // One counter track: the frequency step from the actuation.
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.counter_tracks, 1);
        assert_eq!(
            stats.events,
            stats.metadata
                + stats.slices
                + stats.instants
                + stats.flow_begins
                + stats.flow_ends
                + stats.counters
        );
    }

    #[test]
    fn counter_tracks_step_watts_and_frequency() {
        use hermes_telemetry::PowerKind;
        let sink = RingSink::new(2);
        // Worker 0: busy 8 W over [100, 1100], spin 2 W over
        // [1100, 1600] (intervals record at close time).
        sink.record(
            0,
            1_100,
            Event::PowerInterval {
                kind: PowerKind::Busy,
                duration_ns: 1_000,
                milliwatts: 8_000,
            },
        );
        sink.record(
            0,
            1_600,
            Event::PowerInterval {
                kind: PowerKind::Spin,
                duration_ns: 500,
                milliwatts: 2_000,
            },
        );
        sink.record(
            1,
            200,
            Event::DvfsActuation {
                freq_khz: 2_400_000,
            },
        );
        sink.record(
            1,
            900,
            Event::DvfsActuation {
                freq_khz: 1_600_000,
            },
        );
        let text = chrome_trace_json(&sink);
        let stats = validate_chrome_trace(&text).expect("counter trace validates");
        // Watts: two samples + the trailing zero; freq: two steps.
        assert_eq!(stats.counters, 5);
        assert_eq!(stats.counter_tracks, 2);
        let doc = chrome_trace(&sink);
        let entries = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let samples: Vec<(f64, f64)> = entries
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("watts worker 0"))
            .map(|e| {
                (
                    e.get("ts").unwrap().as_f64().unwrap(),
                    e.get("args")
                        .unwrap()
                        .get("watts")
                        .unwrap()
                        .as_f64()
                        .unwrap(),
                )
            })
            .collect();
        // Steps at the interval *starts*, closed by a trailing zero.
        assert_eq!(samples, vec![(0.1, 8.0), (1.1, 2.0), (1.6, 0.0)]);
        let mhz: Vec<f64> = entries
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("freq_mhz worker 1"))
            .map(|e| e.get("args").unwrap().get("mhz").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(mhz, vec![2_400.0, 1_600.0]);
    }

    #[test]
    fn validator_rejects_bad_counters() {
        let negative = r#"{"traceEvents": [
            {"name": "watts worker 0", "ph": "C", "ts": 0, "pid": 1, "tid": 0,
             "args": {"watts": -1}}
        ]}"#;
        assert!(validate_chrome_trace(negative)
            .unwrap_err()
            .contains("negative counter"));
        let backwards = r#"{"traceEvents": [
            {"name": "watts worker 0", "ph": "C", "ts": 5, "pid": 1, "tid": 0,
             "args": {"watts": 1}},
            {"name": "watts worker 0", "ph": "C", "ts": 4, "pid": 1, "tid": 0,
             "args": {"watts": 2}}
        ]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("backwards"));
        let missing_args = r#"{"traceEvents": [
            {"name": "watts worker 0", "ph": "C", "ts": 0, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(missing_args)
            .unwrap_err()
            .contains("args"));
        let colliding = r#"{"traceEvents": [
            {"name": "park", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 0},
            {"name": "park", "ph": "C", "ts": 0, "pid": 1, "tid": 0,
             "args": {"watts": 1}}
        ]}"#;
        assert!(validate_chrome_trace(colliding)
            .unwrap_err()
            .contains("collides"));
    }

    #[test]
    fn machine_stream_maps_to_the_track_after_the_last_worker() {
        let sink = scenario_sink();
        let doc = chrome_trace(&sink);
        let entries = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let queued = entries
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("span:queued"))
            .expect("queued slice present");
        assert_eq!(queued.get("tid").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            queued.get("ts").unwrap().as_f64(),
            Some(0.1),
            "100 ns = 0.1 µs"
        );
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"other\": 1}")
            .unwrap_err()
            .contains("traceEvents"));
        let missing_dur = r#"{"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(missing_dur)
            .unwrap_err()
            .contains("dur"));
        let unbalanced = r#"{"traceEvents": [
            {"name": "hop", "ph": "s", "ts": 0, "pid": 1, "tid": 0, "id": 1}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("unbalanced"));
    }
}
