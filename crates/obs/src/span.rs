//! Stitching causal spans back out of the event stream.
//!
//! Hosts record [`Event::SpanBegin`]/[`Event::SpanEnd`] pairs carrying a
//! request/task id and a [`SpanPhase`] on whatever stream the edge
//! happened on — the span of one request therefore scatters across
//! worker streams as the task is injected, stolen, polled, parked, and
//! woken. This module gathers every span edge out of a [`RingSink`],
//! groups them by id, and pairs begins with ends per phase, producing a
//! [`SpanForest`] the exporters and tests consume.

use hermes_telemetry::{Event, RingSink, SpanPhase, MACHINE_STREAM};

/// One span edge, as recorded: which stream, when, which span, which
/// phase, and whether it opens or closes the phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stream the edge was recorded on (worker index or
    /// [`MACHINE_STREAM`]).
    pub stream: usize,
    /// Host timestamp, nanoseconds since the host's epoch.
    pub at_ns: u64,
    /// Span id (request/task identity), nonzero.
    pub id: u64,
    /// Lifecycle phase this edge belongs to.
    pub phase: SpanPhase,
    /// `true` for [`Event::SpanBegin`], `false` for [`Event::SpanEnd`].
    pub begin: bool,
}

/// One paired phase episode of a span: `[begin_ns, end_ns]` on
/// `begin_stream`, closed from `end_stream` (a differing end stream is
/// the cross-worker hop — e.g. a wake closing a park-wait from the
/// thread that produced the readiness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseInterval {
    /// The phase.
    pub phase: SpanPhase,
    /// When and where the phase opened.
    pub begin_ns: u64,
    /// Stream the begin edge was recorded on.
    pub begin_stream: usize,
    /// When the phase closed; `None` for a still-open (or truncated by
    /// ring overflow) phase.
    pub end_ns: Option<u64>,
    /// Stream the end edge was recorded on, when closed.
    pub end_stream: Option<usize>,
}

impl PhaseInterval {
    /// Episode duration; 0 while open or when cross-thread clock skew
    /// ordered the edges backwards.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns
            .map_or(0, |end| end.saturating_sub(self.begin_ns))
    }

    /// Whether the end edge was recorded on a different stream than the
    /// begin — the signature of a cross-worker hop.
    #[must_use]
    pub fn crosses_streams(&self) -> bool {
        matches!(self.end_stream, Some(end) if end != self.begin_stream)
    }
}

/// All phase episodes of one span id, in begin-time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The span id.
    pub id: u64,
    /// Paired phase episodes, ordered by begin time.
    pub intervals: Vec<PhaseInterval>,
    /// The terminal [`SpanPhase::Complete`] instant, when recorded: a
    /// bare `SpanEnd` with no matching begin (see the event docs).
    pub completed_at: Option<(u64, usize)>,
    /// End edges with no matching begin (begin lost to ring overflow,
    /// or a zero-length race ordered end-first); kept so nothing is
    /// silently discarded.
    pub orphan_ends: Vec<SpanEvent>,
}

impl Span {
    /// The episodes of one phase, in order.
    #[must_use]
    pub fn phase_intervals(&self, phase: SpanPhase) -> Vec<&PhaseInterval> {
        self.intervals.iter().filter(|i| i.phase == phase).collect()
    }

    /// First begin timestamp of the span.
    #[must_use]
    pub fn start_ns(&self) -> Option<u64> {
        self.intervals.first().map(|i| i.begin_ns)
    }

    /// Latest end timestamp across episodes.
    #[must_use]
    pub fn last_end_ns(&self) -> Option<u64> {
        self.intervals.iter().filter_map(|i| i.end_ns).max()
    }
}

/// Every span stitched out of one sink, ordered by id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanForest {
    /// The spans, ascending by id.
    pub spans: Vec<Span>,
}

/// Pull every span edge out of `sink`'s rings (worker streams first,
/// then the machine stream), in a deterministic order: sorted by
/// `(at_ns, stream, id, phase, end-before-begin)`. Ends sort before
/// begins at equal timestamps so a zero-length episode closes before
/// the next one opens.
#[must_use]
pub fn collect_span_events(sink: &RingSink) -> Vec<SpanEvent> {
    let mut events = Vec::new();
    let streams = (0..sink.workers()).chain([MACHINE_STREAM]);
    for stream in streams {
        for (at_ns, event) in sink.ring(stream).snapshot() {
            let (id, phase, begin) = match event {
                Event::SpanBegin { id, phase } => (id, phase, true),
                Event::SpanEnd { id, phase } => (id, phase, false),
                _ => continue,
            };
            events.push(SpanEvent {
                stream,
                at_ns,
                id,
                phase,
                begin,
            });
        }
    }
    events.sort_by_key(|e| (e.at_ns, e.stream, e.id, e.phase as u8, e.begin));
    events
}

impl SpanForest {
    /// Stitch the spans recorded in `sink`.
    #[must_use]
    pub fn from_sink(sink: &RingSink) -> SpanForest {
        SpanForest::from_events(&collect_span_events(sink))
    }

    /// Stitch spans from pre-collected edges (any order).
    #[must_use]
    pub fn from_events(events: &[SpanEvent]) -> SpanForest {
        let mut sorted: Vec<SpanEvent> = events.to_vec();
        sorted.sort_by_key(|e| (e.id, e.at_ns, e.phase as u8, e.begin, e.stream));
        let mut spans: Vec<Span> = Vec::new();
        for ev in sorted {
            if spans.last().map(|s| s.id) != Some(ev.id) {
                spans.push(Span {
                    id: ev.id,
                    intervals: Vec::new(),
                    completed_at: None,
                    orphan_ends: Vec::new(),
                });
            }
            let span = spans.last_mut().expect("span pushed above");
            if !ev.begin && ev.phase == SpanPhase::Complete {
                // Terminal instant: a bare end, by protocol.
                span.completed_at = Some((ev.at_ns, ev.stream));
                continue;
            }
            if ev.begin {
                span.intervals.push(PhaseInterval {
                    phase: ev.phase,
                    begin_ns: ev.at_ns,
                    begin_stream: ev.stream,
                    end_ns: None,
                    end_stream: None,
                });
            } else {
                // Close the oldest open episode of this phase: begins
                // and ends of one (id, phase) pair up in order.
                match span
                    .intervals
                    .iter_mut()
                    .find(|i| i.phase == ev.phase && i.end_ns.is_none())
                {
                    Some(interval) => {
                        interval.end_ns = Some(ev.at_ns);
                        interval.end_stream = Some(ev.stream);
                    }
                    None => span.orphan_ends.push(ev),
                }
            }
        }
        SpanForest { spans }
    }

    /// Number of spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The span with `id`, if present.
    #[must_use]
    pub fn span(&self, id: u64) -> Option<&Span> {
        self.spans
            .binary_search_by_key(&id, |s| s.id)
            .ok()
            .map(|i| &self.spans[i])
    }

    /// Total paired phase episodes across spans.
    #[must_use]
    pub fn intervals(&self) -> usize {
        self.spans.iter().map(|s| s.intervals.len()).sum()
    }

    /// Cross-stream hops (steals, remote wakes) across spans.
    #[must_use]
    pub fn cross_stream_hops(&self) -> usize {
        self.spans
            .iter()
            .flat_map(|s| &s.intervals)
            .filter(|i| i.crosses_streams())
            .count()
    }

    /// A content fingerprint of the whole forest: FNV-1a over every
    /// stitched interval and orphan, in the forest's canonical order.
    /// Two runs with identical span timelines (e.g. the sim executor
    /// replaying one seed) hash identically; any divergence in ids,
    /// phases, streams, or timestamps changes the digest.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        for span in &self.spans {
            eat(span.id);
            let (done_ns, done_stream) = span
                .completed_at
                .map_or((u64::MAX, u64::MAX), |(ns, s)| (ns, s as u64));
            eat(done_ns);
            eat(done_stream);
            for i in &span.intervals {
                eat(i.phase as u64);
                eat(i.begin_ns);
                eat(i.begin_stream as u64);
                eat(i.end_ns.map_or(u64::MAX, |e| e));
                eat(i.end_stream.map_or(u64::MAX, |s| s as u64));
            }
            for o in &span.orphan_ends {
                eat(o.phase as u64);
                eat(o.at_ns);
                eat(o.stream as u64);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_telemetry::TelemetrySink;

    fn begin(stream: usize, at_ns: u64, id: u64, phase: SpanPhase) -> SpanEvent {
        SpanEvent {
            stream,
            at_ns,
            id,
            phase,
            begin: true,
        }
    }

    fn end(stream: usize, at_ns: u64, id: u64, phase: SpanPhase) -> SpanEvent {
        SpanEvent {
            stream,
            at_ns,
            id,
            phase,
            begin: false,
        }
    }

    #[test]
    fn pairs_phases_in_order_and_detects_hops() {
        // Span 7: queued on the machine stream, steal-closed on worker
        // 1, polled there; a second queued episode after a wake.
        let events = vec![
            begin(MACHINE_STREAM, 10, 7, SpanPhase::Queued),
            end(1, 25, 7, SpanPhase::Queued),
            begin(1, 25, 7, SpanPhase::Poll),
            end(1, 40, 7, SpanPhase::Poll),
            begin(1, 40, 7, SpanPhase::ParkWait),
            end(0, 90, 7, SpanPhase::ParkWait), // woken from worker 0
            begin(0, 90, 7, SpanPhase::Queued),
            end(0, 95, 7, SpanPhase::Queued),
            end(0, 99, 7, SpanPhase::Complete), // terminal instant
        ];
        let forest = SpanForest::from_events(&events);
        assert_eq!(forest.len(), 1);
        let span = forest.span(7).unwrap();
        assert_eq!(span.intervals.len(), 4);
        assert!(span.orphan_ends.is_empty());
        assert_eq!(
            span.completed_at,
            Some((99, 0)),
            "terminal instant, not an orphan"
        );
        let queued = span.phase_intervals(SpanPhase::Queued);
        assert_eq!(queued.len(), 2);
        assert_eq!(queued[0].duration_ns(), 15);
        assert!(queued[0].crosses_streams(), "machine → worker 1");
        assert!(!queued[1].crosses_streams());
        let park = span.phase_intervals(SpanPhase::ParkWait)[0];
        assert_eq!(park.duration_ns(), 50);
        assert!(park.crosses_streams(), "the wake hop");
        assert_eq!(forest.cross_stream_hops(), 2);
        assert_eq!(span.start_ns(), Some(10));
        assert_eq!(span.last_end_ns(), Some(95));
    }

    #[test]
    fn orphan_ends_are_kept_not_dropped() {
        let events = vec![end(0, 5, 3, SpanPhase::Poll)];
        let forest = SpanForest::from_events(&events);
        let span = forest.span(3).unwrap();
        assert!(span.intervals.is_empty());
        assert_eq!(span.orphan_ends.len(), 1);
    }

    #[test]
    fn fingerprint_is_order_insensitive_but_content_sensitive() {
        let a = vec![
            begin(0, 1, 1, SpanPhase::Queued),
            end(0, 2, 1, SpanPhase::Queued),
            begin(1, 3, 2, SpanPhase::Poll),
            end(1, 4, 2, SpanPhase::Poll),
        ];
        let mut shuffled = a.clone();
        shuffled.reverse();
        assert_eq!(
            SpanForest::from_events(&a).fingerprint(),
            SpanForest::from_events(&shuffled).fingerprint(),
            "collection order must not matter"
        );
        let mut moved = a.clone();
        moved[3].at_ns = 5;
        assert_ne!(
            SpanForest::from_events(&a).fingerprint(),
            SpanForest::from_events(&moved).fingerprint(),
            "a timestamp shift must change the digest"
        );
        assert_ne!(SpanForest::default().fingerprint(), 0);
    }

    #[test]
    fn collect_reads_worker_and_machine_streams() {
        let sink = RingSink::new(2);
        sink.record(
            0,
            10,
            Event::SpanBegin {
                id: 1,
                phase: SpanPhase::Poll,
            },
        );
        sink.record(
            MACHINE_STREAM,
            5,
            Event::SpanBegin {
                id: 2,
                phase: SpanPhase::Inject,
            },
        );
        sink.record(0, 20, Event::TaskPoll); // not a span edge
        sink.record(
            1,
            15,
            Event::SpanEnd {
                id: 1,
                phase: SpanPhase::Poll,
            },
        );
        let events = collect_span_events(&sink);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at_ns, 5, "sorted by time");
        let forest = SpanForest::from_sink(&sink);
        assert_eq!(forest.len(), 2);
        assert!(forest.span(1).unwrap().intervals[0].crosses_streams());
    }
}
