//! Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! Renders the live counters [`Pool::metrics`](hermes_telemetry::MetricsSnapshot)
//! samples into the plain-text exposition format (version 0.0.4): one
//! `# TYPE`-annotated family per counter, per-worker series labelled
//! `worker="N"`, and gauges for the instantaneous pool state. Seconds
//! are the unit convention for time, so nanosecond counters are scaled.

use hermes_telemetry::MetricsSnapshot;
use std::fmt::Write as _;

fn seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Render `snapshot` in the Prometheus text exposition format. Every
/// metric name is prefixed with `prefix` followed by an underscore
/// (pass `"hermes"` for `hermes_worker_busy_seconds_total` etc.).
#[must_use]
pub fn prometheus_text(snapshot: &MetricsSnapshot, prefix: &str) -> String {
    fn family(out: &mut String, prefix: &str, name: &str, help: &str, kind: &str) -> String {
        let _ = writeln!(out, "# HELP {prefix}_{name} {help}");
        let _ = writeln!(out, "# TYPE {prefix}_{name} {kind}");
        format!("{prefix}_{name}")
    }

    let mut out = String::new();
    let busy = family(
        &mut out,
        prefix,
        "worker_busy_seconds_total",
        "Time each worker spent executing jobs.",
        "counter",
    );
    for (w, s) in snapshot.workers.iter().enumerate() {
        let _ = writeln!(out, "{busy}{{worker=\"{w}\"}} {}", seconds(s.busy_ns));
    }

    let steal = family(
        &mut out,
        prefix,
        "worker_steal_seconds_total",
        "Time each worker spent in the steal path.",
        "counter",
    );
    for (w, s) in snapshot.workers.iter().enumerate() {
        let _ = writeln!(out, "{steal}{{worker=\"{w}\"}} {}", seconds(s.steal_ns));
    }

    let parked = family(
        &mut out,
        prefix,
        "worker_parked_seconds_total",
        "Time each worker spent parked on the pool condvar.",
        "counter",
    );
    for (w, s) in snapshot.workers.iter().enumerate() {
        let _ = writeln!(out, "{parked}{{worker=\"{w}\"}} {}", seconds(s.parked_ns));
    }

    let tasks = family(
        &mut out,
        prefix,
        "worker_tasks_total",
        "Jobs executed to completion per worker.",
        "counter",
    );
    for (w, s) in snapshot.workers.iter().enumerate() {
        let _ = writeln!(out, "{tasks}{{worker=\"{w}\"}} {}", s.tasks);
    }

    let depth = family(
        &mut out,
        prefix,
        "injector_depth",
        "Jobs waiting in the injection front door (all cells).",
        "gauge",
    );
    let _ = writeln!(out, "{depth} {}", snapshot.injector_depth);

    // Per-cell depths appear only for hosts whose front door is
    // sharded into per-clock-domain cells; single-injector snapshots
    // leave the vector empty and expose just the merged gauge above.
    if !snapshot.injector_cell_depths.is_empty() {
        let cell_depth = family(
            &mut out,
            prefix,
            "injector_cell_depth",
            "Jobs waiting per injector cell (one cell per clock domain).",
            "gauge",
        );
        for (cell, len) in snapshot.injector_cell_depths.iter().enumerate() {
            let _ = writeln!(out, "{cell_depth}{{cell=\"{cell}\"}} {len}");
        }
    }

    let in_flight = family(
        &mut out,
        prefix,
        "requests_in_flight",
        "Requests submitted but not yet completed.",
        "gauge",
    );
    let _ = writeln!(out, "{in_flight} {}", snapshot.in_flight);

    let active = family(
        &mut out,
        prefix,
        "active_workers",
        "Workers awake (not in elastic sleep); the full count without an elastic policy.",
        "gauge",
    );
    let _ = writeln!(out, "{active} {}", snapshot.active_workers);

    let util = family(
        &mut out,
        prefix,
        "pool_utilization_ratio",
        "Busy time over wall time across workers, 0 to 1.",
        "gauge",
    );
    let _ = writeln!(out, "{util} {}", snapshot.utilization());

    let uptime = family(
        &mut out,
        prefix,
        "pool_uptime_seconds",
        "Time since the pool epoch at the snapshot instant.",
        "gauge",
    );
    let _ = writeln!(out, "{uptime} {}", seconds(snapshot.at_ns));

    for (name, help, value) in [
        (
            "request_latency_p50_seconds",
            "Rolling median request latency.",
            snapshot.latency_p50_ns,
        ),
        (
            "request_latency_p99_seconds",
            "Rolling 99th-percentile request latency.",
            snapshot.latency_p99_ns,
        ),
    ] {
        if let Some(ns) = value {
            let q = family(&mut out, prefix, name, help, "gauge");
            let _ = writeln!(out, "{q} {}", seconds(ns));
        }
    }

    let dropped = family(
        &mut out,
        prefix,
        "events_dropped_total",
        "Telemetry events evicted by ring overflow (tallies stay exact).",
        "counter",
    );
    let _ = writeln!(out, "{dropped} {}", snapshot.dropped_events);

    // Energy families are emitted only when a host filled the energy
    // model's columns — a pool without emulated DVFS has no joules to
    // report, and absent beats a misleading zero.
    if snapshot.workers.iter().any(|s| s.energy_uj > 0) {
        let energy = family(
            &mut out,
            prefix,
            "energy_joules_total",
            "Emulated energy consumed per worker.",
            "counter",
        );
        for (w, s) in snapshot.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "{energy}{{worker=\"{w}\"}} {}",
                s.energy_uj as f64 / 1e6
            );
        }
        let watts = family(
            &mut out,
            prefix,
            "worker_power_watts",
            "Mean emulated power per worker over the pool's uptime.",
            "gauge",
        );
        for w in 0..snapshot.workers.len() {
            let _ = writeln!(
                out,
                "{watts}{{worker=\"{w}\"}} {}",
                snapshot.worker_watts(w)
            );
        }
    }

    for (name, help, value) in [
        (
            "request_energy_p50_joules",
            "Rolling median per-request energy.",
            snapshot.energy_p50_uj,
        ),
        (
            "request_energy_p99_joules",
            "Rolling 99th-percentile per-request energy.",
            snapshot.energy_p99_uj,
        ),
    ] {
        if let Some(uj) = value {
            let q = family(&mut out, prefix, name, help, "gauge");
            let _ = writeln!(out, "{q} {}", uj as f64 / 1e6);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_telemetry::WorkerMetricsSample;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            at_ns: 2_000_000_000,
            workers: vec![
                WorkerMetricsSample {
                    busy_ns: 1_000_000_000,
                    steal_ns: 250_000_000,
                    parked_ns: 500_000_000,
                    tasks: 42,
                    energy_uj: 0,
                },
                WorkerMetricsSample {
                    busy_ns: 3_000_000_000,
                    steal_ns: 0,
                    parked_ns: 0,
                    tasks: 7,
                    energy_uj: 0,
                },
            ],
            injector_depth: 3,
            injector_cell_depths: vec![2, 0, 1],
            in_flight: 11,
            active_workers: 2,
            latency_p50_ns: Some(1_500_000),
            latency_p99_ns: None,
            energy_p50_uj: None,
            energy_p99_uj: None,
            dropped_events: 0,
        }
    }

    #[test]
    fn exposition_has_typed_families_and_labelled_series() {
        let text = prometheus_text(&sample_snapshot(), "hermes");
        assert!(text.contains("# TYPE hermes_worker_busy_seconds_total counter"));
        assert!(text.contains("hermes_worker_busy_seconds_total{worker=\"0\"} 1"));
        assert!(text.contains("hermes_worker_busy_seconds_total{worker=\"1\"} 3"));
        assert!(text.contains("hermes_worker_tasks_total{worker=\"0\"} 42"));
        assert!(text.contains("# TYPE hermes_injector_depth gauge"));
        assert!(text.contains("hermes_injector_depth 3"));
        assert!(text.contains("hermes_requests_in_flight 11"));
        assert!(text.contains("# TYPE hermes_active_workers gauge"));
        assert!(text.contains("hermes_active_workers 2"));
        assert!(text.contains("hermes_pool_utilization_ratio 1"));
        assert!(text.contains("hermes_request_latency_p50_seconds 0.0015"));
        assert!(
            !text.contains("p99"),
            "absent quantiles are omitted, not zero-filled"
        );
        assert!(text.contains("# TYPE hermes_events_dropped_total counter"));
        assert!(text.contains("hermes_events_dropped_total 0"));
        assert!(
            !text.contains("energy"),
            "no energy model, no joule families"
        );
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
            assert!(parts.next().unwrap().starts_with("hermes_"));
        }
    }

    #[test]
    fn energy_families_appear_once_a_host_fills_them() {
        let mut snap = sample_snapshot();
        snap.workers[0].energy_uj = 16_000_000; // 16 J over 2 s = 8 W
        snap.workers[1].energy_uj = 4_000_000;
        snap.energy_p50_uj = Some(2_500);
        snap.energy_p99_uj = None;
        snap.dropped_events = 17;
        let text = prometheus_text(&snap, "hermes");
        assert!(text.contains("# TYPE hermes_energy_joules_total counter"));
        assert!(text.contains("hermes_energy_joules_total{worker=\"0\"} 16"));
        assert!(text.contains("hermes_energy_joules_total{worker=\"1\"} 4"));
        assert!(text.contains("# TYPE hermes_worker_power_watts gauge"));
        assert!(text.contains("hermes_worker_power_watts{worker=\"0\"} 8"));
        assert!(text.contains("hermes_worker_power_watts{worker=\"1\"} 2"));
        assert!(text.contains("hermes_request_energy_p50_joules 0.0025"));
        assert!(
            !text.contains("request_energy_p99"),
            "absent energy quantiles are omitted"
        );
        assert!(text.contains("hermes_events_dropped_total 17"));
        // The exposition grammar still holds with the new families.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            assert!(parts.next().unwrap().parse::<f64>().is_ok(), "{line}");
            assert!(parts.next().unwrap().starts_with("hermes_"));
        }
    }
}
