//! # hermes-obs
//!
//! The observability layer over `hermes-telemetry`: turns the raw
//! per-worker event streams the hosts already record into artifacts a
//! human can act on.
//!
//! Five pieces, each usable alone:
//!
//! - [`SpanForest`] — stitches the causal [`SpanBegin`](hermes_telemetry::Event::SpanBegin)/
//!   [`SpanEnd`](hermes_telemetry::Event::SpanEnd) edges scattered
//!   across worker streams back into per-request span trees, including
//!   the cross-worker hops (steal-moved queue episodes, remote wakes),
//!   with a deterministic [`fingerprint`](SpanForest::fingerprint) for
//!   replay testing on the sim executor.
//! - [`EnergyLedger`] — joins the hosts'
//!   [`PowerInterval`](hermes_telemetry::Event::PowerInterval) timelines
//!   against the span forest: each span is charged the busy-power
//!   integral over its poll episodes, spin/park power lands in an
//!   explicit idle bucket, and the three buckets must rebuild the meter
//!   total (the closure invariant the sweep's `--gate-energy-attr`
//!   enforces).
//! - [`chrome_trace`] / [`chrome_trace_json`] — export a
//!   [`RingSink`](hermes_telemetry::RingSink) as Chrome trace-event
//!   JSON loadable in `chrome://tracing` or Perfetto: one track per
//!   worker with span and park slices, tempo/DVFS instants, and flow
//!   arrows for steals and wakes. [`validate_chrome_trace`] checks the
//!   schema and returns [`TraceStats`] for count reconciliation.
//! - [`prometheus_text`] — render a live
//!   [`MetricsSnapshot`](hermes_telemetry::MetricsSnapshot) (from
//!   `Pool::metrics()` / `Server::metrics()`) in the Prometheus text
//!   exposition format.
//! - [`FlightRecorder`] — an always-on bounded sink whose
//!   [`dump`](FlightRecorder::dump) interleaves the retained tail of
//!   every stream for deadlock panics and budget-breach callbacks.
//!
//! Everything here is read-side: the crate adds no recording cost. The
//! hot-path story stays the one `hermes-telemetry` tells — two relaxed
//! stores per metrics update, one wait-free ring record per event, and
//! structurally zero with no sink attached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod energy;
mod flight;
mod prom;
mod span;
mod trace;

pub use energy::{collect_power_segments, EnergyLedger, PowerSegment, SpanEnergy};
pub use flight::{FlightDump, FlightEntry, FlightRecorder, FLIGHT_RING_CAPACITY};
pub use prom::prometheus_text;
pub use span::{collect_span_events, PhaseInterval, Span, SpanEvent, SpanForest};
pub use trace::{chrome_trace, chrome_trace_json, validate_chrome_trace, TraceStats};
