//! Sysfs-backed topology discovery.
//!
//! Linux exposes each CPU's placement under
//! `/sys/devices/system/cpu/cpuN/topology/`: `physical_package_id` is
//! the socket and `core_id` the physical core within it. Logical CPUs
//! that share a `(package, core)` pair are siblings of one physical core
//! (SMT threads, or the paired cores of an AMD Bulldozer/Piledriver
//! module) — exactly the unit that shares a clock domain on the paper's
//! testbeds, so discovery maps each distinct `(package, core)` pair to
//! one clock domain.
//!
//! Like the runtime's `SysfsCpufreqDriver`, everything takes an explicit
//! root so the parser is testable against fake directory trees in
//! containers and CI.

use crate::Topology;
use std::collections::BTreeMap;
use std::path::Path;

/// Error discovering or parsing a sysfs topology tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError {
    message: String,
}

impl TopologyError {
    fn new(message: impl Into<String>) -> Self {
        TopologyError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "topology discovery failed: {}", self.message)
    }
}

impl std::error::Error for TopologyError {}

/// Discover the host machine's topology from the standard sysfs root.
///
/// # Errors
///
/// Returns [`TopologyError`] when sysfs is absent or unparseable (normal
/// in minimal containers); callers fall back to an emulated
/// [`Topology`] preset.
pub fn discover() -> Result<Topology, TopologyError> {
    discover_with_root(Path::new("/sys/devices/system/cpu"))
}

/// Like [`discover`] with an explicit sysfs root (testable).
///
/// # Errors
///
/// Same conditions as [`discover`].
pub fn discover_with_root(root: &Path) -> Result<Topology, TopologyError> {
    let entries = std::fs::read_dir(root)
        .map_err(|e| TopologyError::new(format!("cannot read {}: {e}", root.display())))?;
    // Map cpu index -> (package_id, core_id); BTreeMap so core ids come
    // out dense and ascending regardless of directory iteration order.
    let mut cpus: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let Some(index) = parse_cpu_dir_name(&name) else {
            continue; // cpufreq/, cpuidle/, online, ...
        };
        let topo_dir = entry.path().join("topology");
        if !topo_dir.is_dir() {
            // Present on real kernels for every possible CPU; a cpu dir
            // without it (e.g. an offline stub in a fake root) is skipped
            // rather than treated as a machine with holes.
            continue;
        }
        let package = read_id(&topo_dir.join("physical_package_id"))?;
        let core = read_id(&topo_dir.join("core_id"))?;
        cpus.insert(index, (package, core));
    }
    if cpus.is_empty() {
        return Err(TopologyError::new(format!(
            "no cpu*/topology entries under {}",
            root.display()
        )));
    }

    // Assign dense domain ids per distinct (package, core) pair and
    // dense package ids per distinct package, in order of first
    // appearance over ascending cpu index.
    let mut domain_ids: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    let mut package_ids: BTreeMap<u64, usize> = BTreeMap::new();
    let mut core_domain = Vec::with_capacity(cpus.len());
    let mut domain_package = Vec::new();
    for (&_cpu, &(package, core)) in &cpus {
        let next_package = package_ids.len();
        let package_idx = *package_ids.entry(package).or_insert(next_package);
        let next_domain = domain_ids.len();
        let domain_idx = *domain_ids.entry((package, core)).or_insert(next_domain);
        if domain_idx == domain_package.len() {
            domain_package.push(package_idx);
        }
        core_domain.push(domain_idx);
    }
    let topo = Topology::from_parts(core_domain, domain_package);
    topo.validate().map_err(TopologyError::new)?;
    Ok(topo)
}

/// `"cpu12"` -> `Some(12)`; anything else (including `"cpufreq"`) -> `None`.
fn parse_cpu_dir_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("cpu")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Read a sysfs id file (one decimal integer). `physical_package_id` is
/// `-1` on some platforms that do not expose sockets; fold that to 0.
fn read_id(path: &Path) -> Result<u64, TopologyError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TopologyError::new(format!("cannot read {}: {e}", path.display())))?;
    let trimmed = text.trim();
    if trimmed == "-1" {
        return Ok(0);
    }
    trimmed
        .parse::<u64>()
        .map_err(|e| TopologyError::new(format!("bad id in {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreId;

    struct FakeRoot(std::path::PathBuf);

    impl FakeRoot {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("hermes-topo-{tag}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            FakeRoot(dir)
        }

        fn cpu(&self, index: usize, package: i64, core: u64) {
            let topo = self.0.join(format!("cpu{index}/topology"));
            std::fs::create_dir_all(&topo).unwrap();
            std::fs::write(topo.join("physical_package_id"), format!("{package}\n")).unwrap();
            std::fs::write(topo.join("core_id"), format!("{core}\n")).unwrap();
        }
    }

    impl Drop for FakeRoot {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn discovers_a_system_b_shaped_root() {
        // FX-8150: 8 cpus, pairs sharing a core_id, one package.
        let root = FakeRoot::new("sysb");
        for cpu in 0..8 {
            root.cpu(cpu, 0, (cpu / 2) as u64);
        }
        let topo = discover_with_root(&root.0).unwrap();
        assert_eq!(topo, Topology::system_b());
    }

    #[test]
    fn discovers_two_packages_with_sparse_ids() {
        // Non-dense sysfs ids (packages 0/3, core ids 4/9) must map onto
        // dense domain/package indices.
        let root = FakeRoot::new("sparse");
        root.cpu(0, 0, 4);
        root.cpu(1, 0, 4);
        root.cpu(2, 3, 9);
        root.cpu(3, 3, 9);
        let topo = discover_with_root(&root.0).unwrap();
        assert_eq!(topo.cores(), 4);
        assert_eq!(topo.domains(), 2);
        assert_eq!(topo.packages(), 2);
        assert_eq!(topo.distance(CoreId(0), CoreId(1)), 1);
        assert_eq!(topo.distance(CoreId(0), CoreId(2)), 3);
    }

    #[test]
    fn ignores_non_cpu_entries_and_missing_topology_dirs() {
        let root = FakeRoot::new("noise");
        root.cpu(0, 0, 0);
        root.cpu(1, 0, 0);
        std::fs::create_dir_all(root.0.join("cpufreq")).unwrap();
        std::fs::create_dir_all(root.0.join("cpu7")).unwrap(); // no topology/
        std::fs::write(root.0.join("online"), "0-1\n").unwrap();
        let topo = discover_with_root(&root.0).unwrap();
        assert_eq!(topo.cores(), 2);
        assert_eq!(topo.domains(), 1);
    }

    #[test]
    fn package_id_minus_one_folds_to_zero() {
        let root = FakeRoot::new("pkg-1");
        root.cpu(0, -1, 0);
        root.cpu(1, -1, 1);
        let topo = discover_with_root(&root.0).unwrap();
        assert_eq!(topo.packages(), 1);
        assert_eq!(topo.distance(CoreId(0), CoreId(1)), 2);
    }

    #[test]
    fn empty_or_missing_roots_error() {
        let err = discover_with_root(Path::new("/definitely/not/here")).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
        let root = FakeRoot::new("empty");
        let err = discover_with_root(&root.0).unwrap_err();
        assert!(err.to_string().contains("no cpu"), "{err}");
    }

    #[test]
    fn malformed_id_files_error() {
        let root = FakeRoot::new("bad");
        let topo = root.0.join("cpu0/topology");
        std::fs::create_dir_all(&topo).unwrap();
        std::fs::write(topo.join("physical_package_id"), "zero\n").unwrap();
        std::fs::write(topo.join("core_id"), "0\n").unwrap();
        assert!(discover_with_root(&root.0).is_err());
    }

    #[test]
    fn cpu_dir_name_parser() {
        assert_eq!(parse_cpu_dir_name("cpu0"), Some(0));
        assert_eq!(parse_cpu_dir_name("cpu31"), Some(31));
        assert_eq!(parse_cpu_dir_name("cpufreq"), None);
        assert_eq!(parse_cpu_dir_name("cpu"), None);
        assert_eq!(parse_cpu_dir_name("cpuidle"), None);
        assert_eq!(parse_cpu_dir_name("node0"), None);
    }
}
