//! Victim selection: the order a thief sweeps its victims in.
//!
//! The schedulers (the rt pool's `steal_job`, the sim engine's
//! `next_task`) used to hard-code one policy — pick a uniformly random
//! start and walk the worker ring. This module makes the policy
//! pluggable behind [`VictimSelector`] while keeping the old behaviour
//! available, unchanged to the bit, as [`UniformRandom`].
//!
//! All selectors produce a *full* sweep order over every other worker:
//! whatever the bias, a thief that keeps failing eventually probes
//! everyone, so work can never hide from a starving thief behind a
//! locality preference.

use rand::rngs::SmallRng;
use rand::Rng;

/// Default geometric decay of [`DistanceWeighted`]: a victim at steal
/// distance `d` carries weight `DECAY^-d`, so a domain sibling
/// (distance 1) is 4× likelier to be probed first than a same-package
/// victim (distance 2) and 16× likelier than a cross-package one.
pub const DEFAULT_DECAY: f64 = 4.0;

/// A steal-order policy over a fixed set of workers.
///
/// Selectors are immutable and shared across worker threads; all
/// per-sweep randomness comes from the caller's RNG so deterministic
/// hosts (the simulator) stay deterministic.
pub trait VictimSelector: Send + Sync + std::fmt::Debug {
    /// Clear `order` and fill it with the victims thief `thief` should
    /// probe this sweep, in order, excluding `thief` itself. Called only
    /// when there are at least two workers.
    fn sweep(&self, thief: usize, rng: &mut SmallRng, order: &mut Vec<usize>);

    /// Short policy label for reports and tables.
    fn name(&self) -> &'static str;
}

/// Which victim-selection policy a scheduler should use — the
/// configuration-level handle the executors and the bench harness
/// thread through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Uniformly random ring sweep (the pre-topology default).
    #[default]
    UniformRandom,
    /// Ring sweep by ascending steal distance.
    NearestFirst,
    /// Probabilistic sweep, victims drawn ∝ `DECAY^-distance`.
    DistanceWeighted,
}

impl VictimPolicy {
    /// All policies, in ablation-table order.
    #[must_use]
    pub fn all() -> [VictimPolicy; 3] {
        [
            VictimPolicy::UniformRandom,
            VictimPolicy::NearestFirst,
            VictimPolicy::DistanceWeighted,
        ]
    }

    /// Stable label for tables and artifact keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VictimPolicy::UniformRandom => "uniform-random",
            VictimPolicy::NearestFirst => "nearest-first",
            VictimPolicy::DistanceWeighted => "distance-weighted",
        }
    }

    /// Parse a [`label`](Self::label) back into a policy.
    #[must_use]
    pub fn from_label(label: &str) -> Option<VictimPolicy> {
        VictimPolicy::all().into_iter().find(|p| p.label() == label)
    }

    /// Build the selector for a concrete worker layout, given the
    /// worker-to-worker distance matrix (see
    /// [`Topology::worker_distances`](crate::Topology::worker_distances)).
    ///
    /// # Panics
    ///
    /// Panics if `distances` is not square.
    #[must_use]
    pub fn selector(self, distances: &[Vec<u32>]) -> Box<dyn VictimSelector> {
        match self {
            VictimPolicy::UniformRandom => Box::new(UniformRandom::new(distances.len())),
            VictimPolicy::NearestFirst => Box::new(NearestFirst::new(distances)),
            VictimPolicy::DistanceWeighted => {
                Box::new(DistanceWeighted::new(distances, DEFAULT_DECAY))
            }
        }
    }
}

impl std::fmt::Display for VictimPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The classic policy: pick a uniformly random ring start, walk the ring
/// once, skip yourself.
///
/// Reproduces the schedulers' historical behaviour **bit for bit**: one
/// `gen_range(0..n)` per sweep and the same resulting victim order, so a
/// seeded run before and after the topology refactor produces identical
/// schedules (the `sweep --smoke` baseline artifact is the proof).
#[derive(Debug)]
pub struct UniformRandom {
    workers: usize,
}

impl UniformRandom {
    /// Selector for `workers` workers.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        UniformRandom { workers }
    }
}

impl VictimSelector for UniformRandom {
    fn sweep(&self, thief: usize, rng: &mut SmallRng, order: &mut Vec<usize>) {
        order.clear();
        let n = self.workers;
        let start = rng.gen_range(0..n);
        for i in 0..n {
            let v = (start + i) % n;
            if v != thief {
                order.push(v);
            }
        }
    }

    fn name(&self) -> &'static str {
        "uniform-random"
    }
}

/// Ring-by-distance: victims grouped into rings of equal steal distance,
/// nearest ring first; within a ring the sweep starts at a random
/// rotation (so equidistant victims still share the load uniformly).
#[derive(Debug)]
pub struct NearestFirst {
    /// `rings[thief]` = non-empty victim groups, ascending distance.
    rings: Vec<Vec<Vec<usize>>>,
}

impl NearestFirst {
    /// Selector for the given worker distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if `distances` is not square.
    #[must_use]
    pub fn new(distances: &[Vec<u32>]) -> Self {
        let n = distances.len();
        let rings = (0..n)
            .map(|t| {
                assert_eq!(distances[t].len(), n, "distance matrix must be square");
                let mut by_distance: Vec<(u32, usize)> = (0..n)
                    .filter(|&v| v != t)
                    .map(|v| (distances[t][v], v))
                    .collect();
                by_distance.sort_unstable();
                let mut rings: Vec<Vec<usize>> = Vec::new();
                let mut last = None;
                for (d, v) in by_distance {
                    if last != Some(d) {
                        rings.push(Vec::new());
                        last = Some(d);
                    }
                    rings.last_mut().expect("just pushed").push(v);
                }
                rings
            })
            .collect();
        NearestFirst { rings }
    }
}

impl VictimSelector for NearestFirst {
    fn sweep(&self, thief: usize, rng: &mut SmallRng, order: &mut Vec<usize>) {
        order.clear();
        for ring in &self.rings[thief] {
            let start = rng.gen_range(0..ring.len());
            for i in 0..ring.len() {
                order.push(ring[(start + i) % ring.len()]);
            }
        }
    }

    fn name(&self) -> &'static str {
        "nearest-first"
    }
}

/// Probabilistic distance-weighted selection, after the localized
/// work-stealing model: each sweep is a weighted draw *without
/// replacement* where a victim at distance `d` has weight `decay^-d`.
/// Near victims are probed first most of the time, yet every victim
/// keeps a nonzero chance of an early probe — the stochastic analogue of
/// the model's biased steal distribution, and unlike [`NearestFirst`] it
/// cannot synchronize thieves onto the same nearest victim.
#[derive(Debug)]
pub struct DistanceWeighted {
    /// `candidates[thief]` = (victim, weight) pairs.
    candidates: Vec<Vec<(usize, f64)>>,
    /// Total weight per thief (so a sweep starts without a scan).
    totals: Vec<f64>,
}

impl DistanceWeighted {
    /// Selector for the given worker distance matrix and geometric decay
    /// (see [`DEFAULT_DECAY`]).
    ///
    /// # Panics
    ///
    /// Panics if `distances` is not square or `decay` is not a positive
    /// finite number.
    #[must_use]
    pub fn new(distances: &[Vec<u32>], decay: f64) -> Self {
        assert!(decay.is_finite() && decay > 0.0, "decay must be positive");
        let n = distances.len();
        let candidates: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|t| {
                assert_eq!(distances[t].len(), n, "distance matrix must be square");
                (0..n)
                    .filter(|&v| v != t)
                    .map(|v| (v, decay.powi(-(distances[t][v] as i32))))
                    .collect()
            })
            .collect();
        let totals = candidates
            .iter()
            .map(|c| c.iter().map(|&(_, w)| w).sum())
            .collect();
        DistanceWeighted { candidates, totals }
    }
}

impl VictimSelector for DistanceWeighted {
    /// Weighted draw without replacement. Zero-allocation like the
    /// other selectors (the callers reuse `order` across sweeps):
    /// already-drawn victims are skipped by membership in `order`
    /// itself, an O(n³) worst case that is cheap at realistic worker
    /// counts and keeps the steal path free of malloc traffic.
    fn sweep(&self, thief: usize, rng: &mut SmallRng, order: &mut Vec<usize>) {
        order.clear();
        let candidates = &self.candidates[thief];
        let mut total = self.totals[thief];
        // Draw all but the last position; the final victim is forced.
        for _ in 1..candidates.len() {
            let mut draw = rng.gen::<f64>() * total;
            let mut picked = None;
            for &(v, w) in candidates {
                if order.contains(&v) {
                    continue;
                }
                if draw < w {
                    picked = Some((v, w));
                    break;
                }
                draw -= w;
            }
            // Float drift can push `draw` past the last unused weight;
            // fall back to the last unused candidate.
            let (v, w) = picked.unwrap_or_else(|| {
                candidates
                    .iter()
                    .rev()
                    .find(|(v, _)| !order.contains(v))
                    .copied()
                    .expect("an unused candidate remains")
            });
            order.push(v);
            total -= w;
        }
        if let Some(&(v, _)) = candidates.iter().find(|(v, _)| !order.contains(v)) {
            order.push(v);
        }
    }

    fn name(&self) -> &'static str {
        "distance-weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreId, Topology};
    use rand::SeedableRng;

    fn dense_b(workers: usize) -> Vec<Vec<u32>> {
        let topo = Topology::system_b();
        let placement: Vec<CoreId> = (0..workers).map(CoreId).collect();
        topo.worker_distances(&placement)
    }

    /// The exact loop the schedulers used before the selector existed.
    fn legacy_sweep(thief: usize, n: usize, rng: &mut SmallRng) -> Vec<usize> {
        let start = rng.gen_range(0..n);
        (0..n)
            .map(|i| (start + i) % n)
            .filter(|&v| v != thief)
            .collect()
    }

    #[test]
    fn uniform_random_matches_legacy_bit_for_bit() {
        for seed in 0..50u64 {
            let mut a = SmallRng::seed_from_u64(seed);
            let mut b = SmallRng::seed_from_u64(seed);
            let sel = UniformRandom::new(8);
            let mut order = Vec::new();
            for thief in [0usize, 3, 7] {
                sel.sweep(thief, &mut a, &mut order);
                assert_eq!(order, legacy_sweep(thief, 8, &mut b), "seed {seed}");
                // And the RNG streams stay in lockstep afterwards.
                assert_eq!(a.gen::<u64>(), b.gen::<u64>());
            }
        }
    }

    fn assert_full_permutation(order: &[usize], thief: usize, n: usize) {
        assert_eq!(order.len(), n - 1);
        let mut seen = vec![false; n];
        for &v in order {
            assert!(v != thief, "selector must not pick the thief");
            assert!(!seen[v], "victim {v} listed twice");
            seen[v] = true;
        }
    }

    #[test]
    fn every_policy_sweeps_every_victim_exactly_once() {
        let dist = dense_b(6);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut order = Vec::new();
        for policy in VictimPolicy::all() {
            let sel = policy.selector(&dist);
            for thief in 0..6 {
                for _ in 0..20 {
                    sel.sweep(thief, &mut rng, &mut order);
                    assert_full_permutation(&order, thief, 6);
                }
            }
        }
    }

    #[test]
    fn nearest_first_orders_by_distance() {
        let dist = dense_b(6);
        let sel = NearestFirst::new(&dist);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut order = Vec::new();
        for (thief, drow) in dist.iter().enumerate() {
            sel.sweep(thief, &mut rng, &mut order);
            let ds: Vec<u32> = order.iter().map(|&v| drow[v]).collect();
            assert!(ds.windows(2).all(|w| w[0] <= w[1]), "{thief}: {ds:?}");
            // The domain sibling always comes first.
            assert_eq!(ds[0], 1);
        }
    }

    #[test]
    fn distance_weighted_prefers_near_victims() {
        // System B dense, thief 0: victim 1 is the only distance-1
        // victim among 5 distance-2 ones. Uniform would put it first
        // 1/6 ≈ 17% of the time; decay-4 weighting should roughly triple
        // that.
        let dist = dense_b(6);
        let sel = DistanceWeighted::new(&dist, DEFAULT_DECAY);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut order = Vec::new();
        let mut sibling_first = 0;
        let trials = 4000;
        for _ in 0..trials {
            sel.sweep(0, &mut rng, &mut order);
            if order[0] == 1 {
                sibling_first += 1;
            }
        }
        let p = sibling_first as f64 / trials as f64;
        // weight(1)=0.25 vs 5 × weight(2)=0.0625 -> P(first = sibling) ≈ 0.44.
        assert!(p > 0.3, "sibling probed first with p = {p:.3}");
        assert!(p < 0.6, "bias should stay probabilistic, p = {p:.3}");
    }

    #[test]
    fn distance_weighted_on_flat_topology_is_unbiased() {
        let topo = Topology::flat(5);
        let placement: Vec<CoreId> = (0..5).map(CoreId).collect();
        let dist = topo.worker_distances(&placement);
        let sel = DistanceWeighted::new(&dist, DEFAULT_DECAY);
        let mut rng = SmallRng::seed_from_u64(13);
        let mut order = Vec::new();
        let mut first_counts = [0u32; 5];
        for _ in 0..4000 {
            sel.sweep(2, &mut rng, &mut order);
            first_counts[order[0]] += 1;
        }
        assert_eq!(first_counts[2], 0);
        for (v, &c) in first_counts.iter().enumerate() {
            if v != 2 {
                let p = c as f64 / 4000.0;
                assert!((p - 0.25).abs() < 0.05, "victim {v}: p = {p:.3}");
            }
        }
    }

    #[test]
    fn policy_labels_round_trip() {
        for policy in VictimPolicy::all() {
            assert_eq!(VictimPolicy::from_label(policy.label()), Some(policy));
            assert_eq!(policy.selector(&dense_b(4)).name(), policy.label());
            assert_eq!(policy.to_string(), policy.label());
        }
        assert_eq!(VictimPolicy::from_label("nope"), None);
        assert_eq!(VictimPolicy::default(), VictimPolicy::UniformRandom);
    }

    #[test]
    fn two_worker_machines_always_pick_the_other() {
        let dist = dense_b(2);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut order = Vec::new();
        for policy in VictimPolicy::all() {
            let sel = policy.selector(&dist);
            sel.sweep(0, &mut rng, &mut order);
            assert_eq!(order, vec![1]);
            sel.sweep(1, &mut rng, &mut order);
            assert_eq!(order, vec![0]);
        }
    }
}
