//! # hermes-topology
//!
//! The shared machine-topology model of the HERMES reproduction.
//!
//! Both execution layers care about *where* workers sit: the simulator
//! models the paper's two AMD testbeds (cores paired into clock domains,
//! domains grouped into packages), and the real-thread pool wants to
//! prefer *nearby* victims when it steals (PAPERS.md: *On the Efficiency
//! of Localized Work Stealing*, Suksompong, Leiserson & Schardl). Before
//! this crate existed only the simulator knew about domains; this is the
//! single model both layers now share.
//!
//! Three pieces:
//!
//! * [`Topology`] — cores grouped into clock domains, domains into
//!   packages, with an integer **steal distance** between any two cores
//!   (0 = same core, 1 = same clock domain, 2 = same package,
//!   3 = cross-package).
//! * [`VictimSelector`] — the pluggable steal-order policy, with three
//!   implementations: [`UniformRandom`] (the classic random ring sweep,
//!   bit-for-bit identical to the pre-topology schedulers under a fixed
//!   seed), [`NearestFirst`] (ring sweep by ascending distance), and
//!   [`DistanceWeighted`] (probabilistic, victims drawn with probability
//!   decaying geometrically in distance, per the localized-work-stealing
//!   model).
//! * [`discover`] — sysfs-backed discovery of the host machine's
//!   topology from `/sys/devices/system/cpu/cpu*/topology`, testable
//!   against fake roots like the runtime's cpufreq driver.
//!
//! ```
//! use hermes_topology::{CoreId, Topology};
//! let b = Topology::system_b();
//! assert_eq!(b.cores(), 8);
//! assert_eq!(b.domains(), 4);
//! assert_eq!(b.distance(CoreId(0), CoreId(1)), 1); // siblings share a domain
//! assert_eq!(b.distance(CoreId(0), CoreId(2)), 2); // same package
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod select;
mod sysfs;

pub use select::{
    DistanceWeighted, NearestFirst, UniformRandom, VictimPolicy, VictimSelector, DEFAULT_DECAY,
};
pub use sysfs::{discover, discover_with_root, TopologyError};

/// Identifier of a physical core in a machine topology.
///
/// (Previously defined by `hermes-sim`; it moved here so the runtime and
/// the simulator agree on what a core is.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The maximum value [`Topology::distance`] can return. Steal-distance
/// histograms have at most `MAX_DISTANCE + 1` buckets — hosts size them
/// to the largest distance their placement can actually produce (a
/// single-package machine tops out at distance 2), so index by the
/// histogram's own length, not by this constant.
pub const MAX_DISTANCE: u32 = 3;

/// Static description of a machine's core/domain/package structure.
///
/// * A **clock domain** is the unit of DVFS: setting the frequency of one
///   core in a domain sets its siblings' too (two cores per domain on
///   both of the paper's AMD systems).
/// * A **package** is a socket: stealing across packages crosses the
///   interconnect and is the most expensive distance class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Clock-domain id of each core, indexed by core id.
    core_domain: Vec<usize>,
    /// Package id of each clock domain, indexed by domain id.
    domain_package: Vec<usize>,
}

impl Topology {
    /// A regular topology: `cores` cores filled into domains of
    /// `cores_per_domain`, domains filled into packages of
    /// `domains_per_package` (the last domain/package may be partial).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    #[must_use]
    pub fn uniform(cores: usize, cores_per_domain: usize, domains_per_package: usize) -> Self {
        assert!(cores > 0, "a machine has at least one core");
        assert!(cores_per_domain > 0, "cores_per_domain must be positive");
        assert!(
            domains_per_package > 0,
            "domains_per_package must be positive"
        );
        let core_domain: Vec<usize> = (0..cores).map(|c| c / cores_per_domain).collect();
        let domains = cores.div_ceil(cores_per_domain);
        let domain_package = (0..domains).map(|d| d / domains_per_package).collect();
        Topology {
            core_domain,
            domain_package,
        }
    }

    /// A degenerate topology where every core is its own clock domain and
    /// all cores share one package — the neutral default for hosts that
    /// know nothing about their machine (everything is distance 2).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn flat(cores: usize) -> Self {
        Topology::uniform(cores, 1, cores)
    }

    /// Build from explicit per-core domain ids and per-domain package
    /// ids. Unlike [`uniform`](Self::uniform) this accepts inconsistent
    /// shapes, which [`validate`](Self::validate) then reports — the
    /// constructor for loaders and tests.
    #[must_use]
    pub fn from_parts(core_domain: Vec<usize>, domain_package: Vec<usize>) -> Self {
        Topology {
            core_domain,
            domain_package,
        }
    }

    /// The paper's **System A** shape: 2× 16-core AMD Opteron 6378
    /// (Piledriver) — 32 cores, 2 per clock domain, 8 domains per socket.
    #[must_use]
    pub fn system_a() -> Self {
        Topology::uniform(32, 2, 8)
    }

    /// The paper's **System B** shape: AMD FX-8150 (Bulldozer) — 8 cores,
    /// 2 per clock domain, one socket.
    #[must_use]
    pub fn system_b() -> Self {
        Topology::uniform(8, 2, 4)
    }

    /// Total physical cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.core_domain.len()
    }

    /// Number of independent clock domains.
    #[must_use]
    pub fn domains(&self) -> usize {
        self.domain_package.len()
    }

    /// Number of distinct packages (sockets). Package ids need not be
    /// dense ([`from_parts`](Self::from_parts) loaders may carry raw
    /// sysfs ids), so this counts distinct values, not `max + 1`.
    #[must_use]
    pub fn packages(&self) -> usize {
        let mut ids: Vec<usize> = self.domain_package.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The clock domain of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn domain_of(&self, core: CoreId) -> usize {
        self.core_domain[core.0]
    }

    /// The package of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn package_of(&self, core: CoreId) -> usize {
        self.domain_package[self.core_domain[core.0]]
    }

    /// All cores in clock domain `d`, ascending.
    #[must_use]
    pub fn cores_in_domain(&self, d: usize) -> Vec<CoreId> {
        (0..self.cores())
            .filter(|&c| self.core_domain[c] == d)
            .map(CoreId)
            .collect()
    }

    /// The first core of each clock domain — the placement the paper uses
    /// so no two workers share a domain ("all our experiments are
    /// performed over cores with distinct clock domains").
    #[must_use]
    pub fn distinct_domain_cores(&self) -> Vec<CoreId> {
        let mut seen = vec![false; self.domains()];
        let mut picked = Vec::with_capacity(self.domains());
        for c in 0..self.cores() {
            let d = self.core_domain[c];
            if !seen[d] {
                seen[d] = true;
                picked.push(CoreId(c));
            }
        }
        picked
    }

    /// The **steal distance** between two cores: 0 on the same core, 1
    /// within a clock domain, 2 within a package, [`MAX_DISTANCE`] across
    /// packages. The integer metric every [`VictimSelector`] and every
    /// steal-distance histogram is expressed in.
    ///
    /// # Panics
    ///
    /// Panics if either core is out of range.
    #[must_use]
    pub fn distance(&self, a: CoreId, b: CoreId) -> u32 {
        if a == b {
            return 0;
        }
        let (da, db) = (self.core_domain[a.0], self.core_domain[b.0]);
        if da == db {
            return 1;
        }
        if self.domain_package[da] == self.domain_package[db] {
            return 2;
        }
        MAX_DISTANCE
    }

    /// The worker-to-worker distance matrix induced by placing worker `i`
    /// on `placement[i]` — what the victim selectors and the telemetry
    /// histogram consume.
    ///
    /// # Panics
    ///
    /// Panics if any placed core is out of range.
    #[must_use]
    pub fn worker_distances(&self, placement: &[CoreId]) -> Vec<Vec<u32>> {
        placement
            .iter()
            .map(|&a| placement.iter().map(|&b| self.distance(a, b)).collect())
            .collect()
    }

    /// One-line shape summary (`"8 cores / 4 domains / 1 package"`).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} cores / {} domains / {} package{}",
            self.cores(),
            self.domains(),
            self.packages(),
            if self.packages() == 1 { "" } else { "s" }
        )
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: no cores, a core
    /// pointing at a nonexistent domain, or an empty domain table.
    pub fn validate(&self) -> Result<(), String> {
        if self.core_domain.is_empty() {
            return Err("machine must have at least one core".into());
        }
        if self.domain_package.is_empty() {
            return Err("machine must have at least one clock domain".into());
        }
        for (c, &d) in self.core_domain.iter().enumerate() {
            if d >= self.domain_package.len() {
                return Err(format!(
                    "core {c} is in domain {d}, but only {} domains exist",
                    self.domain_package.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_shapes_match_paper() {
        let a = Topology::system_a();
        assert_eq!(a.cores(), 32);
        assert_eq!(a.domains(), 16);
        assert_eq!(a.packages(), 2);
        assert_eq!(a.distinct_domain_cores().len(), 16);
        a.validate().unwrap();
        let b = Topology::system_b();
        assert_eq!(b.cores(), 8);
        assert_eq!(b.domains(), 4);
        assert_eq!(b.packages(), 1);
        b.validate().unwrap();
        assert_eq!(b.summary(), "8 cores / 4 domains / 1 package");
    }

    #[test]
    fn distance_metric_classes() {
        let a = Topology::system_a();
        assert_eq!(a.distance(CoreId(0), CoreId(0)), 0);
        assert_eq!(a.distance(CoreId(0), CoreId(1)), 1, "domain siblings");
        assert_eq!(a.distance(CoreId(0), CoreId(2)), 2, "same package");
        assert_eq!(a.distance(CoreId(0), CoreId(16)), 3, "cross package");
        // Symmetry.
        for x in [0usize, 1, 5, 17, 31] {
            for y in [0usize, 2, 16, 30] {
                assert_eq!(
                    a.distance(CoreId(x), CoreId(y)),
                    a.distance(CoreId(y), CoreId(x))
                );
            }
        }
    }

    #[test]
    fn flat_topology_is_all_distance_two() {
        let t = Topology::flat(4);
        assert_eq!(t.domains(), 4);
        assert_eq!(t.packages(), 1);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 0 } else { 2 };
                assert_eq!(t.distance(CoreId(i), CoreId(j)), expect);
            }
        }
    }

    #[test]
    fn domain_and_package_lookup() {
        let b = Topology::system_b();
        assert_eq!(b.domain_of(CoreId(0)), 0);
        assert_eq!(b.domain_of(CoreId(1)), 0);
        assert_eq!(b.domain_of(CoreId(2)), 1);
        assert_eq!(b.package_of(CoreId(7)), 0);
        assert_eq!(b.cores_in_domain(1), vec![CoreId(2), CoreId(3)]);
        let a = Topology::system_a();
        assert_eq!(a.package_of(CoreId(15)), 0);
        assert_eq!(a.package_of(CoreId(16)), 1);
    }

    #[test]
    fn distinct_domain_cores_share_no_domain() {
        let a = Topology::system_a();
        let picked = a.distinct_domain_cores();
        let mut domains: Vec<_> = picked.iter().map(|&c| a.domain_of(c)).collect();
        domains.dedup();
        assert_eq!(domains.len(), picked.len());
    }

    #[test]
    fn worker_distance_matrix_follows_placement() {
        let b = Topology::system_b();
        // Distinct-domain placement: no pair shares a domain.
        let distinct = b.distinct_domain_cores();
        let m = b.worker_distances(&distinct[..4]);
        for (i, row) in m.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, if i == j { 0 } else { 2 });
            }
        }
        // Dense placement: adjacent pairs are domain siblings.
        let dense: Vec<CoreId> = (0..4).map(CoreId).collect();
        let m = b.worker_distances(&dense);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[0][2], 2);
        assert_eq!(m[2][3], 1);
    }

    #[test]
    fn validate_catches_bad_shapes() {
        assert!(Topology::from_parts(vec![], vec![]).validate().is_err());
        assert!(Topology::from_parts(vec![0], vec![]).validate().is_err());
        assert!(Topology::from_parts(vec![0, 5], vec![0])
            .validate()
            .is_err());
        Topology::from_parts(vec![0, 0, 1], vec![0, 0])
            .validate()
            .unwrap();
    }

    #[test]
    fn sparse_package_ids_count_distinct() {
        // Raw (non-dense) package ids, as a loader might carry them.
        let t = Topology::from_parts(vec![0, 0, 1, 1], vec![2, 7]);
        t.validate().unwrap();
        assert_eq!(t.packages(), 2);
        assert_eq!(t.distance(CoreId(0), CoreId(2)), 3, "different packages");
    }

    #[test]
    fn partial_trailing_groups_are_allowed() {
        // 5 cores, 2 per domain -> 3 domains, the last with one core.
        let t = Topology::uniform(5, 2, 2);
        assert_eq!(t.domains(), 3);
        assert_eq!(t.packages(), 2);
        assert_eq!(t.cores_in_domain(2), vec![CoreId(4)]);
        t.validate().unwrap();
    }
}
