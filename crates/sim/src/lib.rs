//! # hermes-sim
//!
//! A deterministic discrete-event simulator of a multicore machine with
//! per-domain DVFS, a CMOS power model, a 100 Hz supply-rail power meter,
//! and a Cilk-style continuation-stealing work-stealing scheduler driven
//! by the HERMES tempo controller from `hermes-core`.
//!
//! This is the measurement substrate of the reproduction: the paper runs
//! on two AMD machines with physical current meters; we run the same
//! scheduler logic over virtual replicas of those machines
//! ([`MachineSpec::system_a`], [`MachineSpec::system_b`]) so every figure
//! of the evaluation can be regenerated deterministically.
//!
//! ## Quickstart
//!
//! ```
//! use hermes_core::{Frequency, Policy, TempoConfig};
//! use hermes_sim::{DagSpec, MachineSpec, SimConfig};
//!
//! // An imbalanced parallel loop.
//! let dag = DagSpec::parallel_for(128, 10_000, |i| if i % 8 == 0 { 2_000_000 } else { 100_000 });
//!
//! // HERMES on the paper's System B with 2-frequency control 3.6/2.7 GHz.
//! let tempo = TempoConfig::builder()
//!     .policy(Policy::Unified)
//!     .frequencies(vec![Frequency::from_mhz(3600), Frequency::from_mhz(2700)])
//!     .workers(4)
//!     .build();
//! let report = hermes_sim::run(&dag, &SimConfig::new(MachineSpec::system_b(), tempo))?;
//! assert!(report.energy_j > 0.0);
//! # Ok::<(), hermes_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod dag;
mod engine;
mod machine;
mod meter;
mod power;
mod time;

pub use config::{Mapping, SchedStats, SimConfig, SimReport, WorkerPlacement};
pub use dag::{Action, DagBuilder, DagSpec, NodeId};
pub use engine::{run, SimError};
pub use machine::MachineSpec;
// The topology model is shared with the real-thread runtime; re-export
// the pieces sim configurations are written in terms of.
pub use hermes_topology::{CoreId, Topology, VictimPolicy};
pub use meter::{MeterSample, PowerMeter, SUPPLY_VOLTS};
pub use power::PowerModel;
pub use time::SimTime;
