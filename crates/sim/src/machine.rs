//! Simulated machine description: shared topology plus frequency tables
//! and the power model.

use crate::PowerModel;
use hermes_core::Frequency;
use hermes_topology::{CoreId, Topology};

/// Static description of a simulated machine.
///
/// Mirrors the paper's two testbeds: a [`Topology`] (cores grouped into
/// clock domains — on Piledriver/Bulldozer every two cores share one
/// domain, so setting the frequency of one core sets its sibling's too —
/// and domains grouped into packages), a discrete table of supported
/// frequencies, a DVFS transition latency in the tens of microseconds,
/// and a power model for the meter.
///
/// The topology is the *shared* model from `hermes-topology`: the same
/// structure the real-thread pool's locality-aware victim selection
/// consumes, so sim and rt agree on what "near" means.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name, printed by the bench harness headers.
    pub name: String,
    /// Core / clock-domain / package structure.
    pub topology: Topology,
    /// Supported frequencies, fastest first.
    pub freq_table: Vec<Frequency>,
    /// Time for a domain to settle on a new operating point; the core
    /// stalls for this long when its frequency is changed (paper §3.4:
    /// "DVFS switching time is usually in the tens of microseconds").
    pub dvfs_latency_ns: u64,
    /// The power/energy model.
    pub power: PowerModel,
}

impl MachineSpec {
    /// The paper's **System A**: 2× 16-core AMD Opteron 6378 (Piledriver),
    /// 32 cores in 16 independent clock domains over two sockets,
    /// frequencies 1.4/1.6/1.9/2.2/2.4 GHz.
    #[must_use]
    pub fn system_a() -> Self {
        MachineSpec {
            name: "System A (2x AMD Opteron 6378, Piledriver)".to_owned(),
            topology: Topology::system_a(),
            freq_table: [2400u64, 2200, 1900, 1600, 1400]
                .iter()
                .map(|&m| Frequency::from_mhz(m))
                .collect(),
            dvfs_latency_ns: 50_000,
            power: PowerModel {
                volt_min: 0.90,
                volt_max: 1.25,
                freq_min: Frequency::from_mhz(1400),
                freq_max: Frequency::from_mhz(2400),
                // Calibrated so a busy core at 2.4 GHz draws ≈ 7 W and the
                // 32-core module lands near the Opteron 6378's 115 W TDP
                // envelope under load.
                capacitance: 1.45,
                static_per_core: 1.1,
                idle_activity: 0.12,
                package_static: 14.0,
            },
        }
    }

    /// The paper's **System B**: 8-core AMD FX-8150 (Bulldozer), 4 clock
    /// domains in one socket, frequencies 1.4/2.1/2.7/3.3/3.6 GHz.
    #[must_use]
    pub fn system_b() -> Self {
        MachineSpec {
            name: "System B (AMD FX-8150, Bulldozer)".to_owned(),
            topology: Topology::system_b(),
            freq_table: [3600u64, 3300, 2700, 2100, 1400]
                .iter()
                .map(|&m| Frequency::from_mhz(m))
                .collect(),
            dvfs_latency_ns: 50_000,
            power: PowerModel {
                volt_min: 0.90,
                volt_max: 1.35,
                // FX-8150: 125 W TDP over 8 cores.
                freq_min: Frequency::from_mhz(1400),
                freq_max: Frequency::from_mhz(3600),
                capacitance: 1.75,
                static_per_core: 1.6,
                idle_activity: 0.12,
                package_static: 9.0,
            },
        }
    }

    /// Total physical cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.topology.cores()
    }

    /// Number of independent clock domains.
    #[must_use]
    pub fn domains(&self) -> usize {
        self.topology.domains()
    }

    /// The clock domain of `core`.
    #[must_use]
    pub fn domain_of(&self, core: CoreId) -> usize {
        self.topology.domain_of(core)
    }

    /// All cores in clock domain `d`.
    #[must_use]
    pub fn cores_in_domain(&self, d: usize) -> Vec<CoreId> {
        self.topology.cores_in_domain(d)
    }

    /// The first core of each clock domain — the placement the paper uses
    /// so that no two workers share a domain ("to avoid the undesirable
    /// DVFS interference, all our experiments are performed over cores
    /// with distinct clock domains").
    #[must_use]
    pub fn distinct_domain_cores(&self) -> Vec<CoreId> {
        self.topology.distinct_domain_cores()
    }

    /// Fastest supported frequency.
    #[must_use]
    pub fn fastest(&self) -> Frequency {
        self.freq_table[0]
    }

    /// Whether `f` is in the supported table.
    #[must_use]
    pub fn supports(&self, f: Frequency) -> bool {
        self.freq_table.contains(&f)
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        if self.freq_table.is_empty() {
            return Err("frequency table must not be empty".into());
        }
        if !self.freq_table.windows(2).all(|w| w[0] > w[1]) {
            return Err("frequency table must be strictly descending".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_a_matches_paper() {
        let a = MachineSpec::system_a();
        assert_eq!(a.cores(), 32);
        assert_eq!(a.domains(), 16);
        assert_eq!(a.topology.packages(), 2, "two Opteron sockets");
        assert_eq!(a.freq_table.len(), 5);
        assert_eq!(a.fastest(), Frequency::from_mhz(2400));
        assert!(a.supports(Frequency::from_mhz(1900)));
        assert!(!a.supports(Frequency::from_mhz(2000)));
        a.validate().unwrap();
        // 16 workers max on distinct domains, as in Fig. 6.
        assert_eq!(a.distinct_domain_cores().len(), 16);
    }

    #[test]
    fn system_b_matches_paper() {
        let b = MachineSpec::system_b();
        assert_eq!(b.cores(), 8);
        assert_eq!(b.domains(), 4);
        assert_eq!(b.topology.packages(), 1, "one FX-8150 socket");
        assert_eq!(b.fastest(), Frequency::from_mhz(3600));
        assert_eq!(b.distinct_domain_cores().len(), 4);
        b.validate().unwrap();
    }

    #[test]
    fn domain_mapping_pairs_adjacent_cores() {
        let a = MachineSpec::system_a();
        assert_eq!(a.domain_of(CoreId(0)), 0);
        assert_eq!(a.domain_of(CoreId(1)), 0);
        assert_eq!(a.domain_of(CoreId(2)), 1);
        assert_eq!(a.cores_in_domain(1), vec![CoreId(2), CoreId(3)]);
    }

    #[test]
    fn distinct_domain_cores_share_no_domain() {
        let a = MachineSpec::system_a();
        let picked = a.distinct_domain_cores();
        let mut domains: Vec<_> = picked.iter().map(|&c| a.domain_of(c)).collect();
        domains.dedup();
        assert_eq!(domains.len(), picked.len());
    }

    #[test]
    fn validation_catches_bad_tables() {
        let mut m = MachineSpec::system_b();
        m.freq_table = vec![Frequency::from_mhz(1000), Frequency::from_mhz(2000)];
        assert!(m.validate().is_err());
        m.freq_table.clear();
        assert!(m.validate().is_err());
        let mut m2 = MachineSpec::system_a();
        m2.topology = hermes_topology::Topology::from_parts(vec![], vec![]);
        assert!(m2.validate().is_err());
    }

    #[test]
    fn tdp_envelopes_are_plausible() {
        // Keep the calibration honest: full-load power within a sane band
        // around the real parts' TDP.
        let a = MachineSpec::system_a();
        let full_a: f64 = (0..a.cores())
            .map(|_| a.power.busy_power(a.fastest()))
            .sum::<f64>()
            + a.power.package_static;
        assert!(
            (150.0..320.0).contains(&full_a),
            "System A full load {full_a:.0} W (2 sockets x 115 W TDP ballpark)"
        );
        let b = MachineSpec::system_b();
        let full_b: f64 = (0..b.cores())
            .map(|_| b.power.busy_power(b.fastest()))
            .sum::<f64>()
            + b.power.package_static;
        assert!(
            (80.0..160.0).contains(&full_b),
            "System B full load {full_b:.0} W (125 W TDP ballpark)"
        );
    }
}
