//! The discrete-event engine: a Cilk-style continuation-stealing
//! scheduler over virtual cores with per-domain DVFS and a power meter.

use crate::{
    Action, CoreId, DagSpec, Mapping, NodeId, PowerMeter, SchedStats, SimConfig, SimReport, SimTime,
};
use hermes_core::{Frequency, FrequencyActuator, TempoChange, TempoController, WorkerId};
use hermes_telemetry::{Event, PowerKind, SpanPhase, StealOutcome, TelemetrySink};
use hermes_topology::VictimSelector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Error returned by [`run`] for inconsistent configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The machine spec failed validation.
    BadMachine(String),
    /// The placement cannot seat every worker: more workers than clock
    /// domains under the paper's distinct-domain placement (at most one
    /// worker per domain to avoid DVFS interference), or more workers
    /// than cores under dense placement.
    TooManyWorkers {
        /// Requested workers.
        workers: usize,
        /// Available seats (clock domains or cores, by placement).
        domains: usize,
    },
    /// A tempo frequency is not in the machine's table.
    UnsupportedFrequency(Frequency),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadMachine(m) => write!(f, "invalid machine: {m}"),
            SimError::TooManyWorkers { workers, domains } => write!(
                f,
                "{workers} workers exceed the {domains} independent clock domains"
            ),
            SimError::UnsupportedFrequency(fr) => {
                write!(f, "frequency {fr} is not supported by the machine")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Run `spec` to completion under `config`.
///
/// Deterministic: the same `(spec, config)` — including the seed — always
/// produces an identical [`SimReport`].
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is inconsistent (bad machine,
/// more workers than clock domains, or tempo frequencies the machine does
/// not support).
pub fn run(spec: &DagSpec, config: &SimConfig) -> Result<SimReport, SimError> {
    Engine::new(spec, config)?.run()
}

// ---------------------------------------------------------------------
// Events

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// A worker's current work segment completes.
    WorkDone { w: usize, gen: u64 },
    /// A yielded worker wakes to retry pop/steal.
    Wake { w: usize, gen: u64 },
    /// A clock domain finishes settling on a new operating point.
    FreqSettle {
        domain: usize,
        freq: Frequency,
        gen: u64,
    },
    /// Meter sampling tick.
    Meter,
    /// Online-profiler tick.
    Profile,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    at: SimTime,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------
// Engine state

#[derive(Debug)]
struct Frame {
    node: NodeId,
    pc: usize,
    pending: usize,
    parent: Option<usize>,
    waiting: bool,
}

#[derive(Debug)]
struct Running {
    frame: usize,
    cycles_left: f64,
    last_update: SimTime,
    /// Cycles only accrue after this instant (DVFS/steal/migration
    /// stalls).
    stalled_until: SimTime,
}

#[derive(Debug)]
struct WorkerState {
    core: usize,
    deque: VecDeque<usize>,
    current: Option<Running>,
    gen: u64,
    consecutive_fails: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CoreActivity {
    /// No worker assigned: power-gated.
    Parked,
    /// Worker assigned but waiting for work.
    Idle,
    /// Executing (or stalled mid-execution).
    Busy,
}

#[derive(Debug)]
struct CoreState {
    freq: Frequency,
    activity: CoreActivity,
    energy_j: f64,
    last_change: SimTime,
    /// Busy seconds per frequency-table slot.
    busy_at: Vec<f64>,
}

/// How a completed frame handed control back to the scheduler loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameOutcome {
    /// The worker adopted the (now runnable) parent frame.
    Adopted,
    /// The worker has no frame; it must find new work.
    Detached,
    /// The root frame completed; the simulation is over.
    RootDone,
}

/// Buffers the controller's actuations so the engine can apply them with
/// full access to its own state.
#[derive(Debug, Default)]
struct PendingChanges(Vec<TempoChange>);

impl FrequencyActuator for PendingChanges {
    fn apply(&mut self, change: TempoChange) {
        self.0.push(change);
    }
}

struct Engine<'a> {
    spec: &'a DagSpec,
    cfg: &'a SimConfig,
    now: SimTime,
    events: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    frames: Vec<Frame>,
    workers: Vec<WorkerState>,
    cores: Vec<CoreState>,
    /// Which worker occupies each core, if any.
    occupant: Vec<Option<usize>>,
    /// In-flight DVFS request per clock domain (settling).
    domain_pending: Vec<Option<Frequency>>,
    /// Supersession counter per clock domain.
    domain_gen: Vec<u64>,
    ctl: TempoController,
    pending: PendingChanges,
    meter: PowerMeter,
    rng: SmallRng,
    stats: SchedStats,
    /// Victim-selection policy instantiated for this run's placement.
    selector: Box<dyn VictimSelector>,
    /// Scratch buffer for steal-sweep victim orders (reused across
    /// sweeps so the hot loop does not allocate).
    victim_order: Vec<usize>,
    done: bool,
    /// The configured telemetry sink, with null sinks already filtered
    /// out so event paths stay dormant unless someone is listening.
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl<'a> Engine<'a> {
    fn new(spec: &'a DagSpec, cfg: &'a SimConfig) -> Result<Self, SimError> {
        cfg.machine.validate().map_err(SimError::BadMachine)?;
        let workers = cfg.tempo.num_workers;
        let worker_cores = cfg.worker_cores()?;
        let selector = cfg
            .victim
            .selector(&cfg.machine.topology.worker_distances(&worker_cores));
        for &f in cfg.tempo.freq_map.frequencies() {
            if !cfg.machine.supports(f) {
                return Err(SimError::UnsupportedFrequency(f));
            }
        }

        let sink = cfg.telemetry.clone().filter(|s| !s.is_null());
        let mut ctl = TempoController::new(cfg.tempo.clone());
        let mut meter = PowerMeter::new(cfg.meter_hz);
        if let Some(sink) = &sink {
            ctl.set_tracing(true);
            meter.attach_sink(Arc::clone(sink));
        }

        let fastest = cfg.tempo.freq_map.fastest();
        let mut occupant = vec![None; cfg.machine.cores()];
        let worker_states: Vec<WorkerState> = (0..workers)
            .map(|w| {
                let core = worker_cores[w].0;
                occupant[core] = Some(w);
                WorkerState {
                    core,
                    deque: VecDeque::new(),
                    current: None,
                    gen: 0,
                    consecutive_fails: 0,
                }
            })
            .collect();
        let cores = (0..cfg.machine.cores())
            .map(|c| CoreState {
                freq: fastest,
                activity: if occupant[c].is_some() {
                    CoreActivity::Idle
                } else {
                    CoreActivity::Parked
                },
                energy_j: 0.0,
                last_change: SimTime::ZERO,
                busy_at: vec![0.0; cfg.machine.freq_table.len()],
            })
            .collect();

        Ok(Engine {
            spec,
            cfg,
            now: SimTime::ZERO,
            events: BinaryHeap::new(),
            seq: 0,
            frames: Vec::with_capacity(spec.len()),
            workers: worker_states,
            cores,
            occupant,
            domain_pending: vec![None; cfg.machine.domains()],
            domain_gen: vec![0; cfg.machine.domains()],
            ctl,
            pending: PendingChanges::default(),
            meter,
            rng: SmallRng::seed_from_u64(cfg.seed),
            stats: SchedStats::default(),
            selector,
            victim_order: Vec::new(),
            done: false,
            sink,
        })
    }

    fn run(mut self) -> Result<SimReport, SimError> {
        // Bootstrap: every worker at the fastest tempo (paper §3.2), the
        // root frame on worker 0, everyone else hunting for work.
        self.ctl.initialize(&mut self.pending);
        self.apply_pending();
        let root = self.new_frame(self.spec.root(), None);
        self.workers[0].current = Some(Running {
            frame: root,
            cycles_left: 0.0,
            last_update: SimTime::ZERO,
            stalled_until: SimTime::ZERO,
        });
        self.stats.tasks_executed += 1;
        self.record_span(0, root, true, SpanPhase::Poll);
        self.run_frame(0);
        for w in 1..self.workers.len() {
            let gen = self.workers[w].gen;
            self.push_event(SimTime::ZERO, EvKind::Wake { w, gen });
        }
        self.push_event(SimTime::ZERO, EvKind::Meter);
        let profile_period = SimTime::from_ns(self.ctl.profiler_period_ns());
        self.push_event(profile_period, EvKind::Profile);

        while let Some(Reverse(ev)) = self.events.pop() {
            if self.done {
                break;
            }
            debug_assert!(ev.at >= self.now, "time must be monotone");
            self.now = ev.at;
            match ev.kind {
                EvKind::WorkDone { w, gen } => {
                    if self.workers[w].gen == gen {
                        self.on_work_done(w);
                    }
                }
                EvKind::Wake { w, gen } => {
                    if self.workers[w].gen == gen && self.workers[w].current.is_none() {
                        self.next_task(w);
                    }
                }
                EvKind::FreqSettle { domain, freq, gen } => {
                    self.on_freq_settle(domain, freq, gen);
                }
                EvKind::Meter => {
                    let watts = self.rail_power();
                    self.meter.sample(self.now, watts);
                    let period = self.meter.period();
                    self.push_event(self.now + period, EvKind::Meter);
                }
                EvKind::Profile => {
                    for w in 0..self.workers.len() {
                        self.ctl.record_deque_sample(self.workers[w].deque.len());
                    }
                    self.ctl.recompute_thresholds();
                    let period = SimTime::from_ns(self.ctl.profiler_period_ns());
                    self.push_event(self.now + period, EvKind::Profile);
                }
            }
        }

        // Finalize energy integration at the instant the root completed.
        for c in 0..self.cores.len() {
            self.integrate_core(c);
        }
        // One final energy sample per worker: the energy of the core it
        // ends on (under dynamic mapping a worker may have visited other
        // cores; the per-worker attribution is then approximate, while
        // the report's `energy_j` total stays exact).
        if let Some(sink) = self.sink.as_deref() {
            let at_ns = self.now.ns();
            for w in 0..self.workers.len() {
                let joules = self.cores[self.workers[w].core].energy_j;
                // Split rather than clamp at the 60-bit sample payload,
                // so the folded total survives for the closure check.
                for ev in Event::energy_samples_from_joules(joules) {
                    sink.record(w, at_ns, ev);
                }
            }
        }
        let energy_j: f64 = self.cores.iter().map(|c| c.energy_j).sum::<f64>()
            + self.cfg.machine.power.package_static * self.now.seconds();
        let busy_seconds_at = self
            .cfg
            .machine
            .freq_table
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, self.cores.iter().map(|c| c.busy_at[i]).sum()))
            .collect();
        let mut sched = self.stats.clone();
        sched.busy_seconds_at = busy_seconds_at;

        Ok(SimReport {
            elapsed: self.now,
            energy_j,
            metered_energy_j: self.meter.energy_joules(),
            mean_power_w: if self.now.ns() == 0 {
                0.0
            } else {
                energy_j / self.now.seconds()
            },
            power_series: self.meter.series(),
            tempo: self.ctl.stats(),
            sched,
        })
    }

    // -- event plumbing -------------------------------------------------

    fn record_steal(&self, thief: usize, victim: usize, outcome: StealOutcome) {
        if let Some(sink) = self.sink.as_deref() {
            sink.record(
                thief,
                self.now.ns(),
                Event::StealAttempt {
                    victim: victim as u32,
                    outcome,
                },
            );
        }
    }

    /// Record one causal-span edge for frame `fidx` on worker `w`'s
    /// stream at virtual instant `at_ns`. Span ids are `fidx + 1` (0
    /// means untraced by convention); pure recording, so traced and
    /// untraced runs schedule identically and the span timeline is a
    /// deterministic function of the seed.
    fn record_span_at(&self, w: usize, at_ns: u64, fidx: usize, begin: bool, phase: SpanPhase) {
        if let Some(sink) = self.sink.as_deref() {
            let id = fidx as u64 + 1;
            let event = if begin {
                Event::SpanBegin { id, phase }
            } else {
                Event::SpanEnd { id, phase }
            };
            sink.record(w, at_ns, event);
        }
    }

    /// [`record_span_at`](Self::record_span_at) at the current instant.
    fn record_span(&self, w: usize, fidx: usize, begin: bool, phase: SpanPhase) {
        self.record_span_at(w, self.now.ns(), fidx, begin, phase);
    }

    fn push_event(&mut self, at: SimTime, kind: EvKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            at,
            seq: self.seq,
            kind,
        }));
    }

    // -- power accounting -----------------------------------------------

    fn core_power(&self, c: usize) -> f64 {
        let core = &self.cores[c];
        match core.activity {
            CoreActivity::Parked => 0.0,
            CoreActivity::Idle => self.cfg.machine.power.idle_power(core.freq),
            CoreActivity::Busy => self.cfg.machine.power.busy_power(core.freq),
        }
    }

    fn rail_power(&self) -> f64 {
        (0..self.cores.len())
            .map(|c| self.core_power(c))
            .sum::<f64>()
            + self.cfg.machine.power.package_static
    }

    /// Accrue energy for core `c` up to `now` at its current state, and
    /// emit the closed constant-power segment as an attributable
    /// [`Event::PowerInterval`] on the occupant worker's stream (idle
    /// hunting maps to the spin watts-class; parked cores have no
    /// occupant and draw nothing, so nothing is emitted for them).
    /// Recording is pure — traced and untraced runs stay identical.
    fn integrate_core(&mut self, c: usize) {
        let p = self.core_power(c);
        let core = &mut self.cores[c];
        let dt = self.now.since(core.last_change).seconds();
        let dt_ns = self.now.since(core.last_change).ns();
        core.energy_j += p * dt;
        let kind = match core.activity {
            CoreActivity::Parked => PowerKind::Parked,
            CoreActivity::Idle => PowerKind::Spin,
            CoreActivity::Busy => PowerKind::Busy,
        };
        if core.activity == CoreActivity::Busy {
            if let Some(slot) = self
                .cfg
                .machine
                .freq_table
                .iter()
                .position(|&f| f == core.freq)
            {
                core.busy_at[slot] += dt;
            }
        }
        core.last_change = self.now;
        if dt_ns > 0 {
            if let (Some(w), Some(sink)) = (self.occupant[c], self.sink.as_deref()) {
                sink.record(
                    w,
                    self.now.ns(),
                    Event::PowerInterval {
                        kind,
                        duration_ns: dt_ns,
                        milliwatts: (p * 1e3).round() as u64,
                    },
                );
            }
        }
    }

    fn set_core_activity(&mut self, c: usize, activity: CoreActivity) {
        if self.cores[c].activity != activity {
            self.integrate_core(c);
            self.cores[c].activity = activity;
        }
    }

    fn set_core_freq(&mut self, c: usize, freq: Frequency) {
        if self.cores[c].freq != freq {
            self.integrate_core(c);
            self.cores[c].freq = freq;
        }
    }

    // -- DVFS actuation ---------------------------------------------------

    /// Apply tempo changes buffered during controller hooks by
    /// retargeting the worker's whole clock domain, then forward the
    /// hook's telemetry (actuations and tempo transitions). Called after
    /// every controller hook, so the trace buffer never grows.
    fn apply_pending(&mut self) {
        let changes = std::mem::take(&mut self.pending.0);
        for change in changes {
            let w = change.worker.0;
            if let Some(sink) = self.sink.as_deref() {
                sink.record(
                    w,
                    self.now.ns(),
                    Event::DvfsActuation {
                        freq_khz: change.frequency.khz(),
                    },
                );
            }
            let core = self.workers[w].core;
            self.set_domain_freq(core, change.frequency);
        }
        if let Some(sink) = self.sink.as_deref() {
            let at_ns = self.now.ns();
            self.ctl
                .drain_transitions(|t| sink.record_transition(at_ns, t));
        }
    }

    /// Request a new operating point for `core`'s clock domain.
    ///
    /// DVFS transitions are modelled as a *settling delay* (paper §3.4:
    /// "tens of microseconds"): the domain keeps executing at its old
    /// frequency and flips to the new one `dvfs_latency_ns` later. A newer
    /// request supersedes an in-flight one (generation counter).
    fn set_domain_freq(&mut self, core: usize, freq: Frequency) {
        let domain = self.cfg.machine.domain_of(CoreId(core));
        let settled = self.cores[core].freq;
        let pending = self.domain_pending[domain];
        // Distinct tempo levels can map to the same frequency; skip when
        // the domain is already there (or already heading there).
        match pending {
            Some(p) if p == freq => return,
            None if settled == freq => return,
            _ => {}
        }
        self.domain_gen[domain] += 1;
        self.domain_pending[domain] = Some(freq);
        let gen = self.domain_gen[domain];
        let at = self.now + SimTime::from_ns(self.cfg.machine.dvfs_latency_ns);
        self.push_event(at, EvKind::FreqSettle { domain, freq, gen });
    }

    /// The settling delay elapsed: flip the domain to its new frequency
    /// and retime any work in flight on it.
    fn on_freq_settle(&mut self, domain: usize, freq: Frequency, gen: u64) {
        if self.domain_gen[domain] != gen {
            return; // superseded by a newer request
        }
        self.domain_pending[domain] = None;
        if self.cores[self.cfg.machine.cores_in_domain(domain)[0].0].freq == freq {
            return;
        }
        self.stats.dvfs_transitions += 1;
        for c in self.cfg.machine.cores_in_domain(domain) {
            // Credit progress at the old frequency before switching.
            if let Some(w) = self.occupant[c.0] {
                if self.workers[w].current.is_some() {
                    self.advance_progress(w);
                }
            }
            self.set_core_freq(c.0, freq);
            if let Some(w) = self.occupant[c.0] {
                if self.workers[w].current.is_some() {
                    self.reschedule_completion(w);
                }
            }
        }
    }

    /// Effective execution rate (cycles/second) at `freq`, accounting for
    /// the workload's memory-bound fraction: memory time is pinned to the
    /// machine's top frequency, so the rate degrades sub-linearly.
    fn effective_rate(&self, freq: Frequency) -> f64 {
        let beta = self.spec.mem_fraction();
        let f = freq.khz() as f64 * 1e3;
        let f_top = self.cfg.machine.freq_table[0].khz() as f64 * 1e3;
        1.0 / ((1.0 - beta) / f + beta / f_top)
    }

    /// Credit cycles executed since the last progress update.
    fn advance_progress(&mut self, w: usize) {
        let rate = self.effective_rate(self.cores[self.workers[w].core].freq);
        if let Some(r) = &mut self.workers[w].current {
            let start = r.last_update.max(r.stalled_until);
            if self.now > start {
                let dt = self.now.since(start).seconds();
                let consumed = dt * rate;
                r.cycles_left = (r.cycles_left - consumed).max(0.0);
            }
            r.last_update = self.now;
        }
    }

    /// Invalidate the outstanding completion event and schedule a fresh
    /// one from the current remaining cycles and frequency.
    fn reschedule_completion(&mut self, w: usize) {
        let rate = self.effective_rate(self.cores[self.workers[w].core].freq);
        self.workers[w].gen += 1;
        let gen = self.workers[w].gen;
        let r = self.workers[w]
            .current
            .as_ref()
            .expect("rescheduling requires a running task");
        let start = self.now.max(r.stalled_until);
        let run_ns = (r.cycles_left / rate * 1e9).ceil() as u64;
        let at = start + SimTime::from_ns(run_ns);
        self.push_event(at, EvKind::WorkDone { w, gen });
    }

    // -- frame execution --------------------------------------------------

    fn new_frame(&mut self, node: NodeId, parent: Option<usize>) -> usize {
        self.frames.push(Frame {
            node,
            pc: 0,
            pending: 0,
            parent,
            waiting: false,
        });
        self.frames.len() - 1
    }

    /// Drive the worker's current frame until a work segment starts, the
    /// frame suspends at a sync, or it completes.
    fn run_frame(&mut self, w: usize) {
        loop {
            let Some(running) = &self.workers[w].current else {
                return;
            };
            let fidx = running.frame;
            let pc = self.frames[fidx].pc;
            let node = self.frames[fidx].node;
            let actions = self.spec.actions(node);
            if pc >= actions.len() {
                // Implicit sync before return (fully strict).
                if self.frames[fidx].pending > 0 {
                    self.frames[fidx].waiting = true;
                    self.record_span(w, fidx, false, SpanPhase::Poll);
                    self.workers[w].current = None;
                    self.next_task(w);
                    return;
                }
                match self.complete_frame(w, fidx) {
                    FrameOutcome::Adopted => continue,
                    FrameOutcome::Detached => {
                        self.next_task(w);
                        return;
                    }
                    FrameOutcome::RootDone => return,
                }
            }
            match actions[pc] {
                Action::Work(cycles) => {
                    if cycles == 0 {
                        self.frames[fidx].pc += 1;
                        continue;
                    }
                    self.frames[fidx].pc += 1;
                    self.stats.cycles += cycles;
                    let r = self.workers[w].current.as_mut().expect("running");
                    r.cycles_left = cycles as f64;
                    r.last_update = self.now;
                    self.set_core_activity(self.workers[w].core, CoreActivity::Busy);
                    self.reschedule_completion(w);
                    return;
                }
                Action::Spawn(child) => {
                    // Lazy task creation: push THIS frame's continuation,
                    // descend into the child (paper §2).
                    self.frames[fidx].pc += 1;
                    self.frames[fidx].pending += 1;
                    self.workers[w].deque.push_back(fidx);
                    self.stats.pushes += 1;
                    // The continuation is queued from this instant; the
                    // frame's own poll span hands over to the child
                    // (continuation stealing: descending IS the spawn).
                    self.record_span(w, fidx, true, SpanPhase::Queued);
                    self.record_span(w, fidx, false, SpanPhase::Poll);
                    let len = self.workers[w].deque.len();
                    self.ctl.on_push(WorkerId(w), len, &mut self.pending);
                    self.apply_pending();
                    let child_frame = self.new_frame(child, Some(fidx));
                    self.record_span(w, child_frame, true, SpanPhase::Poll);
                    let r = self.workers[w].current.as_mut().expect("running");
                    r.frame = child_frame;
                    continue;
                }
                Action::Sync => {
                    if self.frames[fidx].pending == 0 {
                        self.frames[fidx].pc += 1;
                        continue;
                    }
                    self.frames[fidx].waiting = true;
                    self.record_span(w, fidx, false, SpanPhase::Poll);
                    self.workers[w].current = None;
                    self.next_task(w);
                    return;
                }
            }
        }
    }

    fn on_work_done(&mut self, w: usize) {
        self.advance_progress(w);
        debug_assert!(
            self.workers[w]
                .current
                .as_ref()
                .is_none_or(|r| r.cycles_left < 1.0),
            "completion fired with cycles remaining"
        );
        if let Some(r) = &mut self.workers[w].current {
            r.cycles_left = 0.0;
        }
        self.run_frame(w);
    }

    /// A frame finished: notify the parent; if this was the last child a
    /// waiting parent needed, the completing worker resumes the parent
    /// (the "provably good steal" continuation rule).
    fn complete_frame(&mut self, w: usize, fidx: usize) -> FrameOutcome {
        self.record_span(w, fidx, false, SpanPhase::Poll);
        match self.frames[fidx].parent {
            None => {
                // Root done: stop the virtual world.
                self.workers[w].current = None;
                self.set_core_activity(self.workers[w].core, CoreActivity::Idle);
                self.done = true;
                FrameOutcome::RootDone
            }
            Some(p) => {
                self.frames[p].pending -= 1;
                if self.frames[p].waiting && self.frames[p].pending == 0 {
                    self.frames[p].waiting = false;
                    // The completing worker resumes the parent: a fresh
                    // poll episode on the adopter's stream.
                    self.record_span(w, p, true, SpanPhase::Poll);
                    let r = self.workers[w].current.as_mut().expect("running");
                    r.frame = p;
                    // Continue the parent past its sync in the same loop.
                    FrameOutcome::Adopted
                } else {
                    self.workers[w].current = None;
                    FrameOutcome::Detached
                }
            }
        }
    }

    // -- scheduling: POP / SELECT / STEAL / YIELD -------------------------

    fn next_task(&mut self, w: usize) {
        if self.done {
            return;
        }
        // POP from own tail.
        if let Some(fidx) = self.workers[w].deque.pop_back() {
            self.stats.pops += 1;
            self.stats.tasks_executed += 1;
            self.record_span(w, fidx, false, SpanPhase::Queued);
            let len = self.workers[w].deque.len();
            self.ctl.on_pop(WorkerId(w), len, &mut self.pending);
            self.apply_pending();
            self.workers[w].consecutive_fails = 0;
            self.begin_work(w, fidx, 0);
            return;
        }
        // Out of work: immediacy relay + leave the list (Fig. 5 ll. 5-14).
        self.ctl.on_out_of_work(WorkerId(w), &mut self.pending);
        self.apply_pending();
        // SELECT victims in the configured policy's order and STEAL from
        // the first non-empty head. Like Cilk's scheduler loop, a worker
        // re-SELECTs immediately after an empty victim and only yields
        // once a full sweep failed.
        let n = self.workers.len();
        if n > 1 {
            let mut order = std::mem::take(&mut self.victim_order);
            self.selector.sweep(w, &mut self.rng, &mut order);
            let mut stolen = None;
            for &v in &order {
                if let Some(fidx) = self.workers[v].deque.pop_front() {
                    stolen = Some((v, fidx));
                    break;
                }
                // The engine serialises thieves, so every failure is a
                // genuinely empty victim — lost races cannot happen here
                // (unlike the real-thread pool).
                self.stats.failed_steals += 1;
                self.record_steal(w, v, StealOutcome::Empty);
            }
            self.victim_order = order;
            if let Some((v, fidx)) = stolen {
                self.stats.steals += 1;
                self.stats.tasks_executed += 1;
                self.record_steal(w, v, StealOutcome::Success);
                // The queue episode ends on the thief's stream (the
                // cross-worker hop the exporter draws an arrow for),
                // and the transfer cost gets its own steal bracket over
                // the acquisition stall begin_work imposes.
                self.record_span(w, fidx, false, SpanPhase::Queued);
                self.record_span(w, fidx, true, SpanPhase::Steal);
                self.record_span_at(
                    w,
                    self.now.ns() + self.cfg.steal_cost_ns,
                    fidx,
                    false,
                    SpanPhase::Steal,
                );
                let victim_len = self.workers[v].deque.len();
                self.ctl
                    .on_steal(WorkerId(w), WorkerId(v), victim_len, &mut self.pending);
                self.apply_pending();
                self.workers[w].consecutive_fails = 0;
                self.begin_work(w, fidx, self.cfg.steal_cost_ns);
                return;
            }
        }
        // YIELD with capped exponential backoff.
        let fails = self.workers[w].consecutive_fails.min(16);
        self.workers[w].consecutive_fails += 1;
        let delay = (self.cfg.yield_ns << fails.min(6)).min(self.cfg.yield_max_ns);
        self.set_core_activity(self.workers[w].core, CoreActivity::Idle);
        let gen = self.workers[w].gen;
        self.push_event(self.now + SimTime::from_ns(delay), EvKind::Wake { w, gen });
    }

    /// Start a WORK invocation on an acquired task, handling dynamic
    /// migration and acquisition stalls.
    fn begin_work(&mut self, w: usize, fidx: usize, acquire_cost_ns: u64) {
        let mut stall = acquire_cost_ns;
        if let Mapping::Dynamic { affinity_ns } = self.cfg.mapping {
            stall += affinity_ns;
            self.migrate(w);
        }
        // The poll episode opens at acquisition; the stall (steal cost,
        // migration affinity) is part of the episode — that is exactly
        // the overhead the steal bracket above makes visible inside it.
        self.record_span(w, fidx, true, SpanPhase::Poll);
        self.workers[w].current = Some(Running {
            frame: fidx,
            cycles_left: 0.0,
            last_update: self.now,
            stalled_until: self.now + SimTime::from_ns(stall),
        });
        self.set_core_activity(self.workers[w].core, CoreActivity::Busy);
        self.run_frame(w);
    }

    /// Dynamic mapping: move the worker to a random unoccupied core and
    /// re-apply its tempo frequency there (a fresh DVFS transition if the
    /// core was parked at a different operating point).
    fn migrate(&mut self, w: usize) {
        let free: Vec<usize> = (0..self.cores.len())
            .filter(|&c| self.occupant[c].is_none())
            .collect();
        if free.is_empty() {
            return;
        }
        let target = free[self.rng.gen_range(0..free.len())];
        let old = self.workers[w].core;
        if target == old {
            return;
        }
        self.stats.migrations += 1;
        self.occupant[old] = None;
        self.set_core_activity(old, CoreActivity::Parked);
        self.occupant[target] = Some(w);
        self.workers[w].core = target;
        self.set_core_activity(target, CoreActivity::Idle);
        let desired = self.ctl.frequency(WorkerId(w));
        self.set_domain_freq(target, desired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineSpec;
    use hermes_core::{Policy, TempoConfig};

    fn tempo(policy: Policy, workers: usize) -> TempoConfig {
        TempoConfig::builder()
            .policy(policy)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(workers)
            .build()
    }

    fn tempo_b(policy: Policy, workers: usize) -> TempoConfig {
        TempoConfig::builder()
            .policy(policy)
            .frequencies(vec![Frequency::from_mhz(3600), Frequency::from_mhz(2700)])
            .workers(workers)
            .build()
    }

    fn quick_dag() -> DagSpec {
        DagSpec::parallel_for(64, 10_000, |i| 200_000 + (i as u64 % 9) * 50_000)
    }

    /// ~8.7e9 cycles: a second-scale run, enough for the 100 Hz meter.
    fn second_scale_dag() -> DagSpec {
        DagSpec::divide_and_conquer(11, 50_000, |i| 4_000_000 + (i as u64 % 7) * 300_000)
    }

    #[test]
    fn serial_dag_on_one_worker_matches_hand_math() {
        // 1M cycles at 2.4 GHz on one worker: elapsed = 1e6/2.4e9 s.
        let dag = DagSpec::parallel_for(1, 0, |_| 1_000_000);
        let cfg = SimConfig::new(MachineSpec::system_a(), tempo(Policy::Baseline, 1));
        let r = run(&dag, &cfg).unwrap();
        let expect_s = 1_000_000.0 / 2.4e9;
        assert!(
            (r.elapsed.seconds() - expect_s).abs() < expect_s * 0.01,
            "elapsed {} vs expected {expect_s}",
            r.elapsed.seconds()
        );
        assert_eq!(r.sched.cycles, 1_000_000);
        assert_eq!(r.sched.steals, 0);
    }

    #[test]
    fn parallel_speedup_on_baseline() {
        let dag = quick_dag();
        let one = run(
            &dag,
            &SimConfig::new(MachineSpec::system_a(), tempo(Policy::Baseline, 1)),
        )
        .unwrap();
        let eight = run(
            &dag,
            &SimConfig::new(MachineSpec::system_a(), tempo(Policy::Baseline, 8)),
        )
        .unwrap();
        let speedup = one.elapsed.seconds() / eight.elapsed.seconds();
        assert!(
            speedup > 4.0,
            "8 workers should speed a 64-task flat loop >4x, got {speedup:.2}"
        );
        assert!(eight.sched.steals > 0, "parallelism comes from stealing");
    }

    #[test]
    fn all_work_is_conserved() {
        let dag = quick_dag();
        for workers in [1, 2, 4, 8] {
            let r = run(
                &dag,
                &SimConfig::new(MachineSpec::system_a(), tempo(Policy::Unified, workers)),
            )
            .unwrap();
            assert_eq!(r.sched.cycles, dag.total_cycles(), "workers={workers}");
        }
    }

    #[test]
    fn elapsed_respects_lower_bounds() {
        // Greedy-scheduler bound: T_P >= max(T1/P, T_inf).
        let dag = DagSpec::divide_and_conquer(6, 20_000, |i| 100_000 + (i as u64 % 5) * 40_000);
        let workers = 8;
        let cfg = SimConfig::new(MachineSpec::system_a(), tempo(Policy::Baseline, workers));
        let r = run(&dag, &cfg).unwrap();
        let f = 2.4e9;
        let t1 = dag.total_cycles() as f64 / f;
        let tinf = dag.critical_path_cycles() as f64 / f;
        let bound = (t1 / workers as f64).max(tinf);
        assert!(
            r.elapsed.seconds() >= bound * 0.999,
            "elapsed {} below greedy bound {bound}",
            r.elapsed.seconds()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let dag = quick_dag();
        let cfg = SimConfig::new(MachineSpec::system_b(), tempo_b(Policy::Unified, 4)).with_seed(7);
        let a = run(&dag, &cfg).unwrap();
        let b = run(&dag, &cfg).unwrap();
        assert_eq!(a.elapsed, b.elapsed);
        assert!((a.energy_j - b.energy_j).abs() < 1e-12);
        assert_eq!(a.sched, b.sched);
        assert_eq!(a.tempo, b.tempo);
    }

    #[test]
    fn hermes_saves_energy_on_imbalanced_work() {
        // An imbalanced flat loop on several workers: thieves do most of
        // the work; HERMES should cut energy vs baseline with a small
        // time penalty.
        let dag = DagSpec::parallel_for(
            256,
            10_000,
            |i| {
                if i % 16 == 0 {
                    4_000_000
                } else {
                    150_000
                }
            },
        );
        let base = run(
            &dag,
            &SimConfig::new(MachineSpec::system_a(), tempo(Policy::Baseline, 8)),
        )
        .unwrap();
        let hermes = run(
            &dag,
            &SimConfig::new(MachineSpec::system_a(), tempo(Policy::Unified, 8)),
        )
        .unwrap();
        assert!(
            hermes.energy_j < base.energy_j,
            "HERMES {:.2} J vs baseline {:.2} J",
            hermes.energy_j,
            base.energy_j
        );
        assert!(hermes.sched.slow_fraction() > 0.0, "some work ran slow");
        assert!(hermes.tempo.actuations > 0);
    }

    #[test]
    fn metered_energy_tracks_integrated_energy() {
        let dag = second_scale_dag();
        let cfg = SimConfig::new(MachineSpec::system_b(), tempo_b(Policy::Unified, 4));
        let r = run(&dag, &cfg).unwrap();
        assert!(
            r.elapsed.seconds() > 0.5,
            "need a second-scale run for 100 Hz metering, got {}",
            r.elapsed
        );
        let rel = (r.metered_energy_j - r.energy_j).abs() / r.energy_j;
        // 100 Hz sampling vs exact integration: agree within a few percent
        // plus one sample of slack for the partial trailing interval.
        assert!(
            rel < 0.05,
            "meter {:.3} J vs integral {:.3} J ({}% off)",
            r.metered_energy_j,
            r.energy_j,
            (rel * 100.0) as u32
        );
    }

    #[test]
    fn telemetry_report_agrees_with_sim_stats() {
        use hermes_telemetry::{RingSink, RunReport, TelemetrySink};
        use std::sync::Arc;
        let dag = second_scale_dag();
        let sink = Arc::new(RingSink::new(4));
        let cfg = SimConfig::new(MachineSpec::system_b(), tempo_b(Policy::Unified, 4))
            .with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let r = run(&dag, &cfg).unwrap();
        let report = sink.report("sim-unit", "sim", r.elapsed.seconds(), r.energy_j);
        let totals = report.totals();
        assert_eq!(totals.steals, r.sched.steals, "steal events == SchedStats");
        assert_eq!(totals.empty_steals, r.sched.failed_steals);
        assert_eq!(totals.lost_race_steals, 0, "the engine serialises thieves");
        assert!(totals.steals > 0);
        let mix = report.transition_mix();
        assert_eq!(mix.path_downs, r.tempo.path_downs);
        assert_eq!(mix.relay_ups, r.tempo.relay_ups);
        assert_eq!(mix.workload_ups, r.tempo.workload_ups);
        assert_eq!(mix.workload_downs, r.tempo.workload_downs);
        assert_eq!(totals.actuations, r.tempo.actuations + 4, "plus bootstrap");
        // Steal matrix: no self-steals; rows partition each thief's count.
        for w in 0..4 {
            assert_eq!(report.steal_matrix[w][w], 0);
            let row: u64 = report.steal_matrix[w].iter().sum();
            assert_eq!(row, report.per_worker[w].steals);
        }
        // The machine stream folded the 100 Hz meter: equal to the
        // paper-style metered energy (same Σ P·Δt sum, quantised to µJ).
        assert!(
            (report.machine_energy_j - r.metered_energy_j).abs() < 1e-3,
            "machine stream {} vs meter {}",
            report.machine_energy_j,
            r.metered_energy_j
        );
        // Worker samples sum to the integrated core energy (total minus
        // package-static, which belongs to no worker).
        let core_energy: f64 = report.per_worker.iter().map(|w| w.energy_j).sum();
        let static_j = MachineSpec::system_b().power.package_static * r.elapsed.seconds();
        assert!(
            (core_energy + static_j - r.energy_j).abs() < r.energy_j * 0.02,
            "workers {core_energy} + static {static_j} vs total {}",
            r.energy_j
        );
        // Schema round-trip.
        assert_eq!(RunReport::from_json(&report.to_json()).unwrap(), report);
    }

    #[test]
    fn power_intervals_close_against_integrated_energy() {
        use hermes_telemetry::{RingSink, TelemetrySink};
        use std::sync::Arc;
        let dag = second_scale_dag();
        let sink = Arc::new(RingSink::new(4));
        let cfg = SimConfig::new(MachineSpec::system_b(), tempo_b(Policy::Unified, 4))
            .with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let r = run(&dag, &cfg).unwrap();
        let report = sink.report("sim-power", "sim", r.elapsed.seconds(), r.energy_j);
        let totals = report.totals();
        // Tallies are exact monotone counters (independent of ring
        // truncation), so closure holds however long the run is.
        assert!(totals.power_busy_ns > 0, "{totals:?}");
        assert!(
            totals.power_spin_ns > 0,
            "idle hunting happened: {totals:?}"
        );
        assert_eq!(
            totals.power_parked_ns, 0,
            "static placement never parks an occupied core"
        );
        // Closure: attributable intervals rebuild the integrated total
        // minus package-static (uncore draw belongs to no worker).
        let static_j = MachineSpec::system_b().power.package_static * r.elapsed.seconds();
        let intervals = totals.power_busy_j + totals.power_spin_j + totals.power_parked_j;
        assert!(
            (intervals + static_j - r.energy_j).abs() < r.energy_j * 0.01,
            "intervals {intervals} + static {static_j} vs integral {}",
            r.energy_j
        );
        // Per-worker, interval energy matches the flushed per-core
        // sample (static mapping: one core per worker for the whole
        // run), so joules-per-worker is attributable, not just a total.
        for (w, wt) in report.per_worker.iter().enumerate() {
            let from_intervals = wt.power_busy_j + wt.power_spin_j;
            assert!(
                (from_intervals - wt.energy_j).abs() <= wt.energy_j * 0.01 + 1e-9,
                "worker {w}: intervals {from_intervals} vs sample {}",
                wt.energy_j
            );
        }
    }

    #[test]
    fn span_events_reconcile_with_sched_stats() {
        use hermes_telemetry::{RingSink, TelemetrySink};
        use std::sync::Arc;
        let dag = quick_dag();
        let workers = 8;
        let sink = Arc::new(RingSink::with_ring_capacity(workers, 1 << 16));
        let cfg = SimConfig::new(MachineSpec::system_a(), tempo(Policy::Unified, workers))
            .with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let r = run(&dag, &cfg).unwrap();
        let report = sink.report("sim-spans", "sim", r.elapsed.seconds(), r.energy_j);
        let totals = report.totals();
        assert_eq!(totals.dropped_events, 0, "nothing truncated: exact record");
        assert_eq!(
            totals.span_begins, totals.span_ends,
            "every phase episode closes (the root completes, so every frame does)"
        );
        // Per-phase reconciliation against the scheduler counters.
        let mut begins = [0u64; 3];
        let mut ends = [0u64; 3];
        let phase_slot = |phase: SpanPhase| match phase {
            SpanPhase::Queued => 0,
            SpanPhase::Steal => 1,
            SpanPhase::Poll => 2,
            other => panic!("sim never records {other:?}"),
        };
        for w in 0..workers {
            for (_, ev) in sink.ring(w).snapshot() {
                match ev {
                    Event::SpanBegin { phase, .. } => begins[phase_slot(phase)] += 1,
                    Event::SpanEnd { phase, .. } => ends[phase_slot(phase)] += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(begins[0], r.sched.pushes, "one queue episode per push");
        assert_eq!(
            ends[0],
            r.sched.pops + r.sched.steals,
            "every queued continuation is popped or stolen"
        );
        assert_eq!(begins[1], r.sched.steals, "one steal bracket per steal");
        assert_eq!(ends[1], r.sched.steals);
        assert_eq!(begins[2], ends[2], "poll episodes balance");
        assert!(
            begins[2] > r.sched.pushes,
            "pops, children, and adoptions all poll"
        );
    }

    #[test]
    fn telemetry_does_not_perturb_the_simulation() {
        use hermes_telemetry::{RingSink, TelemetrySink};
        use std::sync::Arc;
        let dag = quick_dag();
        let plain = SimConfig::new(MachineSpec::system_a(), tempo(Policy::Unified, 8));
        let a = run(&dag, &plain).unwrap();
        let sink = Arc::new(RingSink::new(8));
        let traced = plain
            .clone()
            .with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let b = run(&dag, &traced).unwrap();
        assert_eq!(a.elapsed, b.elapsed, "observation must not change the run");
        assert_eq!(a.sched, b.sched);
        assert_eq!(a.tempo, b.tempo);
    }

    #[test]
    fn victim_policies_conserve_work_and_uniform_is_unchanged() {
        use crate::{VictimPolicy, WorkerPlacement};
        let dag = quick_dag();
        let base_cfg = SimConfig::new(MachineSpec::system_b(), tempo_b(Policy::Unified, 4));
        let uniform = run(&dag, &base_cfg).unwrap();
        // The explicit-uniform spelling is the exact same run: the
        // selector reproduces the old inline sweep bit for bit.
        let explicit = run(
            &dag,
            &base_cfg
                .clone()
                .with_victim_policy(VictimPolicy::UniformRandom),
        )
        .unwrap();
        assert_eq!(uniform.elapsed, explicit.elapsed);
        assert_eq!(uniform.sched, explicit.sched);
        assert_eq!(uniform.tempo, explicit.tempo);
        // The locality-aware policies run different (but complete and
        // deterministic) schedules.
        for victim in [VictimPolicy::NearestFirst, VictimPolicy::DistanceWeighted] {
            for placement in [WorkerPlacement::DistinctDomains, WorkerPlacement::Dense] {
                let cfg = base_cfg
                    .clone()
                    .with_victim_policy(victim)
                    .with_placement(placement);
                let a = run(&dag, &cfg).unwrap();
                assert_eq!(a.sched.cycles, dag.total_cycles(), "{victim}/{placement:?}");
                let b = run(&dag, &cfg).unwrap();
                assert_eq!(a.elapsed, b.elapsed, "{victim}/{placement:?} determinism");
                assert_eq!(a.sched, b.sched);
            }
        }
    }

    #[test]
    fn dense_placement_moves_steals_into_shared_domains() {
        use crate::{VictimPolicy, WorkerPlacement};
        use hermes_telemetry::{RingSink, TelemetrySink};
        use std::sync::Arc;
        let dag = quick_dag();
        let fraction = |victim: VictimPolicy| -> f64 {
            let sink = Arc::new(RingSink::new(4));
            let cfg = SimConfig::new(MachineSpec::system_b(), tempo_b(Policy::Unified, 4))
                .with_placement(WorkerPlacement::Dense)
                .with_victim_policy(victim)
                .with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
            let r = run(&dag, &cfg).unwrap();
            let report = sink
                .report("dense", "sim", r.elapsed.seconds(), r.energy_j)
                .with_steal_distances(&cfg.worker_distances().unwrap());
            assert_eq!(report.steal_distance_total(), r.sched.steals);
            report.same_domain_steal_fraction().unwrap()
        };
        // Dense System B: workers (0,1) and (2,3) share clock domains.
        // Nearest-first always probes the sibling before anyone else, so
        // it must land at least as many same-domain steals as uniform.
        let uniform = fraction(VictimPolicy::UniformRandom);
        let nearest = fraction(VictimPolicy::NearestFirst);
        assert!(
            nearest >= uniform,
            "nearest-first {nearest:.3} vs uniform {uniform:.3}"
        );
        assert!(
            nearest > 0.0,
            "sibling steals must occur under nearest-first"
        );
    }

    #[test]
    fn dense_placement_rejects_more_workers_than_cores() {
        use crate::WorkerPlacement;
        let dag = quick_dag();
        let tempo = TempoConfig::builder()
            .policy(Policy::Baseline)
            .frequencies(vec![Frequency::from_mhz(3600), Frequency::from_mhz(2700)])
            .workers(9)
            .build();
        let cfg =
            SimConfig::new(MachineSpec::system_b(), tempo).with_placement(WorkerPlacement::Dense);
        assert_eq!(
            run(&dag, &cfg).unwrap_err(),
            SimError::TooManyWorkers {
                workers: 9,
                domains: 8
            }
        );
        // Dense placement seats up to one worker per core — more than
        // the distinct-domain limit of 4.
        let tempo = TempoConfig::builder()
            .policy(Policy::Baseline)
            .frequencies(vec![Frequency::from_mhz(3600), Frequency::from_mhz(2700)])
            .workers(8)
            .build();
        let cfg =
            SimConfig::new(MachineSpec::system_b(), tempo).with_placement(WorkerPlacement::Dense);
        let r = run(&dag, &cfg).unwrap();
        assert_eq!(r.sched.cycles, dag.total_cycles());
    }

    #[test]
    fn too_many_workers_is_an_error() {
        let dag = quick_dag();
        let cfg = SimConfig::new(MachineSpec::system_b(), tempo(Policy::Baseline, 5));
        assert_eq!(
            run(&dag, &cfg).unwrap_err(),
            SimError::TooManyWorkers {
                workers: 5,
                domains: 4
            }
        );
    }

    #[test]
    fn unsupported_frequency_is_an_error() {
        let dag = quick_dag();
        let t = TempoConfig::builder()
            .frequencies(vec![Frequency::from_mhz(5000), Frequency::from_mhz(1600)])
            .workers(2)
            .build();
        let cfg = SimConfig::new(MachineSpec::system_a(), t);
        assert_eq!(
            run(&dag, &cfg).unwrap_err(),
            SimError::UnsupportedFrequency(Frequency::from_mhz(5000))
        );
    }

    #[test]
    fn dynamic_mapping_migrates_and_costs_energy() {
        let dag = second_scale_dag();
        let base = SimConfig::new(MachineSpec::system_a(), tempo(Policy::Unified, 8));
        let stat = run(&dag, &base).unwrap();
        let dyn_cfg = base.clone().with_mapping(Mapping::dynamic_default());
        let dynamic = run(&dag, &dyn_cfg).unwrap();
        assert!(dynamic.sched.migrations > 0);
        assert!(
            dynamic.elapsed >= stat.elapsed,
            "per-WORK affinity setting must not speed things up: {} vs {}",
            dynamic.elapsed,
            stat.elapsed
        );
        assert!(
            dynamic.energy_j > stat.energy_j * 0.995,
            "dynamic should not be meaningfully cheaper: {:.3} vs {:.3}",
            dynamic.energy_j,
            stat.energy_j
        );
    }

    #[test]
    fn baseline_never_changes_frequency() {
        let dag = quick_dag();
        let r = run(
            &dag,
            &SimConfig::new(MachineSpec::system_a(), tempo(Policy::Baseline, 8)),
        )
        .unwrap();
        assert_eq!(r.sched.dvfs_transitions, 0);
        assert_eq!(r.sched.slow_fraction(), 0.0);
    }

    #[test]
    fn power_series_is_recorded() {
        let dag = second_scale_dag();
        let r = run(
            &dag,
            &SimConfig::new(MachineSpec::system_b(), tempo_b(Policy::Baseline, 4)),
        )
        .unwrap();
        // 100 Hz over a >0.5 s run.
        assert!(
            r.power_series.len() > 50,
            "long enough run to see the 100 Hz series: {} samples over {}",
            r.power_series.len(),
            r.elapsed
        );
        // Power while running flat out exceeds idle power.
        let peak = r.power_series.iter().map(|&(_, w)| w).fold(0.0, f64::max);
        assert!(peak > r.mean_power_w * 0.5);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::{DagBuilder, MachineSpec};
    use hermes_core::{Policy, TempoConfig};

    #[test]
    fn single_task_dag_with_many_workers_terminates() {
        // Empty-deque storm: 15 workers fight over nothing while one
        // executes the only task; termination and timing must hold.
        let dag = DagSpec::parallel_for(1, 0, |_| 50_000_000);
        let tempo = TempoConfig::builder()
            .policy(Policy::Unified)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(16)
            .build();
        let r = run(&dag, &SimConfig::new(MachineSpec::system_a(), tempo)).unwrap();
        assert_eq!(r.sched.cycles, 50_000_000);
        assert!(r.sched.failed_steals > 0, "the storm actually happened");
        // A faithful corner of the paper's algorithm: the victim's only
        // steal drops its (empty) deque below threshold and slows it one
        // band with no relay to recover, so the task may run at the slow
        // frequency — but never slower, and never livelocked.
        let slow_bound = 50_000_000.0 / 1.6e9;
        assert!(
            r.elapsed.seconds() < slow_bound * 1.1,
            "bounded by the slow frequency: {} vs {slow_bound}",
            r.elapsed.seconds()
        );
    }

    #[test]
    fn zero_dvfs_latency_is_supported() {
        let dag = DagSpec::parallel_for(64, 10_000, |_| 1_000_000);
        let mut machine = MachineSpec::system_a();
        machine.dvfs_latency_ns = 0;
        let tempo = TempoConfig::builder()
            .policy(Policy::Unified)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(8)
            .build();
        let r = run(&dag, &SimConfig::new(machine, tempo)).unwrap();
        assert_eq!(r.sched.cycles, dag.total_cycles());
    }

    #[test]
    fn deep_serial_chain_of_phases() {
        // 64 sequential single-task phases: worst case for the relay and
        // profiler plumbing (constant drains, no parallelism).
        let mut b = DagBuilder::new();
        let mut actions = Vec::new();
        for i in 0..64 {
            let child = b.node(vec![Action::Work(1_000_000 + i * 10_000)]);
            actions.push(Action::Spawn(child));
            actions.push(Action::Sync);
        }
        let root = b.node(actions);
        let dag = b.build(root);
        let tempo = TempoConfig::builder()
            .policy(Policy::Unified)
            .frequencies(vec![Frequency::from_mhz(3600), Frequency::from_mhz(2700)])
            .workers(4)
            .build();
        let r = run(&dag, &SimConfig::new(MachineSpec::system_b(), tempo)).unwrap();
        assert_eq!(r.sched.cycles, dag.total_cycles());
    }
}
