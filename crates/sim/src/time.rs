//! Virtual time for the discrete-event simulation.

/// A point in virtual time, in nanoseconds since simulation start.
///
/// ```
/// use hermes_sim::SimTime;
/// let t = SimTime::from_micros(5);
/// assert_eq!(t.ns(), 5_000);
/// assert_eq!((t + SimTime::from_ns(500)).ns(), 5_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn ns(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.seconds())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(2).ns(), 2_000_000);
        assert_eq!(SimTime::from_micros(3).ns(), 3_000);
        assert!((SimTime::from_millis(1500).seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(250);
        assert!(a < b);
        assert_eq!((a + b).ns(), 350);
        assert_eq!(b.since(a).ns(), 150);
        assert_eq!(a.since(b).ns(), 0, "saturating");
        let mut c = a;
        c += b;
        assert_eq!(c.ns(), 350);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_millis(1200).to_string(), "1.200s");
    }
}
