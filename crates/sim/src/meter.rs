//! The simulated current meter (paper §4.1).
//!
//! The paper measures "current meters over power supply lines to the CPU
//! module. Data is converted through an NI DAQ … with 100 samples per
//! second. Since the supply voltage is stable at 12 V, energy consumption
//! is computed as the sum of current samples multiplied by 12 × 0.01."
//! This module reproduces that pipeline against the simulated machine's
//! instantaneous power.

use crate::SimTime;
use hermes_telemetry::{Event, TelemetrySink, MACHINE_STREAM};
use std::sync::Arc;

/// Supply-rail voltage the meter assumes (stable 12 V in the paper).
pub const SUPPLY_VOLTS: f64 = 12.0;

/// One meter sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterSample {
    /// Sample timestamp.
    pub at: SimTime,
    /// Current on the supply rail, amperes.
    pub amps: f64,
}

impl MeterSample {
    /// Instantaneous power implied by the sample, watts.
    #[must_use]
    pub fn watts(&self) -> f64 {
        self.amps * SUPPLY_VOLTS
    }
}

/// A 100 Hz sampling current meter on the CPU supply rail.
///
/// ```
/// use hermes_sim::{PowerMeter, SimTime};
/// let mut meter = PowerMeter::new(100);
/// // The engine feeds it instantaneous power at each sampling tick.
/// meter.sample(SimTime::ZERO, 60.0);
/// meter.sample(SimTime::from_millis(10), 66.0);
/// // E = Σ I · 12 V · 0.01 s = Σ P · 0.01
/// assert!((meter.energy_joules() - (60.0 + 66.0) * 0.01).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PowerMeter {
    period: SimTime,
    samples: Vec<MeterSample>,
    /// Optional telemetry sink; each sample then also lands on the
    /// machine stream as an energy delta (`P × Δt`, exactly the paper's
    /// `I × 12 V × 0.01 s` term).
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl PowerMeter {
    /// A meter sampling `hz` times per virtual second.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is 0.
    #[must_use]
    pub fn new(hz: u64) -> Self {
        assert!(hz > 0, "sampling rate must be positive");
        PowerMeter {
            period: SimTime::from_ns(1_000_000_000 / hz),
            samples: Vec::new(),
            sink: None,
        }
    }

    /// Mirror every future sample onto `sink`'s machine stream as an
    /// [`Event::EnergySample`] delta.
    pub fn attach_sink(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.sink = Some(sink);
    }

    /// Sampling period.
    #[must_use]
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Record the instantaneous rail power (`watts`) at time `at`.
    pub fn sample(&mut self, at: SimTime, watts: f64) {
        self.samples.push(MeterSample {
            at,
            amps: watts / SUPPLY_VOLTS,
        });
        if let Some(sink) = self.sink.as_deref() {
            sink.record(
                MACHINE_STREAM,
                at.ns(),
                Event::energy_from_joules(watts * self.period.seconds()),
            );
        }
    }

    /// All samples, in time order.
    #[must_use]
    pub fn samples(&self) -> &[MeterSample] {
        &self.samples
    }

    /// Metered energy exactly as the paper computes it:
    /// `Σ I · 12 · Δt` with `Δt` the sampling period.
    #[must_use]
    pub fn energy_joules(&self) -> f64 {
        let dt = self.period.seconds();
        self.samples
            .iter()
            .map(|s| s.amps * SUPPLY_VOLTS * dt)
            .sum()
    }

    /// Mean rail power over the recording, watts.
    #[must_use]
    pub fn mean_watts(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(MeterSample::watts).sum::<f64>() / self.samples.len() as f64
    }

    /// The power time series as `(seconds, watts)` pairs — the raw data
    /// behind the paper's Figs. 19–22.
    #[must_use]
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.at.seconds(), s.watts()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_formula_matches_paper() {
        let mut m = PowerMeter::new(100);
        for i in 0..100u64 {
            // Constant 120 W for one virtual second: 10 A at 12 V.
            m.sample(SimTime::from_millis(i * 10), 120.0);
        }
        // Σ 10 A · 12 V · 0.01 s over 100 samples = 120 J.
        assert!((m.energy_joules() - 120.0).abs() < 1e-9);
        assert!((m.mean_watts() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn period_from_rate() {
        assert_eq!(PowerMeter::new(100).period(), SimTime::from_millis(10));
        assert_eq!(PowerMeter::new(1000).period(), SimTime::from_millis(1));
    }

    #[test]
    fn series_converts_units() {
        let mut m = PowerMeter::new(100);
        m.sample(SimTime::from_millis(500), 24.0);
        let s = m.series();
        assert_eq!(s.len(), 1);
        assert!((s[0].0 - 0.5).abs() < 1e-12);
        assert!((s[0].1 - 24.0).abs() < 1e-12);
        assert!((m.samples()[0].amps - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_reads_zero() {
        let m = PowerMeter::new(100);
        assert_eq!(m.energy_joules(), 0.0);
        assert_eq!(m.mean_watts(), 0.0);
        assert!(m.series().is_empty());
    }

    #[test]
    #[should_panic(expected = "sampling rate must be positive")]
    fn zero_rate_panics() {
        let _ = PowerMeter::new(0);
    }
}
