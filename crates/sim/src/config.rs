//! Simulation configuration and run reports.

use crate::{MachineSpec, SimError, SimTime};
use hermes_core::{Frequency, TempoConfig, TempoStats};
use hermes_telemetry::TelemetrySink;
use hermes_topology::{CoreId, VictimPolicy};
use std::sync::Arc;

/// Worker-to-core mapping strategy (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// Each worker is pre-assigned (pinned) to one core.
    Static,
    /// Workers may migrate between cores; affinity is set right before
    /// each WORK invocation, costing `affinity_ns` each time.
    Dynamic {
        /// Cost of the `sched_setaffinity` round-trip per WORK invocation.
        affinity_ns: u64,
    },
}

impl Mapping {
    /// The paper's default dynamic-scheduling cost (a syscall plus the
    /// migration cache penalty, single-digit microseconds).
    #[must_use]
    pub fn dynamic_default() -> Self {
        Mapping::Dynamic { affinity_ns: 2_500 }
    }

    /// Short label for bench tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mapping::Static => "static",
            Mapping::Dynamic { .. } => "dynamic",
        }
    }
}

/// Which cores the workers are pinned to (before any dynamic
/// migration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerPlacement {
    /// One worker on the first core of each clock domain — the paper's
    /// protocol ("experiments are performed over cores with distinct
    /// clock domains"), avoiding DVFS interference between workers.
    #[default]
    DistinctDomains,
    /// Workers on cores `0..workers` in order, so neighbouring workers
    /// share clock domains. DVFS interference is real here (domain
    /// siblings drag each other's frequency); the victim-selection
    /// ablation uses this placement because it is the one where steal
    /// distance varies.
    Dense,
}

impl WorkerPlacement {
    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkerPlacement::DistinctDomains => "distinct-domains",
            WorkerPlacement::Dense => "dense",
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The simulated machine.
    pub machine: MachineSpec,
    /// HERMES tempo-control configuration (policy, frequencies, workers,
    /// thresholds, profiler).
    pub tempo: TempoConfig,
    /// Worker-to-core mapping strategy.
    pub mapping: Mapping,
    /// Which cores workers are initially pinned to.
    pub placement: WorkerPlacement,
    /// Victim-selection policy for the steal path.
    pub victim: VictimPolicy,
    /// Seed for victim selection and migration choices.
    pub seed: u64,
    /// Base delay before a worker retries after a failed steal (YIELD).
    pub yield_ns: u64,
    /// Cap for the exponential backoff on repeated failed steals.
    pub yield_max_ns: u64,
    /// Cost of a successful steal (victim lock, deque transfer, cache).
    pub steal_cost_ns: u64,
    /// Meter sampling rate (the paper's DAQ samples at 100 Hz).
    pub meter_hz: u64,
    /// Optional telemetry sink. When set, the engine emits steal
    /// attempts, tempo transitions, DVFS actuations, and energy samples
    /// (per worker at completion, per meter tick on the machine stream),
    /// timestamped in virtual nanoseconds — the same schema the
    /// real-thread pool emits, so sim and rt runs fold into identical
    /// [`RunReport`](hermes_telemetry::RunReport)s.
    pub telemetry: Option<Arc<dyn TelemetrySink>>,
}

impl SimConfig {
    /// A configuration with the defaults used throughout the evaluation.
    #[must_use]
    pub fn new(machine: MachineSpec, tempo: TempoConfig) -> Self {
        SimConfig {
            machine,
            tempo,
            mapping: Mapping::Static,
            placement: WorkerPlacement::DistinctDomains,
            victim: VictimPolicy::UniformRandom,
            seed: 42,
            yield_ns: 2_000,
            yield_max_ns: 64_000,
            steal_cost_ns: 400,
            meter_hz: 100,
            telemetry: None,
        }
    }

    /// Replace the mapping strategy.
    #[must_use]
    pub fn with_mapping(mut self, mapping: Mapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Replace the RNG seed (one seed per trial in the harness).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a telemetry sink (e.g. [`hermes_telemetry::RingSink`]).
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Replace the victim-selection policy (default
    /// [`VictimPolicy::UniformRandom`], the paper's behaviour).
    #[must_use]
    pub fn with_victim_policy(mut self, victim: VictimPolicy) -> Self {
        self.victim = victim;
        self
    }

    /// Replace the worker placement (default
    /// [`WorkerPlacement::DistinctDomains`], the paper's protocol).
    #[must_use]
    pub fn with_placement(mut self, placement: WorkerPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// The cores this configuration pins its workers to — the single
    /// source of truth shared by the engine and by hosts attaching
    /// steal-distance matrices to reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyWorkers`] when the placement cannot
    /// seat every worker (more workers than clock domains under
    /// [`WorkerPlacement::DistinctDomains`]; more workers than cores
    /// under [`WorkerPlacement::Dense`]).
    pub fn worker_cores(&self) -> Result<Vec<CoreId>, SimError> {
        let workers = self.tempo.num_workers;
        match self.placement {
            WorkerPlacement::DistinctDomains => {
                let domain_cores = self.machine.distinct_domain_cores();
                if workers > domain_cores.len() {
                    return Err(SimError::TooManyWorkers {
                        workers,
                        domains: domain_cores.len(),
                    });
                }
                Ok(domain_cores[..workers].to_vec())
            }
            WorkerPlacement::Dense => {
                if workers > self.machine.cores() {
                    return Err(SimError::TooManyWorkers {
                        workers,
                        domains: self.machine.cores(),
                    });
                }
                Ok((0..workers).map(CoreId).collect())
            }
        }
    }

    /// The worker-to-worker steal-distance matrix induced by this
    /// configuration's placement — what
    /// [`RunReport::with_steal_distances`](hermes_telemetry::RunReport::with_steal_distances)
    /// consumes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`worker_cores`](Self::worker_cores).
    pub fn worker_distances(&self) -> Result<Vec<Vec<u32>>, SimError> {
        Ok(self
            .machine
            .topology
            .worker_distances(&self.worker_cores()?))
    }
}

/// Scheduler-level statistics of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedStats {
    /// WORK invocations (tasks obtained by pop or steal, plus the root).
    pub tasks_executed: u64,
    /// Continuations pushed onto deques.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Successful steals.
    pub steals: u64,
    /// Failed steal attempts (victim deque empty).
    pub failed_steals: u64,
    /// DVFS operating-point changes actually applied to a domain.
    pub dvfs_transitions: u64,
    /// Worker migrations under dynamic mapping.
    pub migrations: u64,
    /// Total cycles of work executed.
    pub cycles: u64,
    /// Busy core-seconds spent at each frequency, fastest first
    /// (the tempo residency profile).
    pub busy_seconds_at: Vec<(Frequency, f64)>,
}

impl SchedStats {
    /// Fraction of busy time spent below the fastest frequency.
    #[must_use]
    pub fn slow_fraction(&self) -> f64 {
        let total: f64 = self.busy_seconds_at.iter().map(|(_, s)| s).sum();
        if total == 0.0 {
            return 0.0;
        }
        let slow: f64 = self.busy_seconds_at.iter().skip(1).map(|(_, s)| s).sum();
        slow / total
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual wall-clock time to complete the computation.
    pub elapsed: SimTime,
    /// Energy by continuous integration of the power model, joules.
    pub energy_j: f64,
    /// Energy as the paper's metering pipeline reports it
    /// (100 Hz current samples × 12 V × 0.01 s), joules.
    pub metered_energy_j: f64,
    /// Mean rail power, watts.
    pub mean_power_w: f64,
    /// The 100 Hz power time series as `(seconds, watts)` pairs
    /// (Figs. 19–22).
    pub power_series: Vec<(f64, f64)>,
    /// Controller statistics.
    pub tempo: TempoStats,
    /// Scheduler statistics.
    pub sched: SchedStats,
}

impl SimReport {
    /// Energy-delay product in joule-seconds (paper Figs. 8–9).
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_j * self.elapsed.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_labels() {
        assert_eq!(Mapping::Static.label(), "static");
        assert_eq!(Mapping::dynamic_default().label(), "dynamic");
    }

    #[test]
    fn slow_fraction_partitions_busy_time() {
        let s = SchedStats {
            busy_seconds_at: vec![
                (Frequency::from_mhz(2400), 3.0),
                (Frequency::from_mhz(1600), 1.0),
            ],
            ..SchedStats::default()
        };
        assert!((s.slow_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(SchedStats::default().slow_fraction(), 0.0);
    }

    #[test]
    fn config_builders_chain() {
        let machine = MachineSpec::system_b();
        let tempo = TempoConfig::builder()
            .frequencies(vec![Frequency::from_mhz(3600), Frequency::from_mhz(2700)])
            .workers(4)
            .build();
        let cfg = SimConfig::new(machine, tempo)
            .with_mapping(Mapping::dynamic_default())
            .with_seed(7);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.mapping.label(), "dynamic");
    }
}
