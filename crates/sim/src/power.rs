//! The CMOS power model behind the simulated current meter.
//!
//! The paper measures energy with current meters on the 12 V CPU supply
//! rail. We model per-core power with the standard CMOS decomposition the
//! DVFS literature relies on (e.g. the paper's refs. [22, 27, 37]):
//!
//! ```text
//! P_core(f) = P_static(V(f)) + a · C · V(f)² · f
//! ```
//!
//! where `V(f)` is the voltage the DVFS operating point pairs with
//! frequency `f`, `C` is the switched capacitance, and `a` is the activity
//! factor (1 for a busy core, a small fraction for an idle one). Static
//! (leakage) power grows with voltage. The crucial property the paper's
//! results rest on — and which this model preserves — is that energy per
//! unit of work falls super-linearly as frequency drops (the `V²·f` term),
//! while execution time grows only linearly.

use hermes_core::Frequency;

/// Per-core and package power model of a simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Voltage at the lowest hardware frequency, volts.
    pub volt_min: f64,
    /// Voltage at the highest hardware frequency, volts.
    pub volt_max: f64,
    /// Lowest hardware frequency (anchors the voltage curve).
    pub freq_min: Frequency,
    /// Highest hardware frequency (anchors the voltage curve).
    pub freq_max: Frequency,
    /// Effective switched capacitance, in watts per (GHz·V²).
    pub capacitance: f64,
    /// Leakage power per core at `volt_max`, watts. Scales linearly with
    /// voltage.
    pub static_per_core: f64,
    /// Activity factor of an idle core (spinning in the scheduler or
    /// halted between tasks).
    pub idle_activity: f64,
    /// Constant package/uncore power drawn regardless of core states,
    /// watts (memory controller, interconnect — the meter on the supply
    /// rail sees it, DVFS does not reduce it).
    pub package_static: f64,
}

impl PowerModel {
    /// Operating voltage paired with `f`, by linear interpolation between
    /// the anchor points (clamped outside).
    #[must_use]
    pub fn voltage(&self, f: Frequency) -> f64 {
        let lo = self.freq_min.khz() as f64;
        let hi = self.freq_max.khz() as f64;
        let x = (f.khz() as f64).clamp(lo, hi);
        let t = if hi > lo { (x - lo) / (hi - lo) } else { 0.0 };
        self.volt_min + t * (self.volt_max - self.volt_min)
    }

    /// Power of one core running flat-out at `f`, watts.
    #[must_use]
    pub fn busy_power(&self, f: Frequency) -> f64 {
        self.core_power(f, 1.0)
    }

    /// Power of one idle core parked at `f`, watts.
    #[must_use]
    pub fn idle_power(&self, f: Frequency) -> f64 {
        self.core_power(f, self.idle_activity)
    }

    /// Power of one core at `f` with activity factor `activity ∈ [0, 1]`.
    #[must_use]
    pub fn core_power(&self, f: Frequency, activity: f64) -> f64 {
        let v = self.voltage(f);
        let dynamic = activity * self.capacitance * v * v * f.ghz();
        let leakage = self.static_per_core * (v / self.volt_max);
        dynamic + leakage
    }

    /// Energy to execute `cycles` cycles at `f` on an otherwise-busy core,
    /// joules. (Convenience for tests; the engine integrates power over
    /// state intervals instead.)
    #[must_use]
    pub fn energy_for_cycles(&self, f: Frequency, cycles: u64) -> f64 {
        let seconds = cycles as f64 / (f.khz() as f64 * 1e3);
        self.busy_power(f) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel {
            volt_min: 0.9,
            volt_max: 1.25,
            freq_min: Frequency::from_mhz(1400),
            freq_max: Frequency::from_mhz(2400),
            capacitance: 3.0,
            static_per_core: 2.0,
            idle_activity: 0.1,
            package_static: 10.0,
        }
    }

    #[test]
    fn voltage_interpolates_and_clamps() {
        let m = model();
        assert!((m.voltage(Frequency::from_mhz(1400)) - 0.9).abs() < 1e-12);
        assert!((m.voltage(Frequency::from_mhz(2400)) - 1.25).abs() < 1e-12);
        let mid = m.voltage(Frequency::from_mhz(1900));
        assert!(mid > 0.9 && mid < 1.25);
        // Clamped outside the anchor range.
        assert!((m.voltage(Frequency::from_mhz(800)) - 0.9).abs() < 1e-12);
        assert!((m.voltage(Frequency::from_mhz(4000)) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn busy_power_rises_superlinearly_with_frequency() {
        let m = model();
        let p_low = m.busy_power(Frequency::from_mhz(1400));
        let p_high = m.busy_power(Frequency::from_mhz(2400));
        let freq_ratio = 2400.0 / 1400.0;
        assert!(
            p_high / p_low > freq_ratio,
            "dynamic power must grow faster than frequency (V² effect): {} vs {}",
            p_high / p_low,
            freq_ratio
        );
    }

    #[test]
    fn energy_per_cycle_falls_at_lower_frequency() {
        // The property all of HERMES's savings rest on.
        let m = model();
        let e_fast = m.energy_for_cycles(Frequency::from_mhz(2400), 1_000_000);
        let e_slow = m.energy_for_cycles(Frequency::from_mhz(1600), 1_000_000);
        assert!(
            e_slow < e_fast,
            "same work at lower frequency must cost less energy: {e_slow} vs {e_fast}"
        );
    }

    #[test]
    fn idle_power_is_much_less_than_busy() {
        let m = model();
        let f = Frequency::from_mhz(2400);
        assert!(m.idle_power(f) < 0.5 * m.busy_power(f));
        assert!(m.idle_power(f) > 0.0, "leakage never vanishes");
    }

    #[test]
    fn activity_scales_dynamic_term_only() {
        let m = model();
        let f = Frequency::from_mhz(2000);
        let p0 = m.core_power(f, 0.0);
        let p1 = m.core_power(f, 1.0);
        let p_half = m.core_power(f, 0.5);
        assert!((p_half - (p0 + (p1 - p0) * 0.5)).abs() < 1e-9);
    }
}
