//! Cilk-style task DAGs executed by the simulated scheduler.
//!
//! A [`DagSpec`] is a static description of a fork-join computation in the
//! Cilk model: each node is a function body — a sequence of work segments
//! interleaved with `spawn`s and `sync`s, with an implicit `sync` before
//! returning (fully strict computations). The scheduler instantiates nodes
//! as frames and executes them with lazy task creation: a `spawn` pushes
//! the *continuation* of the current frame onto the worker's deque and
//! descends into the child, exactly as in the paper's §2 example.

/// Index of a node within a [`DagSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// One step of a node's body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Execute `cycles` cycles of serial work.
    Work(u64),
    /// Spawn the given child node (Cilk `spawn`): the continuation of
    /// this node is pushed onto the deque; execution descends into the
    /// child.
    Spawn(NodeId),
    /// Wait for all children spawned so far (Cilk `sync`).
    Sync,
}

/// A static fork-join task DAG.
///
/// Build directly with [`DagBuilder`] or via the shape helpers
/// ([`DagSpec::parallel_for`], [`DagSpec::divide_and_conquer`]).
///
/// ```
/// use hermes_sim::{DagBuilder, Action};
/// let mut b = DagBuilder::new();
/// let leaf = b.node(vec![Action::Work(1_000)]);
/// let root = b.node(vec![
///     Action::Work(100),
///     Action::Spawn(leaf),
///     Action::Work(100),
///     Action::Sync,
/// ]);
/// let dag = b.build(root);
/// assert_eq!(dag.total_cycles(), 1_200);
/// assert_eq!(dag.critical_path_cycles(), 1_100); // work || leaf
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DagSpec {
    nodes: Vec<Vec<Action>>,
    root: NodeId,
    mem_fraction: f64,
}

impl DagSpec {
    /// The root node executed by worker 0 at bootstrap.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Fraction of each work segment stalled on memory (0.0–1.0).
    ///
    /// Memory time does not scale with core frequency: a segment of `c`
    /// cycles (calibrated at the machine's top frequency `F`) executing at
    /// frequency `f` takes `c·((1-β)/f + β/F)` seconds. PBBS-style
    /// workloads are substantially memory-bound, which is why the paper
    /// sees only 3–4 % time loss while running large fractions of the work
    /// at reduced frequency.
    #[must_use]
    pub fn mem_fraction(&self) -> f64 {
        self.mem_fraction
    }

    /// Set the memory-bound fraction (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_mem_fraction(mut self, beta: f64) -> DagSpec {
        self.mem_fraction = beta.clamp(0.0, 1.0);
        self
    }

    /// Body of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn actions(&self, node: NodeId) -> &[Action] {
        &self.nodes[node.0]
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total work `T₁`: cycles of every node, summed.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.nodes
            .iter()
            .flatten()
            .map(|a| if let Action::Work(c) = a { *c } else { 0 })
            .sum()
    }

    /// Critical path `T∞`: the longest chain of serial work, assuming
    /// infinitely many workers.
    #[must_use]
    pub fn critical_path_cycles(&self) -> u64 {
        self.span_of(self.root)
    }

    fn span_of(&self, node: NodeId) -> u64 {
        // Span of a fully strict node body: segments separated by syncs;
        // within a region, spawned children run in parallel with the
        // serial work that follows their spawn, joining at the region's
        // sync (or the implicit final sync).
        let mut total = 0u64; // span of completed regions
        let mut serial = 0u64; // serial work in the open region
        let mut spawn_spans: Vec<(u64, u64)> = Vec::new(); // (serial offset at spawn, child span)
        for action in &self.nodes[node.0] {
            match *action {
                Action::Work(c) => serial += c,
                Action::Spawn(child) => spawn_spans.push((serial, self.span_of(child))),
                Action::Sync => {
                    total += region_span(serial, &spawn_spans);
                    serial = 0;
                    spawn_spans.clear();
                }
            }
        }
        total + region_span(serial, &spawn_spans)
    }

    /// A flat parallel loop: one root spawning `tasks` children, child `i`
    /// carrying `cycles(i)` cycles, with `root_cycles` of serial setup.
    ///
    /// This is the DAG shape of PBBS-style `parallel_for` benchmarks.
    #[must_use]
    pub fn parallel_for(
        tasks: usize,
        root_cycles: u64,
        mut cycles: impl FnMut(usize) -> u64,
    ) -> DagSpec {
        let mut b = DagBuilder::new();
        let children: Vec<NodeId> = (0..tasks)
            .map(|i| b.node(vec![Action::Work(cycles(i))]))
            .collect();
        let mut actions = Vec::with_capacity(tasks + 2);
        actions.push(Action::Work(root_cycles));
        for c in children {
            actions.push(Action::Spawn(c));
        }
        actions.push(Action::Sync);
        let root = b.node(actions);
        b.build(root)
    }

    /// A binary divide-and-conquer tree of the given `depth`: interior
    /// nodes carry `split_cycles` (the divide/merge work), leaves carry
    /// `leaf_cycles(leaf_index)`.
    ///
    /// This is the DAG shape of recursive sort/geometry benchmarks.
    #[must_use]
    pub fn divide_and_conquer(
        depth: u32,
        split_cycles: u64,
        mut leaf_cycles: impl FnMut(usize) -> u64,
    ) -> DagSpec {
        let mut b = DagBuilder::new();
        let mut leaf_index = 0usize;
        let root = Self::dnc_node(
            &mut b,
            depth,
            split_cycles,
            &mut leaf_cycles,
            &mut leaf_index,
        );
        b.build(root)
    }

    fn dnc_node(
        b: &mut DagBuilder,
        depth: u32,
        split_cycles: u64,
        leaf_cycles: &mut impl FnMut(usize) -> u64,
        leaf_index: &mut usize,
    ) -> NodeId {
        if depth == 0 {
            let i = *leaf_index;
            *leaf_index += 1;
            return b.node(vec![Action::Work(leaf_cycles(i))]);
        }
        let left = Self::dnc_node(b, depth - 1, split_cycles, leaf_cycles, leaf_index);
        let right = Self::dnc_node(b, depth - 1, split_cycles, leaf_cycles, leaf_index);
        b.node(vec![
            Action::Work(split_cycles),
            Action::Spawn(left),
            Action::Spawn(right),
            Action::Sync,
            Action::Work(split_cycles),
        ])
    }
}

/// Span of one sync region: children overlap the serial work following
/// their spawn point.
fn region_span(serial: u64, spawn_spans: &[(u64, u64)]) -> u64 {
    let mut span = serial;
    for &(offset, child) in spawn_spans {
        span = span.max(offset + child);
    }
    span
}

/// Incremental builder for [`DagSpec`].
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    nodes: Vec<Vec<Action>>,
}

impl DagBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with the given body; children must already exist.
    ///
    /// # Panics
    ///
    /// Panics if the body spawns a node that has not been added yet
    /// (guaranteeing the DAG is acyclic by construction).
    pub fn node(&mut self, actions: Vec<Action>) -> NodeId {
        for a in &actions {
            if let Action::Spawn(NodeId(c)) = a {
                assert!(
                    *c < self.nodes.len(),
                    "spawn target {c} does not exist yet (build children first)"
                );
            }
        }
        self.nodes.push(actions);
        NodeId(self.nodes.len() - 1)
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes were added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finish, designating `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    #[must_use]
    pub fn build(self, root: NodeId) -> DagSpec {
        assert!(root.0 < self.nodes.len(), "root node out of range");
        DagSpec {
            nodes: self.nodes,
            root,
            mem_fraction: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_metrics() {
        let dag = DagSpec::parallel_for(4, 100, |i| (i as u64 + 1) * 10);
        // Work: 100 + 10+20+30+40 = 200.
        assert_eq!(dag.total_cycles(), 200);
        // Span: root work then children in parallel -> 100 + max(40).
        assert_eq!(dag.critical_path_cycles(), 140);
        assert_eq!(dag.len(), 5);
    }

    #[test]
    fn divide_and_conquer_metrics() {
        let dag = DagSpec::divide_and_conquer(2, 5, |_| 100);
        // 3 interior nodes x (5 + 5) + 4 leaves x 100 = 430.
        assert_eq!(dag.total_cycles(), 430);
        // Span: 2 levels of (5 .. 5) around one leaf = 5+5+100+5+5 = 120.
        assert_eq!(dag.critical_path_cycles(), 120);
    }

    #[test]
    fn span_overlaps_continuation_with_child() {
        // spawn(A); work(50); sync  where A = 30 cycles:
        // span = max(0 + 30, 50) = 50.
        let mut b = DagBuilder::new();
        let a = b.node(vec![Action::Work(30)]);
        let root = b.node(vec![Action::Spawn(a), Action::Work(50), Action::Sync]);
        let dag = b.build(root);
        assert_eq!(dag.critical_path_cycles(), 50);
        assert_eq!(dag.total_cycles(), 80);
    }

    #[test]
    fn multiple_sync_regions_accumulate() {
        let mut b = DagBuilder::new();
        let a = b.node(vec![Action::Work(100)]);
        let c = b.node(vec![Action::Work(200)]);
        let root = b.node(vec![
            Action::Spawn(a),
            Action::Sync, // region 1: span 100
            Action::Work(10),
            Action::Spawn(c),
            Action::Sync, // region 2: span 10 + 200
        ]);
        let dag = b.build(root);
        assert_eq!(dag.critical_path_cycles(), 310);
    }

    #[test]
    fn implicit_final_sync_counts_open_region() {
        let mut b = DagBuilder::new();
        let a = b.node(vec![Action::Work(500)]);
        let root = b.node(vec![Action::Spawn(a)]); // no explicit sync
        let dag = b.build(root);
        assert_eq!(dag.critical_path_cycles(), 500);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_spawn_panics() {
        let mut b = DagBuilder::new();
        let _ = b.node(vec![Action::Spawn(NodeId(7))]);
    }

    #[test]
    #[should_panic(expected = "root node out of range")]
    fn bad_root_panics() {
        let b = DagBuilder::new();
        let _ = b.build(NodeId(0));
    }

    #[test]
    fn span_never_exceeds_work() {
        let dag = DagSpec::divide_and_conquer(5, 17, |i| (i as u64 % 7) * 13 + 1);
        assert!(dag.critical_path_cycles() <= dag.total_cycles());
    }
}
