//! Model-based property tests: both deques must behave exactly like a
//! sequential double-ended queue when driven single-threaded, and must
//! conserve tasks when driven concurrently.

use hermes_deque::{LockFreeDeque, Steal, TaskDeque, TheDeque};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Steal,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u32>().prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Steal),
        ],
        0..400,
    )
}

/// Drive `dq` and a `VecDeque` model in lockstep; every observable result
/// must match (owner end = back, thief end = front).
fn check_against_model<D: TaskDeque<u32>>(dq: &D, ops: &[Op]) {
    let mut model: VecDeque<u32> = VecDeque::new();
    for op in ops {
        match op {
            Op::Push(v) => match dq.push(*v) {
                Ok(()) => model.push_back(*v),
                Err(e) => {
                    assert_eq!(e.0, *v);
                    assert_eq!(model.len(), dq.capacity(), "rejects only when full");
                }
            },
            Op::Pop => assert_eq!(dq.pop(), model.pop_back()),
            Op::Steal => assert_eq!(dq.steal().success(), model.pop_front()),
        }
        assert_eq!(dq.len(), model.len());
        assert_eq!(dq.is_empty(), model.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn the_deque_matches_sequential_model(ops in ops(), cap in 1usize..64) {
        let dq = TheDeque::with_capacity(cap);
        check_against_model(&dq, &ops);
    }

    #[test]
    fn lock_free_deque_matches_sequential_model(ops in ops(), cap in 1usize..64) {
        let dq = LockFreeDeque::with_capacity(cap);
        check_against_model(&dq, &ops);
    }

    /// Concurrent conservation: N tasks pushed by the owner while thieves
    /// steal; every task is consumed exactly once, regardless of schedule.
    #[test]
    fn the_deque_conserves_tasks_concurrently(n in 1usize..2000, thieves in 1usize..4) {
        conserve(Arc::new(TheDeque::with_capacity(2048)), n, thieves)?;
    }

    #[test]
    fn lock_free_deque_conserves_tasks_concurrently(n in 1usize..2000, thieves in 1usize..4) {
        conserve(Arc::new(LockFreeDeque::with_capacity(2048)), n, thieves)?;
    }
}

fn conserve<D: TaskDeque<usize> + Send + Sync + 'static>(
    dq: Arc<D>,
    n: usize,
    thieves: usize,
) -> Result<(), TestCaseError> {
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handles: Vec<_> = (0..thieves)
        .map(|_| {
            let dq = Arc::clone(&dq);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match dq.steal() {
                        Steal::Success { task: v, .. } => got.push(v),
                        // A lost race means work was present: retry at
                        // once without consulting the exit condition.
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(std::sync::atomic::Ordering::SeqCst) && dq.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                got
            })
        })
        .collect();
    let mut popped = Vec::new();
    for i in 0..n {
        while dq.push(i).is_err() {
            if let Some(v) = dq.pop() {
                popped.push(v);
            }
        }
    }
    while let Some(v) = dq.pop() {
        popped.push(v);
    }
    done.store(true, std::sync::atomic::Ordering::SeqCst);
    // Drain any remainder the owner sees after signalling.
    while let Some(v) = dq.pop() {
        popped.push(v);
    }
    let mut all = popped;
    for h in handles {
        all.extend(h.join().unwrap());
    }
    all.sort_unstable();
    prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    Ok(())
}
