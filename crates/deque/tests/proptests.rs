//! Model-based property tests: both deques must behave exactly like a
//! sequential double-ended queue when driven single-threaded — including
//! the `victim_len` commit-point snapshot carried by every successful
//! steal — and must conserve tasks when driven concurrently.

use hermes_deque::{LockFreeDeque, Steal, TaskDeque, TheDeque};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Steal,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u32>().prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Steal),
        ],
        0..400,
    )
}

/// Drive `dq` and a `VecDeque` model in lockstep; every observable result
/// must match (owner end = back, thief end = front). With no concurrency
/// the steal commit point *is* the model state, so `victim_len` must
/// equal the model's remaining length exactly — this is the protocol
/// invariant the controller's `on_steal` hook depends on (DESIGN.md
/// §Deque), checked for both implementations through the shared trait.
fn check_against_model<D: TaskDeque<u32>>(dq: &D, ops: &[Op]) {
    let mut model: VecDeque<u32> = VecDeque::new();
    for op in ops {
        match op {
            Op::Push(v) => match dq.push(*v) {
                Ok(()) => model.push_back(*v),
                Err(e) => {
                    assert_eq!(e.0, *v);
                    assert_eq!(model.len(), dq.capacity(), "rejects only when full");
                }
            },
            Op::Pop => assert_eq!(dq.pop(), model.pop_back()),
            Op::Steal => match (dq.steal(), model.pop_front()) {
                (Steal::Success { task, victim_len }, Some(expect)) => {
                    assert_eq!(task, expect);
                    assert_eq!(
                        victim_len,
                        model.len(),
                        "sequential victim_len is exactly the remaining length"
                    );
                }
                (Steal::Empty, None) => {}
                (got, expect) => panic!("steal mismatch: deque {got:?}, model {expect:?}"),
            },
        }
        assert_eq!(dq.len(), model.len());
        assert_eq!(dq.is_empty(), model.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn the_deque_matches_sequential_model(ops in ops(), cap in 1usize..64) {
        let dq = TheDeque::with_capacity(cap);
        check_against_model(&dq, &ops);
    }

    #[test]
    fn lock_free_deque_matches_sequential_model(ops in ops(), cap in 1usize..64) {
        let dq = LockFreeDeque::with_capacity(cap);
        check_against_model(&dq, &ops);
    }

    /// Concurrent protocol invariants at default-suite size: the owner
    /// runs an interleaved push/pop program while thieves steal; every
    /// task is consumed exactly once and every steal's `victim_len`
    /// respects the commit-point bounds. (Skipped under Miri: hundreds
    /// of cases spawning spin-waiting threads take hours interpreted;
    /// Miri's cross-thread coverage comes from the in-crate
    /// `small_concurrent_exchange_is_exact`.)
    #[test]
    #[cfg_attr(miri, ignore = "thread-heavy; Miri covers the smaller in-crate exchange test")]
    fn the_deque_interleaved_ops_hold_invariants(ops in ops(), cap in 1usize..32) {
        interleave(Arc::new(TheDeque::with_capacity(cap)), &ops, 2)?;
    }

    #[test]
    #[cfg_attr(miri, ignore = "thread-heavy; Miri covers the smaller in-crate exchange test")]
    fn lock_free_deque_interleaved_ops_hold_invariants(ops in ops(), cap in 1usize..32) {
        interleave(Arc::new(LockFreeDeque::with_capacity(cap)), &ops, 2)?;
    }
}

proptest! {
    // Big conservation runs: thousands of tasks per case. Behind
    // `#[ignore]` so local `cargo test -q` stays fast; the CI
    // deque-concurrency lane runs them with `-- --ignored`.
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    #[ignore = "long-running stress; CI deque-concurrency lane runs it via -- --ignored"]
    fn the_deque_conserves_tasks_concurrently(n in 1usize..2000, thieves in 1usize..4) {
        conserve(Arc::new(TheDeque::with_capacity(2048)), n, thieves)?;
    }

    #[test]
    #[ignore = "long-running stress; CI deque-concurrency lane runs it via -- --ignored"]
    fn lock_free_deque_conserves_tasks_concurrently(n in 1usize..2000, thieves in 1usize..4) {
        conserve(Arc::new(LockFreeDeque::with_capacity(2048)), n, thieves)?;
    }
}

/// Run the owner program `ops` against live thieves; check exactly-once
/// consumption of every pushed value and the steal-commit invariants:
///
/// * `victim_len < capacity` — at the commit point the stolen task and
///   the remaining `victim_len` tasks all fit in the ring together, so
///   the snapshot can never reach capacity (a post-hoc `len()` could,
///   after a concurrent refill — that is exactly the race the snapshot
///   exists to avoid);
/// * `victim_len < total pushes` — the snapshot excludes the stolen
///   task, so it is strictly below the owner's final push count
///   (checked after join: any in-flight counter would race the commit).
fn interleave<D: TaskDeque<u32> + 'static>(
    dq: Arc<D>,
    ops: &[Op],
    thieves: usize,
) -> Result<(), TestCaseError> {
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..thieves)
        .map(|_| {
            let dq = Arc::clone(&dq);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match dq.steal() {
                        Steal::Success { task, victim_len } => {
                            assert!(
                                victim_len < dq.capacity(),
                                "victim_len {victim_len} cannot reach capacity {}",
                                dq.capacity()
                            );
                            got.push((task, victim_len));
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) && dq.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                got
            })
        })
        .collect();

    // The owner runs the interleaved program; values are made unique so
    // exactly-once consumption is checkable even when the generated ops
    // repeat a payload.
    let mut expected = Vec::new();
    let mut consumed = Vec::new();
    let mut next = 0u32;
    for op in ops {
        match op {
            Op::Push(_) => {
                let v = next;
                if dq.push(v).is_ok() {
                    next += 1;
                    expected.push(v);
                }
            }
            Op::Pop => {
                if let Some(v) = dq.pop() {
                    consumed.push(v);
                }
            }
            // The thieves supply steal pressure; the owner's Steal slots
            // become extra pops to keep the program length meaningful.
            Op::Steal => {
                if let Some(v) = dq.pop() {
                    consumed.push(v);
                }
            }
        }
    }
    done.store(true, Ordering::SeqCst);
    while let Some(v) = dq.pop() {
        consumed.push(v);
    }
    for h in handles {
        for (task, victim_len) in h.join().unwrap() {
            prop_assert!(
                victim_len < expected.len().max(1),
                "victim_len {victim_len} vs {} total pushes",
                expected.len()
            );
            consumed.push(task);
        }
    }
    consumed.sort_unstable();
    prop_assert_eq!(consumed, expected);
    Ok(())
}

fn conserve<D: TaskDeque<usize> + Send + Sync + 'static>(
    dq: Arc<D>,
    n: usize,
    thieves: usize,
) -> Result<(), TestCaseError> {
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..thieves)
        .map(|_| {
            let dq = Arc::clone(&dq);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match dq.steal() {
                        Steal::Success {
                            task: v,
                            victim_len,
                        } => {
                            assert!(victim_len < dq.capacity());
                            got.push(v);
                        }
                        // A lost race means work was present: retry at
                        // once without consulting the exit condition.
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) && dq.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                got
            })
        })
        .collect();
    let mut popped = Vec::new();
    for i in 0..n {
        while dq.push(i).is_err() {
            if let Some(v) = dq.pop() {
                popped.push(v);
            }
        }
    }
    while let Some(v) = dq.pop() {
        popped.push(v);
    }
    done.store(true, Ordering::SeqCst);
    // Drain any remainder the owner sees after signalling.
    while let Some(v) = dq.pop() {
        popped.push(v);
    }
    let mut all = popped;
    for h in handles {
        all.extend(h.join().unwrap());
    }
    all.sort_unstable();
    prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    Ok(())
}
