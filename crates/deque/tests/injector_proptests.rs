//! Model-based property tests for the MPMC [`Injector`]: driven
//! single-threaded it must behave exactly like a sequential FIFO queue,
//! and driven concurrently it must consume every pushed value exactly
//! once while preserving FIFO order per producer.

use hermes_deque::{Injector, InjectorFullError};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![any::<u32>().prop_map(Op::Push), Just(Op::Pop)],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sequential model check: the injector against a `VecDeque` in
    /// lockstep. Push rejects exactly when the model is at the rounded
    /// capacity, pop is strict FIFO, and `len`/`is_empty` agree after
    /// every operation.
    #[test]
    fn injector_matches_sequential_fifo_model(ops in ops(), cap in 1usize..64) {
        let q = Injector::with_capacity(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in &ops {
            match op {
                Op::Push(v) => match q.push(*v) {
                    Ok(()) => model.push_back(*v),
                    Err(InjectorFullError(back)) => {
                        prop_assert_eq!(back, *v);
                        prop_assert_eq!(model.len(), q.capacity(), "rejects only when full");
                    }
                },
                Op::Pop => prop_assert_eq!(q.pop(), model.pop_front()),
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
    }

    /// Interleaved concurrent check: several producers push tagged
    /// sequences while several consumers drain, with the ring small
    /// enough that both full-queue backpressure and ring reuse are
    /// exercised. Every value must be consumed exactly once, and each
    /// producer's values must appear in push order within every
    /// consumer's observation sequence (FIFO per producer: dequeue
    /// tickets are claimed monotonically per consumer). (Skipped under
    /// Miri: hundreds of thread-spawning cases take hours interpreted;
    /// Miri's concurrent coverage is the in-crate
    /// `small_concurrent_exchange_is_exact`.)
    #[test]
    #[cfg_attr(miri, ignore = "thread-heavy; Miri covers the smaller in-crate exchange test")]
    fn injector_concurrent_exactly_once_fifo_per_producer(
        per_producer in 1usize..300,
        producers in 1usize..4,
        consumers in 1usize..4,
        cap in 1usize..32,
    ) {
        exchange(per_producer, producers, consumers, cap)?;
    }
}

/// `producers` × `per_producer` tagged pushes against `consumers`
/// concurrent drainers on a `cap`-slot ring.
fn exchange(
    per_producer: usize,
    producers: usize,
    consumers: usize,
    cap: usize,
) -> Result<(), TestCaseError> {
    let q = Arc::new(Injector::with_capacity(cap));
    let producer_handles: Vec<_> = (0..producers)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..per_producer {
                    let mut item = ((p as u64) << 32) | i as u64;
                    // Full ring = backpressure: yield and retry with the
                    // same item so per-producer order is preserved.
                    loop {
                        match q.push(item) {
                            Ok(()) => break,
                            Err(InjectorFullError(back)) => {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        })
        .collect();
    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut idle = 0u32;
                while idle < 400 {
                    match q.pop() {
                        Some(v) => {
                            got.push(v);
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
                got
            })
        })
        .collect();
    for h in producer_handles {
        h.join().unwrap();
    }
    let mut all: Vec<u64> = Vec::new();
    let mut per_consumer = Vec::new();
    for h in consumer_handles {
        let got = h.join().unwrap();
        all.extend_from_slice(&got);
        per_consumer.push(got);
    }
    // Whatever the consumers left behind after going idle.
    while let Some(v) = q.pop() {
        all.push(v);
    }

    // Exactly-once: the multiset of consumed values is the multiset of
    // pushed values.
    all.sort_unstable();
    let expect: Vec<u64> = (0..producers)
        .flat_map(|p| (0..per_producer).map(move |i| ((p as u64) << 32) | i as u64))
        .collect();
    prop_assert_eq!(all, expect);

    // FIFO per producer, as observed by each consumer.
    for got in &per_consumer {
        for p in 0..producers as u64 {
            let seqs: Vec<u64> = got
                .iter()
                .filter(|v| *v >> 32 == p)
                .map(|v| v & 0xFFFF_FFFF)
                .collect();
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "producer {} order inverted: {:?}",
                p,
                seqs
            );
        }
    }
    Ok(())
}
