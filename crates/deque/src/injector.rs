//! A lock-free bounded MPMC injector queue for external task submission.
//!
//! Work-stealing deques are owner-push/owner-pop structures: nothing in
//! their contract lets a thread *outside* the pool hand work in. The
//! [`Injector`] is that front door — the queue a serving layer pushes
//! requests into from arbitrary producer threads, and every worker polls
//! between its local pop and its steal sweep.
//!
//! The implementation is Dmitry Vyukov's bounded MPMC queue: a
//! power-of-two ring of slots, each carrying a *sequence tag* that
//! arbitrates which round of the ring the slot belongs to. Producers
//! claim a ticket by CASing `enqueue_pos`, consumers by CASing
//! `dequeue_pos`; the per-slot tag is what makes the payload accesses
//! data-race-free (a claimed ticket owns its slot exclusively until the
//! tag is republished). Both paths are lock-free: a stalled producer or
//! consumer can delay only the slot it claimed, never the whole queue.
//!
//! Ordering guarantees:
//!
//! * **Exactly-once consumption** — each pushed value is returned by
//!   exactly one successful [`pop`](Injector::pop).
//! * **FIFO per producer** — two pushes by the same thread are dequeued
//!   in push order (tickets are claimed in program order and the ring is
//!   drained in ticket order). Cross-producer order is the linearization
//!   order of the ticket CASes.
//! * **Non-blocking failure** — a slot whose current party (a mid-push
//!   producer, a mid-pop consumer) is stalled makes the queue report
//!   `Empty`/full immediately rather than waiting the party out, so a
//!   preempted thread can never trap its peers in a spin.
//!
//! This module is one of the two `unsafe` islands in the crate (the
//! other is `lock_free`): the payload lives in `UnsafeCell<MaybeUninit>`
//! slots. Every access is justified inline; the `deque-concurrency` CI
//! lane interprets this file's tests under Miri's weak-memory data-race
//! detector.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One ring slot: the sequence tag plus the payload cell.
///
/// The tag protocol (all indices are absolute tickets, not ring
/// offsets): `seq == ticket` means "free for the push holding
/// `ticket`"; `seq == ticket + 1` means "filled, ready for the pop
/// holding `ticket`"; the pop republishes `seq = ticket + capacity`,
/// handing the slot to the next ring round's push.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Error returned when pushing into a full injector; carries the task
/// back so the producer can apply backpressure (retry, shed, or run
/// inline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectorFullError<T>(pub T);

impl<T> std::fmt::Display for InjectorFullError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injector is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for InjectorFullError<T> {}

/// A lock-free bounded multi-producer multi-consumer queue (Vyukov's
/// bounded MPMC) for injecting external tasks into a work-stealing pool.
///
/// ```
/// use hermes_deque::Injector;
/// let q = Injector::with_capacity(4);
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// assert_eq!(q.pop(), Some(1)); // FIFO
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
pub struct Injector<T> {
    buffer: Box<[Slot<T>]>,
    /// `capacity - 1`; the capacity is rounded up to a power of two so
    /// ring offsets are a mask, not a modulo.
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

// SAFETY: the queue transfers `T` values between threads by value; the
// slot protocol (documented on `Slot`) gives each ticket holder
// exclusive access to its payload cell, so `T: Send` is the only
// requirement.
unsafe impl<T: Send> Send for Injector<T> {}
// SAFETY: same argument — shared access is mediated entirely by the
// atomic ticket counters and per-slot tags.
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Injector<T> {
    /// An injector holding at most `capacity` tasks (rounded up to the
    /// next power of two, minimum 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "injector capacity must be positive");
        let cap = capacity.next_power_of_two().max(2);
        Injector {
            buffer: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// Maximum number of tasks the injector can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Push a task at the back (any thread).
    ///
    /// # Errors
    ///
    /// Returns [`InjectorFullError`] with the task when the ring is
    /// full — the queue never blocks and never reallocates.
    pub fn push(&self, task: T) -> Result<(), InjectorFullError<T>> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            // Acquire pairs with the consumer's Release tag store: once
            // we see `seq == pos`, the previous round's payload read is
            // ordered before our overwrite.
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.wrapping_sub(pos) as isize {
                0 => {
                    // Slot free for this ticket: claim it.
                    match self.enqueue_pos.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the successful CAS made `pos` our
                            // ticket; no other producer can claim it and
                            // no consumer touches the cell until the tag
                            // below publishes `pos + 1`. We hold the
                            // only reference to the cell.
                            unsafe { (*slot.value.get()).write(task) };
                            // Release publishes the payload to the
                            // consumer's Acquire tag load.
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(current) => pos = current,
                    }
                }
                d if d < 0 => {
                    // The slot has not been handed back to this ring
                    // round: either it still holds a value from one
                    // round ago (the queue is full) or a consumer
                    // claimed it and has not yet republished the tag
                    // (mid-pop). Report "full" immediately in both
                    // cases — waiting out a stalled consumer here would
                    // make push blocking, not lock-free; callers own
                    // the backpressure policy and may simply retry.
                    return Err(InjectorFullError(task));
                }
                _ => {
                    // Another producer claimed this ticket first; chase
                    // the head.
                    pos = self.enqueue_pos.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Pop the oldest task (any thread). Returns `None` when the queue
    /// is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            // Acquire pairs with the producer's Release tag store,
            // publishing the payload write.
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.wrapping_sub(pos.wrapping_add(1)) as isize {
                0 => {
                    // Slot filled for this ticket: claim it.
                    match self.dequeue_pos.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the successful CAS made `pos` our
                            // ticket; the producer's Release/our Acquire
                            // ordered its write before this read, and no
                            // other party touches the cell until the tag
                            // below republishes it for the next round.
                            let task = unsafe { (*slot.value.get()).assume_init_read() };
                            // Release orders our payload read before the
                            // next round's overwrite.
                            slot.seq
                                .store(pos.wrapping_add(self.capacity()), Ordering::Release);
                            return Some(task);
                        }
                        Err(current) => pos = current,
                    }
                }
                d if d < 0 => {
                    // The slot is still free for the *push* of this
                    // ticket: either nothing has been enqueued here yet
                    // (empty) or a producer claimed the ticket and has
                    // not yet published the payload (mid-push). Report
                    // "empty" immediately in both cases — consumers
                    // drain in strict ticket order, so there is nothing
                    // earlier to take, and spinning until a stalled
                    // producer resumes would trap every polling worker
                    // behind one preempted submitter.
                    return None;
                }
                _ => {
                    // Another consumer claimed this ticket first.
                    pos = self.dequeue_pos.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Number of tasks currently queued. Racy by nature under
    /// concurrency; exact when no producer or consumer is mid-flight.
    #[must_use]
    pub fn len(&self) -> usize {
        let tail = self.enqueue_pos.load(Ordering::Relaxed);
        let head = self.dequeue_pos.load(Ordering::Relaxed);
        tail.wrapping_sub(head).min(self.capacity())
    }

    /// Whether the queue appears empty (same caveat as
    /// [`len`](Self::len)).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // Drain whatever is still queued so payloads are dropped. `&mut
        // self` means no concurrent access; plain pops are fine.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = Injector::with_capacity(8);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 8);
        assert_eq!(q.push(99), Err(InjectorFullError(99)));
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Injector::<u8>::with_capacity(1).capacity(), 2);
        assert_eq!(Injector::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(Injector::<u8>::with_capacity(8).capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = Injector::<u8>::with_capacity(0);
    }

    #[test]
    fn ring_reuse_across_many_rounds() {
        // Tickets wrap the ring repeatedly; every round must hand slots
        // back cleanly.
        let q = Injector::with_capacity(4);
        for round in 0u64..100 {
            for i in 0..4 {
                q.push(round * 10 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(q.pop(), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn drop_releases_queued_values() {
        let v = Arc::new(());
        {
            let q = Injector::with_capacity(4);
            q.push(Arc::clone(&v)).unwrap();
            q.push(Arc::clone(&v)).unwrap();
        }
        assert_eq!(Arc::strong_count(&v), 1, "drop drained the ring");
    }

    /// Small cross-thread exchange that stays tractable under Miri: two
    /// producers, two consumers, exactly-once delivery and per-producer
    /// FIFO. (The big interleaved proptests live in
    /// `tests/injector_proptests.rs` and are `#[cfg_attr(miri,
    /// ignore)]`d; this is Miri's concurrent coverage of the slot
    /// protocol.)
    #[test]
    fn small_concurrent_exchange_is_exact() {
        const PER_PRODUCER: u64 = if cfg!(miri) { 40 } else { 2_000 };
        const PRODUCERS: u64 = 2;
        let q = Arc::new(Injector::with_capacity(8));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut item = (p << 32) | i;
                        loop {
                            match q.push(item) {
                                Ok(()) => break,
                                Err(InjectorFullError(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut idle = 0u32;
                    // Drain until both producers are long done and the
                    // ring reads empty repeatedly.
                    while idle < 200 {
                        match q.pop() {
                            Some(v) => {
                                got.push(v);
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = Vec::new();
        let mut per_consumer: Vec<Vec<u64>> = Vec::new();
        for h in consumers {
            let got = h.join().unwrap();
            all.extend_from_slice(&got);
            per_consumer.push(got);
        }
        // Tail drain in case both consumers went idle early.
        while let Some(v) = q.pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..PRODUCERS)
            .flat_map(|p| (0..PER_PRODUCER).map(move |i| (p << 32) | i))
            .collect();
        assert_eq!(all, expect, "exactly-once, no loss, no duplication");
        // FIFO per producer within each consumer's observation order.
        for got in &per_consumer {
            for p in 0..PRODUCERS {
                let seqs: Vec<u64> = got
                    .iter()
                    .filter(|v| *v >> 32 == p)
                    .map(|v| v & 0xFFFF_FFFF)
                    .collect();
                assert!(
                    seqs.windows(2).all(|w| w[0] < w[1]),
                    "producer {p} order inverted: {seqs:?}"
                );
            }
        }
    }
}
