//! Class-aware injector cell: priority lanes over Vyukov rings.
//!
//! A [`ClassInjector`] is one *cell* of a sharded pool front door: a
//! small fixed set of [`Injector`] rings (one per request class, plus a
//! lane for deadline-bearing normal work), drained in strict priority
//! order. Each lane keeps the underlying ring's guarantees —
//! exactly-once consumption, FIFO per producer, bounded, non-blocking —
//! so the cell as a whole is lock-free and never reorders work *within*
//! a class; it only lets urgent classes overtake patient ones at the
//! pop.
//!
//! Strict priority drain means a saturated high lane starves the lanes
//! below it. That is deliberate: fairness across classes is admission
//! control's job (shed or refuse work *before* it queues), not the
//! queue's. A queue that silently promotes starving work would defeat
//! the class contract the serving layer sells.

use crate::{Injector, InjectorFullError};

/// Drain lanes of a [`ClassInjector`], most urgent first.
///
/// `Deadline` sits between `High` and `Normal`: it holds normal-class
/// work that was admitted *with* a latency deadline, which the pop
/// order lets overtake plain normal work without ever displacing the
/// high class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Lane {
    /// Latency-critical work; drained first, never shed by admission.
    High = 0,
    /// Normal-class work carrying a deadline; drained before plain
    /// normal work.
    Deadline = 1,
    /// The default class.
    Normal = 2,
    /// Best-effort work; drained last, shed first under load.
    Background = 3,
}

/// Number of lanes in every [`ClassInjector`].
pub const LANE_COUNT: usize = 4;

impl Lane {
    /// Every lane, in drain (priority) order.
    pub const ALL: [Lane; LANE_COUNT] =
        [Lane::High, Lane::Deadline, Lane::Normal, Lane::Background];

    /// Stable lowercase name (artifact/metrics label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lane::High => "high",
            Lane::Deadline => "deadline",
            Lane::Normal => "normal",
            Lane::Background => "background",
        }
    }
}

/// One cell of a sharded, class-aware injection front door: a bounded
/// MPMC queue per [`Lane`], popped in strict priority order.
///
/// Like the underlying [`Injector`], any thread may push or pop; there
/// is no owner.
#[derive(Debug)]
pub struct ClassInjector<T> {
    lanes: [Injector<T>; LANE_COUNT],
}

impl<T> ClassInjector<T> {
    /// A cell whose every lane holds up to `capacity` tasks (rounded up
    /// to a power of two, minimum 2, per the [`Injector`] contract).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ClassInjector {
            lanes: std::array::from_fn(|_| Injector::with_capacity(capacity)),
        }
    }

    /// Per-lane capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lanes[0].capacity()
    }

    /// Push a task into `lane`.
    ///
    /// # Errors
    ///
    /// Returns [`InjectorFullError`] with the task if that lane's ring
    /// is full; callers back off (the lanes are bounded by design).
    pub fn push(&self, task: T, lane: Lane) -> Result<(), InjectorFullError<T>> {
        self.lanes[lane as usize].push(task)
    }

    /// Pop the next task in drain order: the oldest task of the most
    /// urgent non-empty lane.
    pub fn pop(&self) -> Option<T> {
        for lane in &self.lanes {
            if let Some(task) = lane.pop() {
                return Some(task);
            }
        }
        None
    }

    /// Tasks currently queued across all lanes. Racy under concurrent
    /// pushes/pops, like [`Injector::len`].
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Injector::len).sum()
    }

    /// Tasks currently queued in one lane.
    #[must_use]
    pub fn lane_len(&self, lane: Lane) -> usize {
        self.lanes[lane as usize].len()
    }

    /// Whether every lane appears empty (same caveat as [`len`](Self::len)).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(Injector::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_strict_priority_order() {
        let cell = ClassInjector::with_capacity(8);
        cell.push("bg", Lane::Background).unwrap();
        cell.push("norm-1", Lane::Normal).unwrap();
        cell.push("dl", Lane::Deadline).unwrap();
        cell.push("hi", Lane::High).unwrap();
        cell.push("norm-2", Lane::Normal).unwrap();
        assert_eq!(cell.len(), 5);
        assert_eq!(cell.pop(), Some("hi"));
        assert_eq!(cell.pop(), Some("dl"));
        // FIFO within a lane.
        assert_eq!(cell.pop(), Some("norm-1"));
        assert_eq!(cell.pop(), Some("norm-2"));
        assert_eq!(cell.pop(), Some("bg"));
        assert_eq!(cell.pop(), None);
        assert!(cell.is_empty());
    }

    #[test]
    fn lanes_are_independently_bounded() {
        let cell = ClassInjector::with_capacity(2);
        cell.push(1, Lane::Normal).unwrap();
        cell.push(2, Lane::Normal).unwrap();
        // Normal is full; the task comes back…
        assert_eq!(cell.push(3, Lane::Normal), Err(InjectorFullError(3)));
        // …but other lanes still accept.
        cell.push(4, Lane::High).unwrap();
        assert_eq!(cell.lane_len(Lane::Normal), 2);
        assert_eq!(cell.lane_len(Lane::High), 1);
        assert_eq!(cell.pop(), Some(4));
        assert_eq!(cell.pop(), Some(1));
    }

    #[test]
    fn concurrent_producers_one_consumer_exactly_once() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let cell = Arc::new(ClassInjector::with_capacity(1024));
        let producers = 4;
        let per = 500;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let lane = Lane::ALL[i % LANE_COUNT];
                        let mut v = (p * per + i) as u64;
                        while let Err(e) = cell.push(v, lane) {
                            v = e.0;
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let mut seen = HashSet::new();
        while seen.len() < producers * per {
            if let Some(v) = cell.pop() {
                assert!(seen.insert(v), "task {v} delivered twice");
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cell.pop().is_none());
    }

    #[test]
    fn lane_metadata_is_stable() {
        assert_eq!(Lane::ALL.len(), LANE_COUNT);
        assert_eq!(Lane::High as usize, 0);
        assert_eq!(Lane::Background as usize, LANE_COUNT - 1);
        assert_eq!(Lane::Deadline.name(), "deadline");
        let cell: ClassInjector<u8> = ClassInjector::with_capacity(3);
        assert_eq!(cell.capacity(), 4, "ring capacity rounds up to pow2");
    }
}
