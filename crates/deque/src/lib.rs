//! # hermes-deque
//!
//! Work-stealing deques for the HERMES runtime.
//!
//! A work-stealing deque holds a worker's pending tasks in work-first
//! order: the owner pushes and pops at the **tail** (most immediate work),
//! thieves steal from the **head** (least immediate work). Two
//! implementations are provided behind the [`TaskDeque`] trait:
//!
//! * [`TheDeque`] — the classic Cilk-5 *THE* protocol exactly as sketched
//!   in the paper's Fig. 2: head/tail indices over a ring buffer, a
//!   deque-wide lock taken by every steal and by pop only on potential
//!   conflict (optimistic locking).
//! * [`LockFreeDeque`] — an atomics-only Chase–Lev deque: an
//!   `UnsafeCell`/`MaybeUninit` ring indexed by `top`/`bottom`, steals
//!   racing on a CAS over `top`, with the published acquire/release +
//!   explicit-fence orderings for weak memory models (see the module
//!   docs for the per-access inventory). No lock anywhere on the
//!   push/pop/steal paths — the contention profile the
//!   `sweep --ablate-deque` comparison measures against THE.
//!
//! Both deques are **bounded** (like Cilk's spawn-depth-bounded deque):
//! [`TaskDeque::push`] reports overflow instead of reallocating, so a
//! runtime can fall back to inline execution.
//!
//! The crate also provides the [`Injector`], a lock-free bounded MPMC
//! queue (Vyukov's bounded queue) that serves as the pool's *front
//! door*: external producer threads push tasks in, and every worker
//! polls it between its local pop and its steal sweep. Unlike the
//! deques it has no owner — any thread may push or pop. For sharded,
//! class-aware front doors the [`ClassInjector`] composes one such ring
//! per request class ([`Lane`]) and drains them in strict priority
//! order — the building block of the runtime's per-clock-domain
//! injector cells.
//!
//! ## Ownership discipline
//!
//! `push` and `pop` must only be called by the deque's owning worker;
//! `steal` and `len` may be called from any thread. For [`TheDeque`]
//! (whose slots sit behind per-slot guards) violating the discipline is
//! a logic error only; for [`LockFreeDeque`] it is undefined behaviour
//! — concurrent owners would race on the unguarded ring. Debug builds
//! of [`LockFreeDeque`] assert the single-owner rule by thread id, and
//! the runtime upholds it structurally (one deque per worker). All
//! `unsafe` in this crate is confined to the `lock_free` and `injector`
//! modules and documented access by access; everything else is
//! `deny(unsafe_code)`.
//!
//! ```
//! use hermes_deque::{TaskDeque, TheDeque, Steal};
//! let dq = TheDeque::with_capacity(8);
//! dq.push(1).unwrap();
//! dq.push(2).unwrap();
//! // head: least immediate; one task was left behind at commit time.
//! assert_eq!(dq.steal(), Steal::Success { task: 1, victim_len: 1 });
//! assert_eq!(dq.pop(), Some(2)); // tail: most immediate
//! assert_eq!(dq.pop(), None);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod class;
mod injector;
mod lock_free;
mod the_deque;

pub use class::{ClassInjector, Lane, LANE_COUNT};
pub use injector::{Injector, InjectorFullError};
pub use lock_free::LockFreeDeque;
pub use the_deque::TheDeque;

/// Outcome of a steal attempt.
///
/// The two failure modes are distinguished because they mean different
/// things to a scheduler (and to the deque ablation): `Empty` is
/// *starvation* — the victim had nothing to take — while `Retry` is
/// *contention* — work was present but another party won the race for
/// it, so the same victim may be worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// A task was stolen from the head of the victim's deque.
    Success {
        /// The stolen task.
        task: T,
        /// Tasks remaining in the victim's deque at the instant this
        /// steal committed. Schedulers that feed a victim's length to a
        /// controller (HERMES `on_steal`) must use this snapshot: a
        /// separate `len()` read after the fact can observe later pushes,
        /// pops, or other thieves' steals and mis-drive the controller.
        victim_len: usize,
    },
    /// The victim's deque was empty before the thief committed.
    Empty,
    /// The victim had work, but the thief lost the race for it to the
    /// owner or another thief.
    Retry,
}

impl<T> Steal<T> {
    /// Convert to an `Option`, discarding the distinction's provenance.
    #[must_use]
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success { task, .. } => Some(task),
            Steal::Empty | Steal::Retry => None,
        }
    }

    /// Whether the steal succeeded.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success { .. })
    }

    /// Whether the attempt failed to a lost race (contention, not
    /// starvation).
    #[must_use]
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// Error returned when pushing onto a full deque; returns the task so the
/// caller can run it inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeFullError<T>(pub T);

impl<T> std::fmt::Display for DequeFullError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deque is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for DequeFullError<T> {}

/// Common interface of the work-stealing deques, letting the runtime and
/// the ablation benchmarks swap implementations.
pub trait TaskDeque<T>: Send + Sync {
    /// Push a task at the tail (owner only).
    ///
    /// # Errors
    ///
    /// Returns [`DequeFullError`] with the task if the deque is at
    /// capacity; callers typically execute the task inline instead.
    fn push(&self, task: T) -> Result<(), DequeFullError<T>>;

    /// Pop the most recent task from the tail (owner only).
    fn pop(&self) -> Option<T>;

    /// Steal the oldest task from the head (any thread).
    fn steal(&self) -> Steal<T>;

    /// Number of tasks currently queued. Racy by nature off-owner; exact
    /// when called by the owner with no concurrent steals.
    fn len(&self) -> usize;

    /// Whether the deque appears empty (same caveat as [`len`](Self::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of tasks the deque can hold.
    fn capacity(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_enum_conversions() {
        let hit = Steal::Success {
            task: 7,
            victim_len: 3,
        };
        assert_eq!(hit.success(), Some(7));
        assert_eq!(Steal::<i32>::Empty.success(), None);
        assert_eq!(Steal::<i32>::Retry.success(), None);
        assert!(hit.is_success());
        assert!(!Steal::<i32>::Empty.is_success());
        assert!(!Steal::<i32>::Retry.is_success());
        assert!(Steal::<i32>::Retry.is_retry());
        assert!(!Steal::<i32>::Empty.is_retry());
    }

    #[test]
    fn deque_full_error_carries_task() {
        let e = DequeFullError(42);
        assert_eq!(e.0, 42);
        assert_eq!(e.to_string(), "deque is full");
    }
}
