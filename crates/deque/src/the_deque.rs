//! The Cilk-5 *THE* protocol deque (paper Fig. 2, Algorithms 2.2–2.4).

use crate::{DequeFullError, Steal, TaskDeque};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

/// The classic THE-protocol work-stealing deque.
///
/// Head (`H`) and tail (`T`) indices grow monotonically over a ring
/// buffer; the owner pushes/pops at the tail, thieves steal at the head.
/// Every steal takes the deque lock; a pop takes it only when it may
/// conflict with a thief over the last item — the optimistic locking the
/// paper describes as "reminiscent of optimistic locking … known as THE".
///
/// This port stores tasks in per-slot guards so the implementation is
/// entirely safe Rust; the index protocol is unchanged. (The paper's
/// Fig. 2 transcription has `T` pointing *at* the last task; we use the
/// equivalent Cilk-5 convention of `T` pointing one past it, which avoids
/// index underflow. Observable behaviour is identical.)
///
/// ```
/// use hermes_deque::{TaskDeque, TheDeque, Steal};
/// let dq: TheDeque<u32> = TheDeque::with_capacity(4);
/// dq.push(10).unwrap();
/// dq.push(20).unwrap();
/// assert_eq!(dq.len(), 2);
/// assert_eq!(dq.steal(), Steal::Success { task: 10, victim_len: 1 });
/// assert_eq!(dq.pop(), Some(20));
/// assert_eq!(dq.steal(), Steal::Empty);
/// ```
pub struct TheDeque<T> {
    /// Index of the first queued task; advanced by steals (under `lock`).
    head: AtomicUsize,
    /// Index one past the last queued task; written only by the owner.
    tail: AtomicUsize,
    /// The THE lock (the paper's `LOCK(w)`/`UNLOCK(w)`).
    lock: Mutex<()>,
    slots: Box<[Mutex<Option<T>>]>,
    mask: usize,
}

/// Default capacity: ample for spawn-depth-bounded deques (Cilk deques
/// hold continuations of the active call spine plus unstolen spawns).
const DEFAULT_CAPACITY: usize = 8_192;

impl<T> TheDeque<T> {
    /// A deque with the default capacity (8192 tasks).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A deque holding at most `capacity` tasks (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let cap = capacity.next_power_of_two();
        let slots = (0..cap).map(|_| Mutex::new(None)).collect::<Vec<_>>();
        TheDeque {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            lock: Mutex::new(()),
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
        }
    }

    fn slot(&self, index: usize) -> &Mutex<Option<T>> {
        &self.slots[index & self.mask]
    }

    fn take_slot(&self, index: usize) -> T {
        self.slot(index)
            .lock()
            .take()
            .expect("THE protocol violation: slot already consumed")
    }
}

impl<T> Default for TheDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> TaskDeque<T> for TheDeque<T> {
    /// Paper Algorithm 2.2: store the task and advance `T`.
    fn push(&self, task: T) -> Result<(), DequeFullError<T>> {
        let t = self.tail.load(SeqCst);
        let h = self.head.load(SeqCst);
        // `head` can sit one past its resting place while a thief is
        // mid-steal, so the unlocked length estimate is off by at most
        // one. Away from capacity that is harmless; in the tight zone we
        // arbitrate under the THE lock, which quiesces thieves and makes
        // "every index below head is consumed" exact.
        let len_estimate = t.saturating_sub(h);
        if len_estimate + 2 > self.slots.len() {
            let _guard = self.lock.lock();
            let h = self.head.load(SeqCst);
            if t - h >= self.slots.len() {
                return Err(DequeFullError(task));
            }
            let prev = self.slot(t).lock().replace(task);
            debug_assert!(prev.is_none(), "push onto an unconsumed slot");
            self.tail.store(t + 1, SeqCst);
            return Ok(());
        }
        let prev = self.slot(t).lock().replace(task);
        debug_assert!(prev.is_none(), "push onto an unconsumed slot");
        self.tail.store(t + 1, SeqCst);
        Ok(())
    }

    /// Paper Algorithm 2.3: optimistically decrement `T`; on potential
    /// conflict with a thief over the last task, arbitrate under the lock.
    fn pop(&self) -> Option<T> {
        let t = self.tail.load(SeqCst);
        if self.head.load(SeqCst) >= t {
            return None; // empty; nothing to contend for
        }
        let nt = t - 1;
        self.tail.store(nt, SeqCst);
        let h = self.head.load(SeqCst);
        if h > nt {
            // A thief may have taken (or be taking) the last task:
            // restore, then retry holding the THE lock.
            self.tail.store(t, SeqCst);
            let _guard = self.lock.lock();
            self.tail.store(nt, SeqCst);
            if self.head.load(SeqCst) > nt {
                self.tail.store(t, SeqCst);
                return None;
            }
        }
        Some(self.take_slot(nt))
    }

    /// Paper Algorithm 2.4: steals always lock, advance `H`, and back off
    /// if the deque turned out to be empty.
    ///
    /// A failed attempt reports [`Steal::Retry`] when the deque held work
    /// at the moment the thief committed to stealing (before taking the
    /// lock) but was drained — by the owner or by thieves ahead in the
    /// lock queue — before this thief got its turn: contention, not
    /// starvation.
    fn steal(&self) -> Steal<T> {
        let saw_work = self.len() > 0;
        let _guard = self.lock.lock();
        let h = self.head.load(SeqCst);
        self.head.store(h + 1, SeqCst);
        let t = self.tail.load(SeqCst);
        if h + 1 > t {
            self.head.store(h, SeqCst);
            return if saw_work { Steal::Retry } else { Steal::Empty };
        }
        // The remaining length is exact here: `head` is frozen by the THE
        // lock we hold and `t` was read after our commit.
        Steal::Success {
            task: self.take_slot(h),
            victim_len: t - (h + 1),
        }
    }

    fn len(&self) -> usize {
        // `tail` can transiently sit below `head` mid-pop; saturate.
        self.tail
            .load(SeqCst)
            .saturating_sub(self.head.load(SeqCst))
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<T> std::fmt::Debug for TheDeque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TheDeque")
            .field("head", &self.head.load(SeqCst))
            .field("tail", &self.tail.load(SeqCst))
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner_fifo_for_thieves() {
        let dq = TheDeque::with_capacity(8);
        for i in 0..4 {
            dq.push(i).unwrap();
        }
        // Owner pops the most immediate (LIFO).
        assert_eq!(dq.pop(), Some(3));
        // Thief steals the least immediate (FIFO), seeing the remaining
        // length at each commit.
        assert_eq!(
            dq.steal(),
            Steal::Success {
                task: 0,
                victim_len: 2
            }
        );
        assert_eq!(
            dq.steal(),
            Steal::Success {
                task: 1,
                victim_len: 1
            }
        );
        assert_eq!(dq.pop(), Some(2));
        assert_eq!(dq.pop(), None);
        assert_eq!(dq.steal(), Steal::Empty);
    }

    #[test]
    fn capacity_is_honored() {
        let dq = TheDeque::with_capacity(2);
        assert_eq!(dq.capacity(), 2);
        dq.push(1).unwrap();
        dq.push(2).unwrap();
        assert_eq!(dq.push(3), Err(DequeFullError(3)));
        // Consuming one frees a slot (ring reuse).
        assert_eq!(
            dq.steal(),
            Steal::Success {
                task: 1,
                victim_len: 1
            }
        );
        dq.push(3).unwrap();
        assert_eq!(dq.pop(), Some(3));
        assert_eq!(dq.pop(), Some(2));
    }

    #[test]
    fn ring_wraps_many_times() {
        let dq = TheDeque::with_capacity(4);
        for round in 0..100 {
            dq.push(round * 2).unwrap();
            dq.push(round * 2 + 1).unwrap();
            assert_eq!(
                dq.steal(),
                Steal::Success {
                    task: round * 2,
                    victim_len: 1
                }
            );
            assert_eq!(dq.pop(), Some(round * 2 + 1));
        }
        assert!(dq.is_empty());
    }

    #[test]
    fn pop_on_empty_is_none_repeatedly() {
        let dq: TheDeque<u8> = TheDeque::with_capacity(4);
        for _ in 0..3 {
            assert_eq!(dq.pop(), None);
            assert_eq!(dq.steal(), Steal::Empty);
        }
        dq.push(9).unwrap();
        assert_eq!(dq.pop(), Some(9));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TheDeque::<u8>::with_capacity(0);
    }

    #[test]
    #[ignore = "long-running stress; CI deque-concurrency lane runs it via -- --ignored"]
    fn concurrent_owner_and_thieves_consume_each_item_once() {
        // Stress: one owner pushes/pops, three thieves steal; every item
        // must be consumed exactly once.
        let dq = Arc::new(TheDeque::with_capacity(1024));
        let n: usize = 20_000;
        let thieves = 3;
        let stolen: Vec<_> = (0..thieves)
            .map(|_| {
                let dq = Arc::clone(&dq);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0;
                    while misses < 10_000 {
                        match dq.steal() {
                            Steal::Success { task: v, .. } => {
                                got.push(v);
                                misses = 0;
                            }
                            Steal::Empty | Steal::Retry => {
                                misses += 1;
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut popped = Vec::new();
        for i in 0..n {
            while dq.push(i).is_err() {
                if let Some(v) = dq.pop() {
                    popped.push(v);
                }
            }
            if i % 3 == 0 {
                if let Some(v) = dq.pop() {
                    popped.push(v);
                }
            }
        }
        while let Some(v) = dq.pop() {
            popped.push(v);
        }
        let mut all = popped;
        for h in stolen {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        assert_eq!(all, expect, "each task consumed exactly once");
    }

    #[test]
    fn debug_output_mentions_indices() {
        let dq: TheDeque<u8> = TheDeque::with_capacity(4);
        let s = format!("{dq:?}");
        assert!(s.contains("head") && s.contains("tail"));
    }
}
