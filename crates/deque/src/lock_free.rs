//! An atomics-only Chase–Lev work-stealing deque.
//!
//! This module is the one place in the crate that uses `unsafe`: task
//! storage is an [`UnsafeCell`]/[`MaybeUninit`] ring indexed by the
//! Chase–Lev `top`/`bottom` protocol, with the acquire/release +
//! explicit-fence orderings published for weak memory models (Lê,
//! Pop, Cohen & Zappa Nardelli, *Correct and Efficient Work-Stealing
//! for Weak Memory Models*, PPoPP '13). See the `Memory orderings`
//! section below for the why-this-fence inventory; DESIGN.md §Deque
//! carries the same table next to the slot-reuse protocol.

#![allow(unsafe_code)]

use crate::{DequeFullError, Steal, TaskDeque};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicUsize, Ordering};

/// One ring slot: the task payload plus a *round tag* arbitrating ring
/// reuse between a consumer (thief or owner) and the push that next
/// lands on the same physical slot.
///
/// `seq == i` means the slot is free for the push at absolute index
/// `i`. Pushes never change the tag. A *claiming* consumer of index `i`
/// (thief CAS, or pop's last-task CAS win — after which `bottom` can
/// never revisit `i`) stores `i + capacity` after reading the payload;
/// pop's multi-item path leaves the tag at `i` because its decrement
/// parks `bottom` at `i`, so the owner's next push onto this position
/// re-uses absolute index `i` itself (`bottom` is not monotone!). The
/// push at the tagged index acquire-loads the tag before overwriting.
/// That handshake is what makes the payload accesses data-race-free
/// even though a thief reads the slot *after* its CAS (see
/// [`LockFreeDeque::steal`] for why the read sits there).
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Work-stealing deque with an atomics-only steal path (Chase–Lev).
///
/// Where [`TheDeque`](crate::TheDeque) serialises all thieves through
/// the THE lock, here a steal is one acquire load, one `SeqCst` fence,
/// and one `SeqCst` compare-and-swap on `top` — no lock anywhere on the
/// push/pop/steal paths. This is the deque the `--ablate-deque` sweep
/// compares against THE to measure what the paper's lock actually
/// costs under contention.
///
/// # Ownership contract
///
/// `push` and `pop` must only be called from one thread at a time (the
/// deque's *owner*); `steal`, `len`, and `capacity` are safe from any
/// thread. Unlike the previous per-slot-mutex implementation, violating
/// the owner discipline here is **undefined behaviour**, not just a
/// logic error: two concurrent pushes would race on the same
/// [`UnsafeCell`]. Debug builds assert the single-owner rule by thread
/// id; the runtime upholds it structurally (each worker owns exactly
/// one deque).
///
/// ```
/// use hermes_deque::{LockFreeDeque, TaskDeque, Steal};
/// let dq = LockFreeDeque::with_capacity(4);
/// dq.push("a").unwrap();
/// dq.push("b").unwrap();
/// assert_eq!(dq.steal(), Steal::Success { task: "a", victim_len: 1 });
/// assert_eq!(dq.pop(), Some("b"));
/// ```
///
/// # Memory orderings
///
/// | access | ordering | why |
/// |---|---|---|
/// | `push`: load `top` | `Acquire` | pairs with the thieves' `SeqCst` CAS so the full check sees every claimed index; stale-low `top` only *over*-estimates occupancy (conservative full check) |
/// | `push`: load `slot.seq` | `Acquire` | pairs with the consumer's `Release` tag store: orders the old round's payload read before this round's overwrite |
/// | `push`: store `bottom` | `Release` | publishes the payload write to thieves that acquire-load `bottom` |
/// | `pop`: store `bottom` (decrement) | `Relaxed` + `SeqCst` fence | the fence makes the decrement globally visible before `top` is read — either the owner sees a concurrent thief's `top` increment, or the thief sees the decremented `bottom`; one of them backs off the last task |
/// | `pop`: load `top` (after fence) | `Relaxed` | ordered by the fence above |
/// | `pop`/`steal`: CAS `top` | `SeqCst` / failure `Relaxed` | the commit point all parties race on; total order keeps the last-task arbitration sound |
/// | `steal`: load `top` | `Acquire` | observes prior thieves' slot drains (their tag stores precede their CAS in the release sequence) |
/// | `steal`: `SeqCst` fence, then load `bottom` `Acquire` | | the mirror half of pop's fence: a thief that read `top` before an owner's decrement must read the decremented `bottom`; `Acquire` additionally publishes the payload written by `push` |
/// | `steal`/`pop`: store `slot.seq` | `Release` | releases the payload *read* to the push that reuses the slot |
/// | `steal`: re-load `bottom` for `victim_len` | `Acquire` | commit-point length snapshot; taken *before* the tag release so the owner cannot yet refill past `t + capacity` and the bound `victim_len < capacity` holds |
///
/// The slot payload is read *after* the claiming CAS (the textbook
/// Chase–Lev reads it before, discarding the value when the CAS fails).
/// A pre-CAS read is benign only for word-sized payloads that tolerate
/// a torn, discarded read; for a general `T` it is a data race — Miri
/// rejects it. Post-CAS the claim is exclusive, and the `seq` handshake
/// keeps the owner from overwriting the slot until the read has
/// happened, so every payload access is properly synchronised.
pub struct LockFreeDeque<T> {
    /// Absolute index of the first queued task; thieves advance it by CAS.
    top: AtomicUsize,
    /// Absolute index one past the last queued task; written only by the
    /// owner (pop's transient decrement included).
    bottom: AtomicUsize,
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Debug-build owner assertion: the first `push`/`pop` caller claims
    /// the owner role, later owner calls must come from the same thread.
    #[cfg(debug_assertions)]
    owner: AtomicUsize,
}

// SAFETY: the ring holds `T` values that move between threads (a thief
// takes ownership of a task the owner pushed), which is exactly `T:
// Send`. All shared mutable state is either atomic or an `UnsafeCell`
// payload whose accesses are serialised by the index protocol plus the
// per-slot `seq` handshake (argued field by field at each access site).
unsafe impl<T: Send> Send for LockFreeDeque<T> {}
// SAFETY: as above — `&LockFreeDeque` only exposes protocol-arbitrated
// access to the cells, and the protocol never hands the same round of
// the same slot to two parties.
unsafe impl<T: Send> Sync for LockFreeDeque<T> {}

const DEFAULT_CAPACITY: usize = 8_192;

impl<T> LockFreeDeque<T> {
    /// A deque with the default capacity (8192 tasks).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A deque holding at most `capacity` tasks (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let cap = capacity.next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                // Slot i is born ready for the push at absolute index i.
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>();
        LockFreeDeque {
            top: AtomicUsize::new(0),
            bottom: AtomicUsize::new(0),
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            #[cfg(debug_assertions)]
            owner: AtomicUsize::new(0),
        }
    }

    fn slot(&self, index: usize) -> &Slot<T> {
        &self.slots[index & self.mask]
    }

    /// Move the payload of absolute index `index` out of the ring and
    /// release the slot to the push of round `index + capacity`.
    ///
    /// For use on pop's last-task CAS-win path (steals inline the same
    /// sequence so their `victim_len` snapshot can sit between the read
    /// and the tag release). After the claiming CAS, `top` (and hence
    /// every later `bottom`) sits above `index`, so the next push onto
    /// this ring position arrives at absolute index `index + capacity`:
    /// exactly the tag stored here.
    ///
    /// # Safety
    ///
    /// The caller must hold the exclusive consumption right for `index`
    /// via a successful claiming CAS on `top`, and the payload of
    /// `index` must have been published (a `bottom` > `index` was
    /// acquire-loaded after the owner's release store, or the caller is
    /// the owner itself).
    unsafe fn take_slot(&self, index: usize) -> T {
        let slot = self.slot(index);
        // SAFETY: exclusive consumption right (caller contract) means no
        // other thread reads this round, and the `seq` handshake keeps
        // the owner's next-round push out until the Release store below.
        let task = unsafe { (*slot.value.get()).assume_init_read() };
        slot.seq
            .store(index.wrapping_add(self.slots.len()), Ordering::Release);
        task
    }

    /// Move the payload of absolute index `index` out of the ring on
    /// pop's multi-item fast path, where the owner consumes *without*
    /// claiming through `top`.
    ///
    /// No `seq` store: after this pop `bottom` rests at `index`, so the
    /// next push onto this ring position re-uses absolute index `index`
    /// itself — which is the tag the slot has carried since before this
    /// round's push (pushes never change `seq`). Retagging
    /// `index + capacity` here would deadlock the ring against the
    /// owner's own re-push. (Both reads are owner-side, so program
    /// order already sequences them; no release edge is needed.)
    ///
    /// # Safety
    ///
    /// Caller must be the owner on pop's `t < nb` path: the post-fence
    /// `top` read guarantees no thief can claim `index`, and the
    /// payload is the owner's own earlier push.
    unsafe fn take_slot_unclaimed(&self, index: usize) -> T {
        let slot = self.slot(index);
        debug_assert_eq!(slot.seq.load(Ordering::Relaxed), index);
        // SAFETY: owner-exclusive consumption right (caller contract).
        unsafe { (*slot.value.get()).assume_init_read() }
    }

    /// Debug-build check that `push`/`pop` stay on one thread.
    #[inline]
    fn assert_owner(&self) {
        #[cfg(debug_assertions)]
        {
            // Thread ids from a monotone counter; 0 = unclaimed.
            thread_local! {
                static SELF_ID: u64 = {
                    static NEXT: AtomicUsize = AtomicUsize::new(1);
                    NEXT.fetch_add(1, Ordering::Relaxed) as u64
                };
            }
            let me = SELF_ID.with(|id| *id) as usize;
            match self
                .owner
                .compare_exchange(0, me, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {}
                Err(current) => debug_assert_eq!(
                    current, me,
                    "LockFreeDeque owner discipline violated: push/pop from two threads"
                ),
            }
        }
    }
}

impl<T> Default for LockFreeDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for LockFreeDeque<T> {
    fn drop(&mut self) {
        // `&mut self`: every concurrent operation has completed, so the
        // live payloads are exactly the rounds in [top, bottom).
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        for index in t..b {
            let slot = self.slot(index);
            // SAFETY: exclusive access; [top, bottom) rounds are
            // initialised and unconsumed.
            unsafe { (*slot.value.get()).assume_init_drop() };
        }
    }
}

impl<T: Send> TaskDeque<T> for LockFreeDeque<T> {
    fn push(&self, task: T) -> Result<(), DequeFullError<T>> {
        self.assert_owner();
        let b = self.bottom.load(Ordering::Relaxed); // owner-owned index
        let t = self.top.load(Ordering::Acquire);
        // Snapshot story (single ordering for every occupancy estimate in
        // this deque: read `top`, then `bottom`): `bottom` is exact here
        // (we are the owner) and a stale-low `top` only over-estimates
        // b - t, so the full check can reject spuriously but never admit
        // a push into a full ring.
        if b.wrapping_sub(t) >= self.slots.len() {
            return Err(DequeFullError(task));
        }
        let slot = self.slot(b);
        // Ring-reuse handshake: a thief may have claimed this position's
        // previous round (advancing `top` past it, which is what the
        // full check above saw) without having finished moving the
        // payload out yet. Treat that narrow window as "still full"
        // rather than spinning on the thief — push stays non-blocking.
        if slot.seq.load(Ordering::Acquire) != b {
            return Err(DequeFullError(task));
        }
        // SAFETY: the slot is free for round b (tag checked above, and
        // the Acquire pairs with the consumer's Release so its read is
        // complete), and only the owner writes payloads.
        unsafe { (*slot.value.get()).write(task) };
        // Release publishes the payload write to any thief that
        // acquire-loads the new bottom.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    fn pop(&self) -> Option<T> {
        self.assert_owner();
        let b = self.bottom.load(Ordering::Relaxed);
        // Fast exit on empty: `top` never exceeds `bottom` outside pop's
        // own transient window, so t >= b means empty — and it keeps the
        // decrement below from underflowing index 0.
        if self.top.load(Ordering::Relaxed) >= b {
            return None;
        }
        let nb = b - 1;
        self.bottom.store(nb, Ordering::Relaxed);
        // The SeqCst fence orders the decrement before the `top` read in
        // the single total order: either a racing thief's CAS is visible
        // to us here, or our decrement is visible to its post-fence
        // `bottom` load — so the last task is never handed to both.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t < nb {
            // More than one task left: no thief can claim index nb (a
            // claim needs an observed bottom > nb, impossible after the
            // fence), so the owner takes it without a CAS.
            // SAFETY: owner right on index nb; the payload is our own
            // earlier push.
            return Some(unsafe { self.take_slot_unclaimed(nb) });
        }
        if t == nb {
            // Exactly one task left: race thieves for it on `top`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(nb + 1, Ordering::Relaxed); // restore top == bottom (empty)
                                                          // SAFETY: the successful CAS is the exclusive claim on nb.
            return if won {
                Some(unsafe { self.take_slot(nb) })
            } else {
                None
            };
        }
        // t > nb: a thief drained the deque while we were decrementing.
        self.bottom.store(nb + 1, Ordering::Relaxed);
        None
    }

    fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Mirror half of pop's fence (see there): order our `top` read
        // before the `bottom` read so a concurrent pop's decrement and
        // our claim can't both go unseen.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            // b < t happens transiently mid-pop; both cases mean "no
            // steal-able work was observed": starvation, not contention.
            return Steal::Empty;
        }
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            // Lost the race for visible work to another thief (or the
            // owner's last-item pop). Reporting the lost race — instead
            // of looping internally — lets schedulers count contention
            // separately from starvation and pick their own retry policy.
            return Steal::Retry;
        }
        let slot = self.slot(t);
        // SAFETY: the successful CAS is the exclusive claim on index t,
        // and the acquire load of `bottom` above (b > t) saw the owner's
        // release store, so the payload is published. The textbook
        // pre-CAS read would be a data race for a general `T`; reading
        // here is safe because the `seq` handshake holds the owner's
        // slot reuse back until the tag store below.
        let task = unsafe { (*slot.value.get()).assume_init_read() };
        // Length snapshot at the commit point: `top` is now t + 1 and
        // `bottom` is re-read after the CAS. Concurrent owner pops can
        // still move `bottom`, but this is the tightest length any
        // steal-outcome consumer can observe without a deque-wide lock —
        // and unlike a post-hoc `len()` it can never count the stolen
        // task itself. The read sits BEFORE the tag release just below:
        // until the tag flips, the owner cannot push absolute index
        // t + capacity, so `bottom` ≤ t + capacity here and the snapshot
        // keeps the commit-point bound victim_len < capacity (reading it
        // after the release would race the owner's refill past it).
        let victim_len = self.bottom.load(Ordering::Acquire).saturating_sub(t + 1);
        // Release the slot to the push of round t + capacity (the
        // claiming-consumer half of the `seq` handshake; see take_slot).
        slot.seq
            .store(t.wrapping_add(self.slots.len()), Ordering::Release);
        Steal::Success { task, victim_len }
    }

    fn len(&self) -> usize {
        // Same snapshot story as push's full check: `top` first, then
        // `bottom`. Off-owner the two loads can interleave with
        // concurrent operations, so this is an estimate (exact for the
        // owner with no concurrent steals, as the trait documents); the
        // clamp keeps a torn estimate inside [0, capacity].
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        b.saturating_sub(t).min(self.slots.len())
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<T> std::fmt::Debug for LockFreeDeque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockFreeDeque")
            .field("top", &self.top.load(Ordering::Relaxed))
            .field("bottom", &self.bottom.load(Ordering::Relaxed))
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifo_owner_fifo_thief() {
        let dq = LockFreeDeque::with_capacity(8);
        for i in 0..4 {
            dq.push(i).unwrap();
        }
        assert_eq!(dq.pop(), Some(3));
        assert_eq!(
            dq.steal(),
            Steal::Success {
                task: 0,
                victim_len: 2
            }
        );
        assert_eq!(dq.pop(), Some(2));
        assert_eq!(
            dq.steal(),
            Steal::Success {
                task: 1,
                victim_len: 0
            }
        );
        assert_eq!(dq.steal(), Steal::Empty);
        assert_eq!(dq.pop(), None);
    }

    #[test]
    fn overflow_returns_task() {
        let dq = LockFreeDeque::with_capacity(2);
        dq.push('a').unwrap();
        dq.push('b').unwrap();
        assert_eq!(dq.push('c'), Err(DequeFullError('c')));
    }

    #[test]
    fn drops_unconsumed_tasks() {
        // Heap-owning payloads left in the ring must be dropped with it
        // (leak-checked under Miri in the concurrency CI lane).
        let dq = LockFreeDeque::with_capacity(8);
        for i in 0..5 {
            dq.push(vec![i; 4]).unwrap();
        }
        assert_eq!(dq.steal().success(), Some(vec![0; 4]));
        assert_eq!(dq.pop(), Some(vec![4; 4]));
        drop(dq); // three live tasks dropped here
    }

    #[test]
    fn last_item_goes_to_exactly_one_party() {
        // Single-item pop/steal race, repeated many times.
        for _ in 0..200 {
            let dq = Arc::new(LockFreeDeque::with_capacity(2));
            dq.push(1u32).unwrap();
            let d2 = Arc::clone(&dq);
            let thief = std::thread::spawn(move || d2.steal().success());
            let popped = dq.pop();
            let stolen = thief.join().unwrap();
            match (popped, stolen) {
                (Some(1), None) | (None, Some(1)) => {}
                other => panic!("last item duplicated or lost: {other:?}"),
            }
            assert!(dq.is_empty());
        }
    }

    #[test]
    #[ignore = "long-running stress; CI deque-concurrency lane runs it via -- --ignored"]
    fn concurrent_stress_consumes_each_item_once() {
        let dq = Arc::new(LockFreeDeque::with_capacity(1024));
        let n: usize = 20_000;
        let stolen: Vec<_> = (0..3)
            .map(|_| {
                let dq = Arc::clone(&dq);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0;
                    while misses < 10_000 {
                        match dq.steal() {
                            Steal::Success { task: v, .. } => {
                                got.push(v);
                                misses = 0;
                            }
                            Steal::Empty | Steal::Retry => {
                                misses += 1;
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut popped = Vec::new();
        for i in 0..n {
            while dq.push(i).is_err() {
                if let Some(v) = dq.pop() {
                    popped.push(v);
                }
            }
            if i % 3 == 0 {
                if let Some(v) = dq.pop() {
                    popped.push(v);
                }
            }
        }
        while let Some(v) = dq.pop() {
            popped.push(v);
        }
        let mut all = popped;
        for h in stolen {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn ring_reuse_after_drain() {
        let dq = LockFreeDeque::with_capacity(4);
        for round in 0..50 {
            for i in 0..4 {
                dq.push(round * 4 + i).unwrap();
            }
            for _ in 0..2 {
                assert!(dq.steal().is_success());
            }
            assert!(dq.pop().is_some());
            assert!(dq.pop().is_some());
            assert!(dq.is_empty());
        }
    }

    /// Miri-sized cousin of the big stress test: a handful of items
    /// through owner + two thieves so the interpreter explores the slot
    /// handshake without taking minutes.
    #[test]
    fn small_concurrent_exchange_is_exact() {
        for _ in 0..8 {
            let dq = Arc::new(LockFreeDeque::with_capacity(8));
            let n = 64usize;
            let thieves: Vec<_> = (0..2)
                .map(|_| {
                    let dq = Arc::clone(&dq);
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        let mut misses = 0;
                        while misses < 200 {
                            match dq.steal() {
                                Steal::Success { task, victim_len } => {
                                    assert!(victim_len < dq.capacity());
                                    got.push(task);
                                    misses = 0;
                                }
                                Steal::Empty | Steal::Retry => {
                                    misses += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut consumed = Vec::new();
            for i in 0..n {
                while dq.push(i).is_err() {
                    if let Some(v) = dq.pop() {
                        consumed.push(v);
                    }
                }
            }
            while let Some(v) = dq.pop() {
                consumed.push(v);
            }
            for h in thieves {
                consumed.extend(h.join().unwrap());
            }
            consumed.sort_unstable();
            assert_eq!(consumed, (0..n).collect::<Vec<_>>());
        }
    }
}
