//! A Chase–Lev-style deque whose steals race on an atomic counter
//! instead of a lock.

use crate::{DequeFullError, Steal, TaskDeque};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

/// Work-stealing deque with lockless steals (Chase–Lev index protocol).
///
/// Where [`TheDeque`](crate::TheDeque) serialises all thieves through one
/// lock, here thieves race on a compare-and-swap over the `top` index and
/// the owner only synchronises with them on the last remaining task. Task
/// storage sits behind per-slot guards so the crate stays free of
/// `unsafe`; the guards are uncontended except in the narrow windows the
/// index protocol already arbitrates.
///
/// Used by the `ablate_deque` benchmark to quantify how much the paper's
/// THE lock costs under heavy stealing.
///
/// ```
/// use hermes_deque::{LockFreeDeque, TaskDeque, Steal};
/// let dq = LockFreeDeque::with_capacity(4);
/// dq.push("a").unwrap();
/// dq.push("b").unwrap();
/// assert_eq!(dq.steal(), Steal::Success { task: "a", victim_len: 1 });
/// assert_eq!(dq.pop(), Some("b"));
/// ```
pub struct LockFreeDeque<T> {
    /// Index of the first queued task; thieves advance it by CAS.
    top: AtomicUsize,
    /// Index one past the last queued task; written only by the owner.
    bottom: AtomicUsize,
    slots: Box<[Mutex<Option<T>>]>,
    mask: usize,
}

const DEFAULT_CAPACITY: usize = 8_192;

impl<T> LockFreeDeque<T> {
    /// A deque with the default capacity (8192 tasks).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A deque holding at most `capacity` tasks (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let cap = capacity.next_power_of_two();
        let slots = (0..cap).map(|_| Mutex::new(None)).collect::<Vec<_>>();
        LockFreeDeque {
            top: AtomicUsize::new(0),
            bottom: AtomicUsize::new(0),
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
        }
    }

    fn slot(&self, index: usize) -> &Mutex<Option<T>> {
        &self.slots[index & self.mask]
    }

    fn take_slot(&self, index: usize) -> T {
        self.slot(index)
            .lock()
            .take()
            .expect("deque protocol violation: slot already consumed")
    }
}

impl<T> Default for LockFreeDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> TaskDeque<T> for LockFreeDeque<T> {
    fn push(&self, task: T) -> Result<(), DequeFullError<T>> {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        // If the ring position wraps onto an index thieves have not yet
        // claimed (top has not reached `b - capacity`), the deque is full.
        // Once claimed, the winning thief holds the slot guard from before
        // its CAS until after its take, so the write below blocks until
        // the old task is safely out.
        if b.saturating_sub(t) >= self.slots.len() {
            return Err(DequeFullError(task));
        }
        let prev = self.slot(b).lock().replace(task);
        debug_assert!(prev.is_none(), "push onto an unconsumed slot");
        self.bottom.store(b + 1, SeqCst);
        Ok(())
    }

    fn pop(&self) -> Option<T> {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        if t >= b {
            return None;
        }
        let nb = b - 1;
        self.bottom.store(nb, SeqCst);
        let t = self.top.load(SeqCst);
        if t < nb {
            // More than one task left: thieves cannot reach index nb
            // (any thief CASing up to nb re-reads bottom == nb and backs
            // off), so the owner takes it without synchronising.
            return Some(self.take_slot(nb));
        }
        if t == nb {
            // Exactly one task left: race thieves for it via CAS on top.
            let won = self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
            self.bottom.store(nb + 1, SeqCst); // leave top == bottom (empty)
            return if won { Some(self.take_slot(nb)) } else { None };
        }
        // t > nb: thieves drained the deque while we were decrementing.
        self.bottom.store(t, SeqCst);
        None
    }

    fn steal(&self) -> Steal<T> {
        let t = self.top.load(SeqCst);
        let b = self.bottom.load(SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        // Acquire the slot BEFORE committing the CAS (the analogue of
        // Chase–Lev's read-before-CAS): a successful CAS then implies
        // exclusive rights to the slot's current occupant, and the
        // owner's reuse of the ring position blocks on this guard.
        let mut slot = self.slot(t).lock();
        if self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok() {
            let task = slot
                .take()
                .expect("deque protocol violation: slot already consumed");
            // Length snapshot at the commit point: `top` is now t + 1 and
            // `bottom` is re-read after the CAS. Concurrent owner pops can
            // still move `bottom`, but this is the tightest length any
            // steal-outcome consumer can observe without a deque-wide
            // lock — and unlike a post-hoc `len()` it can never count the
            // stolen task itself.
            let victim_len = self.bottom.load(SeqCst).saturating_sub(t + 1);
            return Steal::Success { task, victim_len };
        }
        // Lost the race for visible work to another thief (or the
        // owner's last-item pop). Reporting the lost race — instead of
        // looping internally — lets schedulers count contention
        // separately from starvation and choose their own retry policy.
        Steal::Retry
    }

    fn len(&self) -> usize {
        self.bottom
            .load(SeqCst)
            .saturating_sub(self.top.load(SeqCst))
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<T> std::fmt::Debug for LockFreeDeque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockFreeDeque")
            .field("top", &self.top.load(SeqCst))
            .field("bottom", &self.bottom.load(SeqCst))
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifo_owner_fifo_thief() {
        let dq = LockFreeDeque::with_capacity(8);
        for i in 0..4 {
            dq.push(i).unwrap();
        }
        assert_eq!(dq.pop(), Some(3));
        assert_eq!(
            dq.steal(),
            Steal::Success {
                task: 0,
                victim_len: 2
            }
        );
        assert_eq!(dq.pop(), Some(2));
        assert_eq!(
            dq.steal(),
            Steal::Success {
                task: 1,
                victim_len: 0
            }
        );
        assert_eq!(dq.steal(), Steal::Empty);
        assert_eq!(dq.pop(), None);
    }

    #[test]
    fn overflow_returns_task() {
        let dq = LockFreeDeque::with_capacity(2);
        dq.push('a').unwrap();
        dq.push('b').unwrap();
        assert_eq!(dq.push('c'), Err(DequeFullError('c')));
    }

    #[test]
    fn last_item_goes_to_exactly_one_party() {
        // Single-item pop/steal race, repeated many times.
        for _ in 0..200 {
            let dq = Arc::new(LockFreeDeque::with_capacity(2));
            dq.push(1u32).unwrap();
            let d2 = Arc::clone(&dq);
            let thief = std::thread::spawn(move || d2.steal().success());
            let popped = dq.pop();
            let stolen = thief.join().unwrap();
            match (popped, stolen) {
                (Some(1), None) | (None, Some(1)) => {}
                other => panic!("last item duplicated or lost: {other:?}"),
            }
            assert!(dq.is_empty());
        }
    }

    #[test]
    fn concurrent_stress_consumes_each_item_once() {
        let dq = Arc::new(LockFreeDeque::with_capacity(1024));
        let n: usize = 20_000;
        let stolen: Vec<_> = (0..3)
            .map(|_| {
                let dq = Arc::clone(&dq);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0;
                    while misses < 10_000 {
                        match dq.steal() {
                            Steal::Success { task: v, .. } => {
                                got.push(v);
                                misses = 0;
                            }
                            Steal::Empty | Steal::Retry => {
                                misses += 1;
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut popped = Vec::new();
        for i in 0..n {
            while dq.push(i).is_err() {
                if let Some(v) = dq.pop() {
                    popped.push(v);
                }
            }
            if i % 3 == 0 {
                if let Some(v) = dq.pop() {
                    popped.push(v);
                }
            }
        }
        while let Some(v) = dq.pop() {
            popped.push(v);
        }
        let mut all = popped;
        for h in stolen {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn ring_reuse_after_drain() {
        let dq = LockFreeDeque::with_capacity(4);
        for round in 0..50 {
            for i in 0..4 {
                dq.push(round * 4 + i).unwrap();
            }
            for _ in 0..2 {
                assert!(dq.steal().is_success());
            }
            assert!(dq.pop().is_some());
            assert!(dq.pop().is_some());
            assert!(dq.is_empty());
        }
    }
}
