//! Property-based tests for the HERMES tempo-control state machine.

use hermes_core::{
    Frequency, ImmediacyList, Policy, RecordingActuator, TempoConfig, TempoController, TempoLevel,
    ThresholdTable, WorkerId,
};
use proptest::prelude::*;

/// Arbitrary scheduler events a host could feed the controller.
#[derive(Debug, Clone)]
enum Event {
    Push {
        w: usize,
        len: usize,
    },
    Pop {
        w: usize,
        len: usize,
    },
    Steal {
        thief: usize,
        victim: usize,
        len: usize,
    },
    OutOfWork {
        w: usize,
    },
    Sample {
        len: usize,
    },
    Recompute,
}

fn event_strategy(workers: usize) -> impl Strategy<Value = Event> {
    prop_oneof![
        (0..workers, 0usize..64).prop_map(|(w, len)| Event::Push { w, len }),
        (0..workers, 0usize..64).prop_map(|(w, len)| Event::Pop { w, len }),
        (0..workers, 0..workers, 0usize..64).prop_map(|(thief, victim, len)| Event::Steal {
            thief,
            victim,
            len
        }),
        (0..workers).prop_map(|w| Event::OutOfWork { w }),
        (0usize..64).prop_map(|len| Event::Sample { len }),
        Just(Event::Recompute),
    ]
}

fn controller(policy: Policy, workers: usize, nfreq: usize) -> TempoController {
    let freqs = [3600u64, 3300, 2700, 2100, 1400];
    TempoController::new(
        TempoConfig::builder()
            .policy(policy)
            .frequencies(
                freqs[..nfreq]
                    .iter()
                    .map(|&m| Frequency::from_mhz(m))
                    .collect(),
            )
            .workers(workers)
            .k_thresholds(2)
            .build(),
    )
}

fn drive(ctl: &mut TempoController, events: &[Event], workers: usize) {
    let mut act = RecordingActuator::new();
    for e in events {
        match *e {
            Event::Push { w, len } => ctl.on_push(WorkerId(w), len, &mut act),
            Event::Pop { w, len } => ctl.on_pop(WorkerId(w), len, &mut act),
            Event::Steal { thief, victim, len } => {
                if thief != victim {
                    // A real scheduler only steals while out of work.
                    ctl.on_out_of_work(WorkerId(thief), &mut act);
                    ctl.on_steal(WorkerId(thief), WorkerId(victim), len, &mut act);
                }
            }
            Event::OutOfWork { w } => ctl.on_out_of_work(WorkerId(w), &mut act),
            Event::Sample { len } => ctl.record_deque_sample(len),
            Event::Recompute => ctl.recompute_thresholds(),
        }
        // Invariants that must hold after EVERY event:
        ctl.immediacy().assert_valid();
        for i in 0..workers {
            let w = WorkerId(i);
            // Logical levels stay within their documented bounds.
            assert!(ctl.virtual_level(w) <= 60);
            assert!(ctl.virtual_level(w) >= 0);
            assert!(ctl.band(w) <= ctl.config().k_thresholds);
            // The public level is the floored virtual level.
            assert_eq!(ctl.level(w).0 as i64, ctl.virtual_level(w).max(0));
            // Frequency always matches the level under the map.
            assert_eq!(
                ctl.frequency(w),
                ctl.config().freq_map.frequency(ctl.level(w))
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The controller never panics, never leaves the immediacy list
    /// malformed, and never exceeds level/band bounds under arbitrary
    /// event interleavings, for every policy.
    #[test]
    fn controller_invariants_hold_under_arbitrary_events(
        events in proptest::collection::vec(event_strategy(6), 0..200),
        policy_idx in 0usize..4,
        nfreq in 1usize..=5,
    ) {
        let policy = Policy::all()[policy_idx];
        let mut ctl = controller(policy, 6, nfreq);
        drive(&mut ctl, &events, 6);
    }

    /// Baseline policy is inert: no actuations ever.
    #[test]
    fn baseline_never_actuates(
        events in proptest::collection::vec(event_strategy(4), 0..100),
    ) {
        let mut ctl = controller(Policy::Baseline, 4, 3);
        drive(&mut ctl, &events, 4);
        prop_assert_eq!(ctl.stats().actuations, 0);
        for i in 0..4 {
            prop_assert_eq!(ctl.level(WorkerId(i)), TempoLevel::FASTEST);
        }
    }

    /// Thief Procrastination: immediately after every steal, the thief
    /// runs exactly one level below its victim (clamped to the slowest
    /// elected frequency), and Immediacy Relay preserves the relative
    /// tempo order of the workers it raises (paper §3.3: "w2 can still
    /// maintain a slower tempo than w1").
    ///
    /// Note that *global* chain monotonicity is NOT an invariant of the
    /// paper's algorithm: a fresh thief inserted between its victim and an
    /// earlier, already-relayed thief may legitimately be slower than its
    /// downstream neighbour.
    #[test]
    fn procrastination_and_relay_order(
        events in proptest::collection::vec(event_strategy(5), 0..150),
        nfreq in 2usize..=5,
    ) {
        let mut ctl = controller(Policy::WorkpathOnly, 5, nfreq);
        let mut act = RecordingActuator::new();
        for e in &events {
            match *e {
                Event::Steal { thief, victim, len } if thief != victim => {
                    ctl.on_out_of_work(WorkerId(thief), &mut act);
                    let v_victim = ctl.virtual_level(WorkerId(victim));
                    ctl.on_steal(WorkerId(thief), WorkerId(victim), len, &mut act);
                    prop_assert_eq!(
                        ctl.virtual_level(WorkerId(thief)),
                        (v_victim + 1).min(60),
                        "thief must be one virtual level below its victim"
                    );
                    prop_assert!(
                        ctl.level(WorkerId(thief)) >= ctl.level(WorkerId(victim)),
                        "thief never faster than victim right after the steal"
                    );
                }
                Event::OutOfWork { w } => {
                    let down = ctl.immediacy().downstream(WorkerId(w));
                    let before: Vec<_> = down.iter().map(|&d| ctl.level(d)).collect();
                    ctl.on_out_of_work(WorkerId(w), &mut act);
                    let after: Vec<_> = down.iter().map(|&d| ctl.level(d)).collect();
                    for (b, a) in before.windows(2).zip(after.windows(2)) {
                        if b[0] <= b[1] {
                            prop_assert!(a[0] <= a[1], "relay reordered tempos");
                        }
                    }
                    for (b, a) in before.iter().zip(&after) {
                        prop_assert!(a <= b, "relay must never slow a worker");
                    }
                }
                Event::Push { w, len } => ctl.on_push(WorkerId(w), len, &mut act),
                Event::Pop { w, len } => ctl.on_pop(WorkerId(w), len, &mut act),
                _ => {}
            }
        }
    }

    /// Threshold tables are monotone in the average and in the index.
    #[test]
    fn threshold_formula_monotone(avg in 0.0f64..1e6, k in 1usize..8) {
        let t = ThresholdTable::from_average(avg, k);
        prop_assert_eq!(t.k(), k);
        for w in t.thresholds().windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let t2 = ThresholdTable::from_average(avg * 2.0 + 1.0, k);
        for (a, b) in t.thresholds().iter().zip(t2.thresholds()) {
            prop_assert!(a <= b);
        }
    }

    /// band_of is the fixed point of raise/lower: from any starting band,
    /// applying the raise/lower rules converges to band_of(len).
    #[test]
    fn bands_converge_to_band_of(
        thld in proptest::collection::vec(1usize..100, 1..5),
        len in 0usize..200,
        start in 0usize..5,
    ) {
        let mut sorted = thld.clone();
        sorted.sort_unstable();
        let t = ThresholdTable::from_thresholds(sorted);
        let mut s = start.min(t.k());
        for _ in 0..t.k() + 2 {
            if t.should_raise(len, s) { s += 1; }
            else if t.should_lower(len, s) { s -= 1; }
        }
        // After convergence neither rule fires.
        prop_assert!(!t.should_raise(len, s));
        prop_assert!(!t.should_lower(len, s));
    }

    /// The immediacy list under arbitrary valid steal/unlink sequences is
    /// always a set of disjoint acyclic chains.
    #[test]
    fn immediacy_list_stays_well_formed(
        ops in proptest::collection::vec((0usize..8, 0usize..8, any::<bool>()), 0..200),
    ) {
        let mut list = ImmediacyList::new(8);
        for (a, b, steal) in ops {
            if steal && a != b {
                list.insert_thief(WorkerId(a), WorkerId(b));
            } else {
                list.unlink(WorkerId(a));
            }
            list.assert_valid();
        }
    }

    /// Determinism: the same event sequence always produces identical
    /// controller state.
    #[test]
    fn controller_is_deterministic(
        events in proptest::collection::vec(event_strategy(4), 0..120),
    ) {
        let mut a = controller(Policy::Unified, 4, 3);
        let mut b = controller(Policy::Unified, 4, 3);
        drive(&mut a, &events, 4);
        drive(&mut b, &events, 4);
        for i in 0..4 {
            prop_assert_eq!(a.level(WorkerId(i)), b.level(WorkerId(i)));
            prop_assert_eq!(a.band(WorkerId(i)), b.band(WorkerId(i)));
        }
        prop_assert_eq!(a.stats(), b.stats());
    }
}
