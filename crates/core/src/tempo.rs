//! Discrete tempo levels.

/// A discrete execution speed level for a worker.
///
/// Level `0` is the **fastest** tempo (the paper's *allegro*); larger values
/// are progressively slower (*lento*). The number of meaningful levels is
/// bounded by the [`FreqMap`](crate::FreqMap) in use: levels at or beyond
/// the number of mapped frequencies all actuate the slowest frequency.
///
/// ```
/// use hermes_core::TempoLevel;
/// let l = TempoLevel::FASTEST;
/// assert_eq!(l.slower(3).0, 1);      // clamped to 3 levels: 0..=2
/// assert_eq!(l.slower(3).faster(), TempoLevel::FASTEST);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TempoLevel(pub usize);

impl TempoLevel {
    /// The fastest tempo; programs bootstrap at this level (paper §3.2).
    pub const FASTEST: TempoLevel = TempoLevel(0);

    /// One level slower, clamped to the slowest of `num_levels` levels.
    ///
    /// `num_levels` must be at least 1; a zero value is treated as 1.
    #[must_use]
    pub fn slower(self, num_levels: usize) -> TempoLevel {
        let max = num_levels.max(1) - 1;
        TempoLevel((self.0 + 1).min(max))
    }

    /// One level faster (toward [`TempoLevel::FASTEST`]), saturating at 0.
    #[must_use]
    pub fn faster(self) -> TempoLevel {
        TempoLevel(self.0.saturating_sub(1))
    }

    /// Clamp this level into the range expressible with `num_levels` levels.
    #[must_use]
    pub fn clamp_to(self, num_levels: usize) -> TempoLevel {
        TempoLevel(self.0.min(num_levels.max(1) - 1))
    }

    /// Whether this is the fastest tempo.
    #[must_use]
    pub fn is_fastest(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for TempoLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<usize> for TempoLevel {
    fn from(v: usize) -> Self {
        TempoLevel(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastest_is_zero() {
        assert_eq!(TempoLevel::FASTEST.0, 0);
        assert!(TempoLevel::FASTEST.is_fastest());
        assert!(!TempoLevel(1).is_fastest());
    }

    #[test]
    fn slower_clamps_at_slowest_level() {
        let l = TempoLevel(1);
        assert_eq!(l.slower(2), TempoLevel(1));
        assert_eq!(l.slower(3), TempoLevel(2));
        assert_eq!(TempoLevel(5).slower(3), TempoLevel(2));
    }

    #[test]
    fn faster_saturates_at_fastest() {
        assert_eq!(TempoLevel(0).faster(), TempoLevel(0));
        assert_eq!(TempoLevel(2).faster(), TempoLevel(1));
    }

    #[test]
    fn slower_with_degenerate_level_count() {
        // num_levels == 0 behaves as a single-level system.
        assert_eq!(TempoLevel(0).slower(0), TempoLevel(0));
        assert_eq!(TempoLevel(0).slower(1), TempoLevel(0));
    }

    #[test]
    fn clamp_to_bounds() {
        assert_eq!(TempoLevel(7).clamp_to(3), TempoLevel(2));
        assert_eq!(TempoLevel(1).clamp_to(3), TempoLevel(1));
        assert_eq!(TempoLevel(7).clamp_to(0), TempoLevel(0));
    }

    #[test]
    fn ordering_fast_to_slow() {
        assert!(TempoLevel::FASTEST < TempoLevel(1));
        assert!(TempoLevel(1) < TempoLevel(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(TempoLevel(2).to_string(), "T2");
    }
}
