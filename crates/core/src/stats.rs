//! Counters describing what the controller did during a run.

/// Aggregate statistics of one [`TempoController`](crate::TempoController)
/// run; useful for the overhead analysis of paper §3.4 and the ablation
/// benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TempoStats {
    /// Successful steals observed (thief-victim relationships formed).
    pub steals: u64,
    /// Immediacy relays performed (a worker ran dry while having
    /// downstream thieves).
    pub relays: u64,
    /// Workers sped up by relays (each relay may raise several workers).
    pub relay_ups: u64,
    /// Tempo reductions from thief procrastination.
    pub path_downs: u64,
    /// Tempo raises from workload PUSH threshold crossings.
    pub workload_ups: u64,
    /// Tempo reductions from workload POP/STEAL threshold crossings.
    pub workload_downs: u64,
    /// Workload reductions *suppressed* by the `prev == null` head guard
    /// (the single interaction point of the two strategies, paper §3.3).
    pub guard_suppressions: u64,
    /// Threshold recomputations by the online profiler.
    pub threshold_updates: u64,
    /// Actuations forwarded to the frequency actuator (level actually
    /// changed).
    pub actuations: u64,
    /// Park episodes reported by the host's idle loop (bounded spin
    /// exhausted; the worker slept on the pool's idle primitive).
    pub parks: u64,
    /// Unpark episodes reported by the host — each one is a wakeup the
    /// controller re-actuated a frequency for. Under wake-driven load
    /// (future-task wakers re-pushing work into a parked pool) this is
    /// how the controller's view of the wake path is audited: every
    /// completed park must come back through
    /// [`on_unpark`](crate::TempoController::on_unpark).
    pub unparks: u64,
}

impl TempoStats {
    /// Total tempo transitions of any kind.
    #[must_use]
    pub fn total_transitions(&self) -> u64 {
        self.relay_ups + self.path_downs + self.workload_ups + self.workload_downs
    }
}

impl std::fmt::Display for TempoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steals={} relays={} relay_ups={} path_downs={} wl_ups={} wl_downs={} guard={} thld_updates={} actuations={} parks={} unparks={}",
            self.steals,
            self.relays,
            self.relay_ups,
            self.path_downs,
            self.workload_ups,
            self.workload_downs,
            self.guard_suppressions,
            self.threshold_updates,
            self.actuations,
            self.parks,
            self.unparks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_transition_kinds() {
        let s = TempoStats {
            relay_ups: 2,
            path_downs: 3,
            workload_ups: 5,
            workload_downs: 7,
            ..TempoStats::default()
        };
        assert_eq!(s.total_transitions(), 17);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!TempoStats::default().to_string().is_empty());
    }
}
