//! CPU frequencies and the tempo→frequency mapping (paper §3.4).

use crate::TempoLevel;

/// A CPU core frequency.
///
/// Stored in kilohertz, the granularity used by Linux cpufreq, so real
/// hardware tables round-trip exactly.
///
/// ```
/// use hermes_core::Frequency;
/// let f = Frequency::from_mhz(2400);
/// assert_eq!(f.khz(), 2_400_000);
/// assert_eq!(f.ghz(), 2.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u64);

impl Frequency {
    /// Construct from kilohertz.
    #[must_use]
    pub const fn from_khz(khz: u64) -> Self {
        Frequency(khz)
    }

    /// Construct from megahertz.
    #[must_use]
    pub const fn from_mhz(mhz: u64) -> Self {
        Frequency(mhz * 1_000)
    }

    /// The frequency in kilohertz.
    #[must_use]
    pub const fn khz(self) -> u64 {
        self.0
    }

    /// The frequency in megahertz (truncating).
    #[must_use]
    pub const fn mhz(self) -> u64 {
        self.0 / 1_000
    }

    /// The frequency in gigahertz.
    #[must_use]
    pub fn ghz(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Ratio of this frequency to `other` (e.g. for slowdown factors).
    #[must_use]
    pub fn ratio_to(self, other: Frequency) -> f64 {
        self.0 as f64 / other.0 as f64
    }
}

impl std::fmt::Display for Frequency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_multiple_of(100_000) {
            write!(f, "{:.1}GHz", self.ghz())
        } else {
            write!(f, "{}MHz", self.mhz())
        }
    }
}

/// Error returned when a [`FreqMap`] would be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidFreqMapError {
    /// No frequencies were supplied.
    Empty,
    /// Frequencies were not strictly descending (fastest first).
    NotDescending {
        /// Index of the first out-of-order entry.
        index: usize,
    },
}

impl std::fmt::Display for InvalidFreqMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidFreqMapError::Empty => {
                write!(f, "frequency map requires at least one frequency")
            }
            InvalidFreqMapError::NotDescending { index } => {
                write!(
                    f,
                    "frequencies must be strictly descending (entry {index} is not)"
                )
            }
        }
    }
}

impl std::error::Error for InvalidFreqMapError {}

/// *N-frequency tempo control* (paper §3.4): the mapping from tempo levels
/// to the `N` frequencies a runtime elects to use.
///
/// A CPU may support `n` frequencies but the runtime uses only the highest
/// `N` of them; tempo level `i` maps to the `i`-th fastest elected
/// frequency, and every level at or beyond `N-1` maps to the slowest
/// elected frequency.
///
/// ```
/// use hermes_core::{FreqMap, Frequency, TempoLevel};
/// # fn main() -> Result<(), hermes_core::InvalidFreqMapError> {
/// // Paper Fig. 6 setting: 2-frequency control 2.4/1.6 GHz.
/// let map = FreqMap::new(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])?;
/// assert_eq!(map.frequency(TempoLevel(0)), Frequency::from_mhz(2400));
/// assert_eq!(map.frequency(TempoLevel(1)), Frequency::from_mhz(1600));
/// // Deeper tempos saturate at the slowest elected frequency.
/// assert_eq!(map.frequency(TempoLevel(7)), Frequency::from_mhz(1600));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqMap {
    freqs: Vec<Frequency>,
}

impl FreqMap {
    /// Build a map from frequencies listed **fastest first**.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFreqMapError`] if `freqs` is empty or not strictly
    /// descending.
    pub fn new(freqs: Vec<Frequency>) -> Result<Self, InvalidFreqMapError> {
        if freqs.is_empty() {
            return Err(InvalidFreqMapError::Empty);
        }
        for (i, pair) in freqs.windows(2).enumerate() {
            if pair[0] <= pair[1] {
                return Err(InvalidFreqMapError::NotDescending { index: i + 1 });
            }
        }
        Ok(FreqMap { freqs })
    }

    /// Number of distinct tempo levels this map expresses (`N`).
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.freqs.len()
    }

    /// The frequency actuated for `level` (saturating at the slowest).
    #[must_use]
    pub fn frequency(&self, level: TempoLevel) -> Frequency {
        self.freqs[level.0.min(self.freqs.len() - 1)]
    }

    /// The fastest elected frequency (tempo level 0).
    #[must_use]
    pub fn fastest(&self) -> Frequency {
        self.freqs[0]
    }

    /// The slowest elected frequency.
    #[must_use]
    pub fn slowest(&self) -> Frequency {
        *self.freqs.last().expect("FreqMap is never empty")
    }

    /// All elected frequencies, fastest first.
    #[must_use]
    pub fn frequencies(&self) -> &[Frequency] {
        &self.freqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_units_roundtrip() {
        let f = Frequency::from_khz(1_900_000);
        assert_eq!(f.mhz(), 1_900);
        assert!((f.ghz() - 1.9).abs() < 1e-12);
        assert_eq!(Frequency::from_mhz(1900), f);
    }

    #[test]
    fn frequency_display() {
        assert_eq!(Frequency::from_mhz(2400).to_string(), "2.4GHz");
        assert_eq!(Frequency::from_khz(2_333_000).to_string(), "2333MHz");
    }

    #[test]
    fn ratio_between_frequencies() {
        let fast = Frequency::from_mhz(2400);
        let slow = Frequency::from_mhz(1600);
        assert!((fast.ratio_to(slow) - 1.5).abs() < 1e-12);
        assert!((slow.ratio_to(fast) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn map_rejects_empty() {
        assert_eq!(FreqMap::new(vec![]), Err(InvalidFreqMapError::Empty));
    }

    #[test]
    fn map_rejects_unsorted_and_duplicates() {
        let a = Frequency::from_mhz(1600);
        let b = Frequency::from_mhz(2400);
        assert_eq!(
            FreqMap::new(vec![a, b]),
            Err(InvalidFreqMapError::NotDescending { index: 1 })
        );
        assert_eq!(
            FreqMap::new(vec![b, b]),
            Err(InvalidFreqMapError::NotDescending { index: 1 })
        );
    }

    #[test]
    fn three_frequency_control_maps_levels() {
        // Paper Fig. 16: 3-frequency combination 2.4/1.9/1.6 GHz.
        let map = FreqMap::new(vec![
            Frequency::from_mhz(2400),
            Frequency::from_mhz(1900),
            Frequency::from_mhz(1600),
        ])
        .unwrap();
        assert_eq!(map.num_levels(), 3);
        assert_eq!(map.frequency(TempoLevel(1)), Frequency::from_mhz(1900));
        assert_eq!(map.frequency(TempoLevel(2)), Frequency::from_mhz(1600));
        assert_eq!(map.frequency(TempoLevel(9)), Frequency::from_mhz(1600));
        assert_eq!(map.fastest(), Frequency::from_mhz(2400));
        assert_eq!(map.slowest(), Frequency::from_mhz(1600));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = InvalidFreqMapError::NotDescending { index: 3 };
        let msg = e.to_string();
        assert!(msg.contains("descending"));
        assert!(msg.starts_with(char::is_lowercase));
    }
}
