//! Workload-sensitive thresholds and the online deque-size profiler
//! (paper §3.2).

use std::collections::VecDeque;

/// The per-worker deque-size thresholds `thld` (paper §3.2, Fig. 5).
///
/// With `K` thresholds derived from the profiled average deque size `L`,
/// the `i`-th threshold (1-based) is `thld_i = (2L / (K+1)) · i`. The `K`
/// thresholds induce `K+1` size *bands*; a worker's band index `S` rises
/// when a PUSH grows its deque past the next threshold up and falls when a
/// POP or STEAL shrinks it below the next threshold down.
///
/// ```
/// use hermes_core::ThresholdTable;
/// // Paper's worked example: average 15, two thresholds -> {10, 20}.
/// let t = ThresholdTable::from_average(15.0, 2);
/// assert_eq!(t.thresholds(), &[10, 20]);
/// assert!(t.should_raise(11, 0));  // deque grew past 10: band 0 -> 1
/// assert!(!t.should_raise(10, 0)); // strict comparison, as in Fig. 5
/// assert!(t.should_lower(9, 1));   // shrank below 10: band 1 -> 0
/// assert!(t.should_raise(21, 1));  // past 20: band 1 -> 2 (fastest)
/// assert!(!t.should_raise(25, 2)); // already in the top band
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdTable {
    thld: Vec<usize>,
}

impl ThresholdTable {
    /// Compute `K` thresholds from the profiled average deque size `L`.
    ///
    /// Thresholds are clamped to a minimum of 1 so that an idle period
    /// (average ≈ 0) cannot produce degenerate all-zero thresholds that
    /// would pin every worker to the top band.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `avg` is not finite.
    #[must_use]
    pub fn from_average(avg: f64, k: usize) -> Self {
        Self::from_average_scaled(avg, k, 1.0)
    }

    /// [`from_average`](Self::from_average) with the calibration factor
    /// `scale` applied to every threshold: `thld_i = scale · (2L/(K+1)) · i`.
    ///
    /// `scale = 1.0` is the paper's formula verbatim. The constant `2`
    /// inside it was tuned by the authors against their runtime's
    /// deque-length distributions; reconstructions with different
    /// granularity structure re-tune this single factor (see `DESIGN.md`
    /// and the `ablate_profiling` benchmark).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, or `avg`/`scale` are not finite and positive.
    #[must_use]
    pub fn from_average_scaled(avg: f64, k: usize, scale: f64) -> Self {
        assert!(k > 0, "at least one threshold is required");
        assert!(avg.is_finite(), "average deque size must be finite");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        let base = scale * 2.0 * avg.max(0.0) / (k as f64 + 1.0);
        let thld = (1..=k)
            .map(|i| ((base * i as f64).round() as usize).max(i))
            .collect();
        ThresholdTable { thld }
    }

    /// Build directly from explicit thresholds (ascending). Used for fixed
    /// thresholds in the profiling ablation.
    ///
    /// # Panics
    ///
    /// Panics if `thld` is empty or not non-decreasing.
    #[must_use]
    pub fn from_thresholds(thld: Vec<usize>) -> Self {
        assert!(!thld.is_empty(), "at least one threshold is required");
        assert!(
            thld.windows(2).all(|p| p[0] <= p[1]),
            "thresholds must be non-decreasing"
        );
        ThresholdTable { thld }
    }

    /// The number of thresholds `K`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.thld.len()
    }

    /// The thresholds, ascending (`thld_1 ..= thld_K`).
    #[must_use]
    pub fn thresholds(&self) -> &[usize] {
        &self.thld
    }

    /// Whether a worker in band `s` whose deque now holds `len` items
    /// should move up one band (Fig. 5 PUSH: `T - H > thld[S]`).
    #[must_use]
    pub fn should_raise(&self, len: usize, s: usize) -> bool {
        s < self.thld.len() && len > self.thld[s]
    }

    /// Whether a worker in band `s` whose deque now holds `len` items
    /// should move down one band (Fig. 5 POP/STEAL: `T - H < thld[S]`).
    #[must_use]
    pub fn should_lower(&self, len: usize, s: usize) -> bool {
        s > 0 && len < self.thld[s - 1]
    }

    /// The band a deque of size `len` belongs to, `0 ..= K`.
    ///
    /// Useful for initialising `S` after a threshold recomputation.
    #[must_use]
    pub fn band_of(&self, len: usize) -> usize {
        self.thld.iter().take_while(|&&t| len > t).count()
    }
}

/// Configuration of the [`OnlineProfiler`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerConfig {
    /// Number of most recent samples averaged into `L`.
    pub window: usize,
    /// Host-time between sampling rounds, in nanoseconds. The profiler
    /// itself is clockless; hosts use this value to schedule calls.
    pub period_ns: u64,
    /// Calibration factor applied to the threshold formula
    /// (see [`ThresholdTable::from_average_scaled`]).
    pub threshold_scale: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        // ~1 kHz sampling with a 64-sample window reacts within tens of
        // milliseconds while smoothing per-task noise, in the spirit of the
        // paper's "lightweight online profiling".
        ProfilerConfig {
            window: 64,
            period_ns: 1_000_000,
            threshold_scale: 1.0,
        }
    }
}

/// The lightweight online profiler that feeds [`ThresholdTable`]s
/// (paper §3.2).
///
/// Hosts periodically feed it the instantaneous deque size of every
/// worker; it maintains a sliding window and recomputes thresholds from
/// the window average once per period.
///
/// ```
/// use hermes_core::{OnlineProfiler, ProfilerConfig};
/// let mut p = OnlineProfiler::new(ProfilerConfig { window: 4, period_ns: 1_000, threshold_scale: 1.0 }, 2);
/// for len in [10, 20, 10, 20] { p.record(len); }
/// assert_eq!(p.average(), 15.0);
/// assert_eq!(p.recompute().thresholds(), &[10, 20]);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineProfiler {
    config: ProfilerConfig,
    k: usize,
    samples: VecDeque<usize>,
}

impl OnlineProfiler {
    /// A profiler producing `k`-threshold tables.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `config.window == 0`.
    #[must_use]
    pub fn new(config: ProfilerConfig, k: usize) -> Self {
        assert!(k > 0, "at least one threshold is required");
        assert!(config.window > 0, "window must hold at least one sample");
        OnlineProfiler {
            config,
            k,
            samples: VecDeque::new(),
        }
    }

    /// The sampling period hosts should use, in nanoseconds.
    #[must_use]
    pub fn period_ns(&self) -> u64 {
        self.config.period_ns
    }

    /// Record one deque-size sample.
    pub fn record(&mut self, deque_len: usize) {
        if self.samples.len() == self.config.window {
            self.samples.pop_front();
        }
        self.samples.push_back(deque_len);
    }

    /// Average of the samples currently in the window (`L`), or 0 if none.
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<usize>() as f64 / self.samples.len() as f64
    }

    /// Recompute the threshold table from the current window average.
    #[must_use]
    pub fn recompute(&self) -> ThresholdTable {
        ThresholdTable::from_average_scaled(self.average(), self.k, self.config.threshold_scale)
    }

    /// Number of samples currently held.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // "if the average deque size is 15 and there are 2 thresholds, we
        // apply the fastest tempo if the deque size is no less than 20, the
        // medium tempo between 10 and 20, and the slowest otherwise."
        let t = ThresholdTable::from_average(15.0, 2);
        assert_eq!(t.thresholds(), &[10, 20]);
        assert_eq!(t.band_of(5), 0);
        assert_eq!(t.band_of(15), 1);
        assert_eq!(t.band_of(25), 2);
    }

    #[test]
    fn single_threshold() {
        // K = 1: thld_1 = 2L/2 = L.
        let t = ThresholdTable::from_average(8.0, 1);
        assert_eq!(t.thresholds(), &[8]);
        assert!(t.should_raise(9, 0));
        assert!(t.should_lower(7, 1));
    }

    #[test]
    fn thresholds_never_degenerate_to_zero() {
        let t = ThresholdTable::from_average(0.0, 3);
        assert_eq!(t.thresholds(), &[1, 2, 3]);
        // An empty deque must never be "above" any threshold.
        assert!(!t.should_raise(0, 0));
    }

    #[test]
    fn thresholds_scale_linearly_in_index() {
        let t = ThresholdTable::from_average(30.0, 3);
        assert_eq!(t.thresholds(), &[15, 30, 45]);
    }

    #[test]
    fn raise_and_lower_are_strict() {
        let t = ThresholdTable::from_thresholds(vec![10, 20]);
        assert!(!t.should_raise(10, 0));
        assert!(t.should_raise(11, 0));
        assert!(!t.should_lower(10, 1));
        assert!(t.should_lower(9, 1));
        assert!(!t.should_lower(5, 0)); // already lowest band
        assert!(!t.should_raise(100, 2)); // already highest band
    }

    #[test]
    fn band_transitions_are_consistent_with_band_of() {
        let t = ThresholdTable::from_thresholds(vec![4, 8, 12]);
        for len in 0..20 {
            let b = t.band_of(len);
            if b < t.k() {
                assert!(!t.should_raise(len, b), "len={len} band={b}");
            }
            if b > 0 {
                assert!(!t.should_lower(len, b), "len={len} band={b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn zero_k_panics() {
        let _ = ThresholdTable::from_average(10.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_fixed_thresholds_panic() {
        let _ = ThresholdTable::from_thresholds(vec![5, 3]);
    }

    #[test]
    fn profiler_sliding_window() {
        let mut p = OnlineProfiler::new(
            ProfilerConfig {
                window: 2,
                period_ns: 1,
                threshold_scale: 1.0,
            },
            2,
        );
        assert_eq!(p.average(), 0.0);
        p.record(10);
        p.record(20);
        p.record(30); // evicts the 10
        assert_eq!(p.sample_count(), 2);
        assert_eq!(p.average(), 25.0);
    }

    #[test]
    fn profiler_recompute_matches_formula() {
        let mut p = OnlineProfiler::new(
            ProfilerConfig {
                window: 8,
                period_ns: 1,
                threshold_scale: 1.0,
            },
            2,
        );
        for s in [12, 18] {
            p.record(s);
        }
        // L = 15 -> thresholds {10, 20}.
        assert_eq!(p.recompute().thresholds(), &[10, 20]);
    }

    #[test]
    fn default_profiler_config_is_sane() {
        let c = ProfilerConfig::default();
        assert!(c.window >= 16);
        assert!(c.period_ns >= 100_000);
    }
}
