//! Tempo-control policy selection.

/// Which of the HERMES tempo-control strategies are active.
///
/// The paper evaluates all four configurations: the unmodified baseline
/// (Figs. 6–7 normalise against it), each strategy alone (Figs. 10–13),
/// and the unified algorithm (everywhere else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// No tempo control: every worker stays at the fastest frequency.
    /// Equivalent to the unmodified Cilk Plus scheduler.
    Baseline,
    /// Only workpath-sensitive control (thief procrastination + immediacy
    /// relay), paper §3.1.
    WorkpathOnly,
    /// Only workload-sensitive control (deque-size thresholds), paper §3.2.
    WorkloadOnly,
    /// The unified HERMES algorithm (paper Fig. 5).
    #[default]
    Unified,
}

impl Policy {
    /// Whether workpath-sensitive control is active.
    #[must_use]
    pub fn workpath(self) -> bool {
        matches!(self, Policy::WorkpathOnly | Policy::Unified)
    }

    /// Whether workload-sensitive control is active.
    #[must_use]
    pub fn workload(self) -> bool {
        matches!(self, Policy::WorkloadOnly | Policy::Unified)
    }

    /// Whether any tempo control is active at all.
    #[must_use]
    pub fn is_enabled(self) -> bool {
        !matches!(self, Policy::Baseline)
    }

    /// All four policies, in the order the paper's figures present them.
    #[must_use]
    pub fn all() -> [Policy; 4] {
        [
            Policy::Baseline,
            Policy::WorkpathOnly,
            Policy::WorkloadOnly,
            Policy::Unified,
        ]
    }

    /// Short label used by the benchmark harness tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Policy::Baseline => "baseline",
            Policy::WorkpathOnly => "workpath",
            Policy::WorkloadOnly => "workload",
            Policy::Unified => "unified",
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_flags() {
        assert!(!Policy::Baseline.workpath());
        assert!(!Policy::Baseline.workload());
        assert!(Policy::WorkpathOnly.workpath());
        assert!(!Policy::WorkpathOnly.workload());
        assert!(!Policy::WorkloadOnly.workpath());
        assert!(Policy::WorkloadOnly.workload());
        assert!(Policy::Unified.workpath());
        assert!(Policy::Unified.workload());
    }

    #[test]
    fn default_is_unified() {
        assert_eq!(Policy::default(), Policy::Unified);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Policy::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn only_baseline_is_disabled() {
        for p in Policy::all() {
            assert_eq!(p.is_enabled(), p != Policy::Baseline);
        }
    }
}
