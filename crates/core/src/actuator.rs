//! The actuation boundary between tempo decisions and DVFS hardware.

use crate::{Frequency, TempoLevel, WorkerId};

/// One tempo actuation emitted by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TempoChange {
    /// The worker whose hosting core changes speed.
    pub worker: WorkerId,
    /// The new tempo level.
    pub level: TempoLevel,
    /// The frequency the level maps to under the active
    /// [`FreqMap`](crate::FreqMap).
    pub frequency: Frequency,
}

/// Receives frequency changes decided by the
/// [`TempoController`](crate::TempoController).
///
/// Implementations include the discrete-event simulator's virtual cores
/// (`hermes-sim`), the timing-dilation emulator and the Linux `cpufreq`
/// sysfs driver (`hermes-rt`), and the in-memory recorders below.
///
/// The controller only calls [`apply`](Self::apply) when the level
/// actually changed, so implementations need not deduplicate.
pub trait FrequencyActuator {
    /// Actuate one tempo change on the core hosting `change.worker`.
    fn apply(&mut self, change: TempoChange);
}

/// An actuator that ignores all changes; useful for the baseline policy
/// and for dry-running controllers in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullActuator;

impl FrequencyActuator for NullActuator {
    fn apply(&mut self, _change: TempoChange) {}
}

/// An actuator that records every change, for tests and tracing.
///
/// ```
/// use hermes_core::{FrequencyActuator, RecordingActuator, TempoChange,
///                   Frequency, TempoLevel, WorkerId};
/// let mut rec = RecordingActuator::new();
/// rec.apply(TempoChange {
///     worker: WorkerId(1),
///     level: TempoLevel(1),
///     frequency: Frequency::from_mhz(1600),
/// });
/// assert_eq!(rec.changes().len(), 1);
/// assert_eq!(rec.last_level(WorkerId(1)), Some(TempoLevel(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecordingActuator {
    changes: Vec<TempoChange>,
}

impl RecordingActuator {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Every change applied so far, in order.
    #[must_use]
    pub fn changes(&self) -> &[TempoChange] {
        &self.changes
    }

    /// The most recent level applied for `worker`, if any.
    #[must_use]
    pub fn last_level(&self, worker: WorkerId) -> Option<TempoLevel> {
        self.changes
            .iter()
            .rev()
            .find(|c| c.worker == worker)
            .map(|c| c.level)
    }

    /// The most recent frequency applied for `worker`, if any.
    #[must_use]
    pub fn last_frequency(&self, worker: WorkerId) -> Option<Frequency> {
        self.changes
            .iter()
            .rev()
            .find(|c| c.worker == worker)
            .map(|c| c.frequency)
    }

    /// Drop all recorded changes.
    pub fn clear(&mut self) {
        self.changes.clear();
    }
}

impl FrequencyActuator for RecordingActuator {
    fn apply(&mut self, change: TempoChange) {
        self.changes.push(change);
    }
}

impl<A: FrequencyActuator + ?Sized> FrequencyActuator for &mut A {
    fn apply(&mut self, change: TempoChange) {
        (**self).apply(change);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_actuator_tracks_per_worker_history() {
        let mut rec = RecordingActuator::new();
        let mk = |w: usize, l: usize, mhz: u64| TempoChange {
            worker: WorkerId(w),
            level: TempoLevel(l),
            frequency: Frequency::from_mhz(mhz),
        };
        rec.apply(mk(0, 1, 1600));
        rec.apply(mk(1, 2, 1400));
        rec.apply(mk(0, 0, 2400));
        assert_eq!(rec.last_level(WorkerId(0)), Some(TempoLevel(0)));
        assert_eq!(
            rec.last_frequency(WorkerId(0)),
            Some(Frequency::from_mhz(2400))
        );
        assert_eq!(rec.last_level(WorkerId(1)), Some(TempoLevel(2)));
        assert_eq!(rec.last_level(WorkerId(9)), None);
        assert_eq!(rec.changes().len(), 3);
        rec.clear();
        assert!(rec.changes().is_empty());
    }

    #[test]
    fn null_actuator_is_callable() {
        let mut n = NullActuator;
        n.apply(TempoChange {
            worker: WorkerId(0),
            level: TempoLevel(0),
            frequency: Frequency::from_mhz(1000),
        });
    }

    #[test]
    fn mut_ref_forwarding() {
        fn takes_actuator<A: FrequencyActuator>(a: &mut A) {
            a.apply(TempoChange {
                worker: WorkerId(0),
                level: TempoLevel(1),
                frequency: Frequency::from_mhz(1600),
            });
        }
        let mut rec = RecordingActuator::new();
        takes_actuator(&mut rec);
        assert_eq!(rec.changes().len(), 1);
    }
}
