//! Tempo-transition trace records emitted by the controller.
//!
//! The [`TempoController`](crate::TempoController) is a pure state
//! machine; several of its transitions (immediacy relays in particular)
//! change workers *other* than the one whose hook is running, so a host
//! cannot reconstruct the transition stream from hook calls alone. When
//! tracing is enabled ([`TempoController::set_tracing`]), the controller
//! appends one [`TransitionRecord`] per tempo transition to an internal
//! buffer that the host drains after each hook call
//! ([`TempoController::drain_transitions`]) and forwards to its telemetry
//! sink.

use crate::{TempoLevel, WorkerId};

/// The kind of a tempo transition, mirroring the counters of
/// [`TempoStats`](crate::TempoStats) one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// Thief procrastination: a successful steal slowed the thief
    /// (paper Fig. 5 line 20; counted in `path_downs`).
    PathDown,
    /// Immediacy relay: a drained worker raised a downstream thief
    /// (paper Fig. 5 lines 5–14; counted in `relay_ups`).
    RelayUp,
    /// Workload raise: a push crossed a threshold upward
    /// (counted in `workload_ups`).
    WorkloadUp,
    /// Workload lowering: a pop or steal crossed a threshold downward
    /// (counted in `workload_downs`).
    WorkloadDown,
}

impl TransitionKind {
    /// All kinds, in the order used by transition-mix vectors.
    #[must_use]
    pub fn all() -> [TransitionKind; 4] {
        [
            TransitionKind::PathDown,
            TransitionKind::RelayUp,
            TransitionKind::WorkloadUp,
            TransitionKind::WorkloadDown,
        ]
    }

    /// Short label for reports and tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TransitionKind::PathDown => "path_down",
            TransitionKind::RelayUp => "relay_up",
            TransitionKind::WorkloadUp => "workload_up",
            TransitionKind::WorkloadDown => "workload_down",
        }
    }
}

impl std::fmt::Display for TransitionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One tempo transition: which worker moved, why, and the logical level
/// it landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// The worker whose tempo changed.
    pub worker: WorkerId,
    /// What caused the transition.
    pub kind: TransitionKind,
    /// The worker's logical tempo level *after* the transition.
    pub level: TempoLevel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = TransitionKind::all().iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
        assert_eq!(TransitionKind::PathDown.to_string(), "path_down");
    }
}
