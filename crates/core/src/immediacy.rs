//! The immediacy list: a doubly-linked order of workers by work-first
//! immediacy (paper §3.3, Fig. 5).
//!
//! When worker `w1`'s `next` is `w2`, worker `w2` is processing a task
//! *immediately following* the tasks processed by `w1` under the serial
//! (work-first) order. Thieves are inserted right after their victims;
//! a thief stealing from an already-stolen victim is inserted *ahead* of
//! the earlier thief, because later-stolen tasks are more immediate than
//! earlier-stolen ones (paper §2, §3.3 lines 21–26).

use crate::WorkerId;

/// Doubly-linked immediacy order across the workers of one pool.
///
/// Workers are dense indices `0..len`. A worker with no `prev` is at the
/// *beginning* of (or outside) any immediacy chain and is treated as
/// carrying immediate work: the unified algorithm never lowers its tempo
/// on workload grounds (the `prev != null` guard in POP/STEAL).
///
/// ```
/// use hermes_core::{ImmediacyList, WorkerId};
/// let mut list = ImmediacyList::new(4);
/// list.insert_thief(WorkerId(1), WorkerId(0)); // w1 steals from w0
/// list.insert_thief(WorkerId(2), WorkerId(1)); // w2 steals from w1 (thief's thief)
/// assert_eq!(list.downstream(WorkerId(0)), vec![WorkerId(1), WorkerId(2)]);
/// assert!(list.is_head(WorkerId(0)));
/// assert!(!list.is_head(WorkerId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImmediacyList {
    prev: Vec<Option<usize>>,
    next: Vec<Option<usize>>,
}

impl ImmediacyList {
    /// An empty order over `num_workers` workers (no links).
    #[must_use]
    pub fn new(num_workers: usize) -> Self {
        ImmediacyList {
            prev: vec![None; num_workers],
            next: vec![None; num_workers],
        }
    }

    /// Number of workers this list covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prev.len()
    }

    /// Whether the list covers zero workers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prev.is_empty()
    }

    /// Whether `w` has no more-immediate predecessor.
    ///
    /// True both for a worker heading a chain and for a worker in no chain;
    /// in either case the worker is processing the most immediate work it
    /// knows of, and the unified algorithm keeps its tempo fast.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[must_use]
    pub fn is_head(&self, w: WorkerId) -> bool {
        self.prev[w.0].is_none()
    }

    /// Whether `w` is linked to any other worker.
    #[must_use]
    pub fn is_linked(&self, w: WorkerId) -> bool {
        self.prev[w.0].is_some() || self.next[w.0].is_some()
    }

    /// The worker processing the next-most-immediate work after `w`, if any.
    #[must_use]
    pub fn next_of(&self, w: WorkerId) -> Option<WorkerId> {
        self.next[w.0].map(WorkerId)
    }

    /// The worker processing the work immediately preceding `w`'s, if any.
    #[must_use]
    pub fn prev_of(&self, w: WorkerId) -> Option<WorkerId> {
        self.prev[w.0].map(WorkerId)
    }

    /// Record a successful steal: `thief` becomes the immediate next of
    /// `victim` (paper Fig. 5 lines 20–26).
    ///
    /// If the victim already had a thief, the new thief is inserted
    /// *between* victim and the previous thief — the newly stolen task is
    /// more immediate than earlier-stolen ones. If the thief is still
    /// linked from a previous relationship it is unlinked first, so the
    /// structure remains a set of disjoint chains.
    ///
    /// # Panics
    ///
    /// Panics if `thief == victim` or either id is out of range.
    pub fn insert_thief(&mut self, thief: WorkerId, victim: WorkerId) {
        assert_ne!(thief, victim, "a worker cannot steal from itself");
        self.unlink(thief);
        let (t, v) = (thief.0, victim.0);
        // Paper line 21-24 (with the obvious fix of the line-23 typo
        // `v.prev <- w.prev`: the old next's prev must point at the thief).
        if let Some(old_next) = self.next[v] {
            self.next[t] = Some(old_next);
            self.prev[old_next] = Some(t);
        }
        self.next[v] = Some(t);
        self.prev[t] = Some(v);
    }

    /// Remove `w` from its chain, reconnecting its neighbours
    /// (paper Fig. 5 lines 11–14).
    pub fn unlink(&mut self, w: WorkerId) {
        let i = w.0;
        let (p, n) = (self.prev[i], self.next[i]);
        if let Some(p) = p {
            self.next[p] = n;
        }
        if let Some(n) = n {
            self.prev[n] = p;
        }
        self.prev[i] = None;
        self.next[i] = None;
    }

    /// All workers strictly downstream of `w` (its thief, its thief's
    /// thief, …) in immediacy order.
    ///
    /// This is the set sped up by *Immediacy Relay* when `w` runs out of
    /// work (paper Fig. 5 lines 6–10).
    #[must_use]
    pub fn downstream(&self, w: WorkerId) -> Vec<WorkerId> {
        let mut out = Vec::new();
        let mut cur = self.next[w.0];
        // Chains are acyclic by construction; the bound is belt and braces
        // against misuse under concurrent mutation.
        let mut budget = self.len();
        while let Some(i) = cur {
            if budget == 0 {
                break;
            }
            budget -= 1;
            out.push(WorkerId(i));
            cur = self.next[i];
        }
        out
    }

    /// Verify structural invariants; used by tests and debug assertions.
    ///
    /// Invariants: `next`/`prev` are mutually inverse, and chains are
    /// acyclic.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn assert_valid(&self) {
        let n = self.len();
        for i in 0..n {
            if let Some(j) = self.next[i] {
                assert!(j < n, "next[{i}] out of range");
                assert_eq!(self.prev[j], Some(i), "prev/next mismatch at {i}->{j}");
                assert_ne!(j, i, "self-loop at {i}");
            }
            if let Some(j) = self.prev[i] {
                assert!(j < n, "prev[{i}] out of range");
                assert_eq!(self.next[j], Some(i), "next/prev mismatch at {j}->{i}");
            }
        }
        // Acyclicity: walking next from any head must terminate.
        for i in 0..n {
            if self.prev[i].is_none() {
                let mut steps = 0;
                let mut cur = Some(i);
                while let Some(c) = cur {
                    steps += 1;
                    assert!(steps <= n, "cycle reachable from head {i}");
                    cur = self.next[c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: usize) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn fresh_list_has_no_links() {
        let list = ImmediacyList::new(3);
        for i in 0..3 {
            assert!(list.is_head(w(i)));
            assert!(!list.is_linked(w(i)));
            assert!(list.downstream(w(i)).is_empty());
        }
        list.assert_valid();
    }

    #[test]
    fn simple_chain_forms_on_steals() {
        // Paper Fig. 3(a)-(c): w2 steals from w1, then w3 steals from w2.
        let mut list = ImmediacyList::new(4);
        list.insert_thief(w(1), w(0));
        list.insert_thief(w(2), w(1));
        assert_eq!(list.downstream(w(0)), vec![w(1), w(2)]);
        assert_eq!(list.prev_of(w(1)), Some(w(0)));
        assert_eq!(list.next_of(w(1)), Some(w(2)));
        assert!(list.is_head(w(0)));
        list.assert_valid();
    }

    #[test]
    fn second_thief_inserted_ahead_of_first() {
        // Victim already stolen-from: the newer thief is MORE immediate and
        // goes directly after the victim (paper lines 21-26).
        let mut list = ImmediacyList::new(4);
        list.insert_thief(w(1), w(0)); // first thief
        list.insert_thief(w(2), w(0)); // second thief, same victim
        assert_eq!(list.downstream(w(0)), vec![w(2), w(1)]);
        list.assert_valid();
    }

    #[test]
    fn unlink_reconnects_neighbours() {
        let mut list = ImmediacyList::new(4);
        list.insert_thief(w(1), w(0));
        list.insert_thief(w(2), w(1));
        list.unlink(w(1)); // middle of chain runs out of work
        assert_eq!(list.downstream(w(0)), vec![w(2)]);
        assert_eq!(list.prev_of(w(2)), Some(w(0)));
        assert!(!list.is_linked(w(1)));
        list.assert_valid();
    }

    #[test]
    fn unlink_head_promotes_next() {
        let mut list = ImmediacyList::new(3);
        list.insert_thief(w(1), w(0));
        list.insert_thief(w(2), w(1));
        list.unlink(w(0));
        assert!(list.is_head(w(1)));
        assert_eq!(list.downstream(w(1)), vec![w(2)]);
        list.assert_valid();
    }

    #[test]
    fn unlink_is_idempotent() {
        let mut list = ImmediacyList::new(2);
        list.insert_thief(w(1), w(0));
        list.unlink(w(1));
        list.unlink(w(1));
        assert!(!list.is_linked(w(0)) && !list.is_linked(w(1)));
        list.assert_valid();
    }

    #[test]
    fn restealing_moves_thief_to_new_victim() {
        // Paper Fig. 3(f): a previous victim becomes a thief of its thief.
        let mut list = ImmediacyList::new(3);
        list.insert_thief(w(1), w(0));
        list.unlink(w(0)); // w0 ran dry
        list.insert_thief(w(0), w(1)); // and now steals from w1
        assert_eq!(list.downstream(w(1)), vec![w(0)]);
        assert!(list.is_head(w(1)));
        list.assert_valid();
    }

    #[test]
    #[should_panic(expected = "cannot steal from itself")]
    fn self_steal_panics() {
        let mut list = ImmediacyList::new(2);
        list.insert_thief(w(0), w(0));
    }

    #[test]
    fn two_disjoint_chains_coexist() {
        let mut list = ImmediacyList::new(6);
        list.insert_thief(w(1), w(0));
        list.insert_thief(w(4), w(3));
        list.insert_thief(w(5), w(4));
        assert_eq!(list.downstream(w(0)), vec![w(1)]);
        assert_eq!(list.downstream(w(3)), vec![w(4), w(5)]);
        assert!(list.downstream(w(2)).is_empty());
        list.assert_valid();
    }
}
