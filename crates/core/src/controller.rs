//! The unified HERMES tempo-control algorithm (paper Fig. 5).

use crate::{
    FreqMap, Frequency, FrequencyActuator, ImmediacyList, OnlineProfiler, Policy, ProfilerConfig,
    TempoChange, TempoLevel, TempoStats, ThresholdTable, TransitionKind, TransitionRecord,
    WorkerId,
};

/// Configuration of a [`TempoController`].
///
/// Build one with [`TempoConfig::builder`].
#[derive(Debug, Clone)]
pub struct TempoConfig {
    /// Active strategy combination.
    pub policy: Policy,
    /// N-frequency tempo→frequency mapping (paper §3.4).
    pub freq_map: FreqMap,
    /// Number of workers in the pool.
    pub num_workers: usize,
    /// Number of workload thresholds `K` (paper §3.2).
    pub k_thresholds: usize,
    /// Online profiler settings.
    pub profiler: ProfilerConfig,
    /// Thresholds in force before the first profiler recomputation.
    pub initial_thresholds: ThresholdTable,
}

impl TempoConfig {
    /// Start building a configuration.
    #[must_use]
    pub fn builder() -> TempoConfigBuilder {
        TempoConfigBuilder::default()
    }
}

/// Builder for [`TempoConfig`].
///
/// ```
/// use hermes_core::{Frequency, Policy, TempoConfig};
/// let config = TempoConfig::builder()
///     .policy(Policy::Unified)
///     .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
///     .workers(8)
///     .k_thresholds(2)
///     .build();
/// assert_eq!(config.freq_map.num_levels(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TempoConfigBuilder {
    policy: Policy,
    frequencies: Vec<Frequency>,
    workers: Option<usize>,
    k_thresholds: usize,
    profiler: Option<ProfilerConfig>,
    initial_avg: Option<f64>,
}

impl TempoConfigBuilder {
    /// Select the strategy combination (default: [`Policy::Unified`]).
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Elect the frequencies used for tempo levels, fastest first
    /// (*N-frequency tempo control*). Required.
    #[must_use]
    pub fn frequencies(mut self, freqs: Vec<Frequency>) -> Self {
        self.frequencies = freqs;
        self
    }

    /// Number of workers in the pool. Required.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Number of workload thresholds `K` (default 2, as in the paper's
    /// worked example).
    #[must_use]
    pub fn k_thresholds(mut self, k: usize) -> Self {
        self.k_thresholds = k;
        self
    }

    /// Online profiler settings (default: [`ProfilerConfig::default`]).
    #[must_use]
    pub fn profiler(mut self, p: ProfilerConfig) -> Self {
        self.profiler = Some(p);
        self
    }

    /// Assumed average deque size before the first profiled recomputation
    /// (default 8.0).
    #[must_use]
    pub fn initial_average(mut self, avg: f64) -> Self {
        self.initial_avg = Some(avg);
        self
    }

    /// Calibration factor for the threshold formula (default 1.0 — the
    /// paper's formula verbatim; see
    /// [`ThresholdTable::from_average_scaled`]).
    #[must_use]
    pub fn threshold_scale(mut self, scale: f64) -> Self {
        let mut p = self.profiler.unwrap_or_default();
        p.threshold_scale = scale;
        self.profiler = Some(p);
        self
    }

    /// Finish building.
    ///
    /// # Panics
    ///
    /// Panics if no frequencies were supplied, the frequencies are not
    /// strictly descending, or the worker count is missing or zero.
    #[must_use]
    pub fn build(self) -> TempoConfig {
        let freq_map = FreqMap::new(self.frequencies).expect("invalid frequency list");
        let num_workers = self.workers.expect("worker count is required");
        assert!(num_workers > 0, "at least one worker is required");
        let k = if self.k_thresholds == 0 {
            2
        } else {
            self.k_thresholds
        };
        let initial_avg = self.initial_avg.unwrap_or(8.0);
        let profiler = self.profiler.unwrap_or_default();
        let initial_thresholds =
            ThresholdTable::from_average_scaled(initial_avg, k, profiler.threshold_scale);
        TempoConfig {
            policy: self.policy,
            freq_map,
            num_workers,
            k_thresholds: k,
            profiler,
            initial_thresholds,
        }
    }
}

/// The unified HERMES tempo controller (paper Fig. 5).
///
/// A host scheduler drives the controller through hooks mirroring the
/// scheduler events of the classic work-stealing algorithm:
///
/// | Scheduler event                     | Hook                      |
/// |-------------------------------------|---------------------------|
/// | bootstrap                           | [`initialize`](Self::initialize) |
/// | `PUSH(w, t)` grew the deque         | [`on_push`](Self::on_push) |
/// | `POP(w)` succeeded                  | [`on_pop`](Self::on_pop)  |
/// | `POP(w)` returned null (out of work)| [`on_out_of_work`](Self::on_out_of_work) |
/// | `STEAL(v)` by `w` succeeded         | [`on_steal`](Self::on_steal) |
/// | profiler period elapsed             | [`record_deque_sample`](Self::record_deque_sample) + [`recompute_thresholds`](Self::recompute_thresholds) |
///
/// ## The tempo level
///
/// Fig. 5's `UP`/`DOWN` operate on a single per-worker tempo level `V`,
/// together with the deque-size band `S` (0 ..= K) and its implied
/// *workload floor*:
///
/// ```text
/// floor(w) = K - S(w)          — the workload-justified minimum level
/// UP(w):   V = max(V - 1, floor(w))
/// DOWN(w): V += 1 (deep logical levels allowed; frequency saturates)
/// level(w) = V(w)              — frequency = FreqMap(level)
/// ```
///
/// * *Thief Procrastination* assigns
///   `V(thief) = max(V(victim) + 1, floor(thief))`, after re-syncing the
///   thief's band to its now-empty deque (Fig. 4(b): "its deque is of
///   size 0 … the tempo is set at the lowest one").
/// * *Immediacy Relay* applies `UP` to every downstream worker: it
///   removes procrastination but never undercuts the workload floor — a
///   drained deque stays slow until it refills. Deep logical levels mean
///   "w2 can still maintain a slower tempo than w1" (§3.3) even under
///   2-frequency control.
/// * Workload crossings pair band and level moves exactly as Fig. 5
///   (`S++` with `UP`, `S--` with `DOWN`); because the floor falls in
///   step with each raise, a thief whose stolen subtree grows a deep
///   deque *cancels* its procrastination without waiting for a relay —
///   the mechanism behind the unified algorithm's lower performance loss
///   ("the best of the two worlds", §4.2). Full band round trips never
///   ratchet the level.
///
/// The level maps to a core frequency through the N-frequency
/// [`FreqMap`]: levels at or beyond `N-1` saturate at the slowest elected
/// frequency. See `DESIGN.md` for the reconstruction argument.
///
/// The controller is a pure state machine: hosts provide mutual exclusion
/// (the simulator is single-threaded; the real runtime serialises hook
/// calls exactly where the paper's runtime holds the victim lock).
#[derive(Debug, Clone)]
pub struct TempoController {
    config: TempoConfig,
    /// Virtual tempo level per worker (see the type-level docs).
    virtuals: Vec<i64>,
    /// Workload band index `S` per worker (0 ..= K).
    bands: Vec<usize>,
    /// Last level actually actuated, for deduplication.
    applied: Vec<TempoLevel>,
    list: ImmediacyList,
    table: ThresholdTable,
    profiler: OnlineProfiler,
    /// Whether each worker is currently parked (see
    /// [`on_park`](Self::on_park)): while set, actuations for that
    /// worker are deferred — its core is pinned at the slowest elected
    /// frequency until [`on_unpark`](Self::on_unpark).
    parked: Vec<bool>,
    stats: TempoStats,
    /// When true, every tempo transition is appended to `trace_buf` for
    /// the host to drain (see [`drain_transitions`](Self::drain_transitions)).
    tracing: bool,
    trace_buf: Vec<TransitionRecord>,
}

/// Cap on the logical level, far beyond any realistic procrastination
/// chain; present only to bound drift.
const MAX_VIRTUAL: i64 = 60;

impl TempoController {
    /// Create a controller with every worker at the fastest tempo
    /// (the paper bootstraps execution *allegro*).
    #[must_use]
    pub fn new(config: TempoConfig) -> Self {
        let n = config.num_workers;
        let table = config.initial_thresholds.clone();
        let profiler = OnlineProfiler::new(config.profiler.clone(), config.k_thresholds);
        TempoController {
            virtuals: vec![0; n],
            // Top band at bootstrap: empty deques have produced no
            // evidence yet, and the paper starts everyone fastest.
            bands: vec![config.k_thresholds; n],
            applied: vec![TempoLevel::FASTEST; n],
            list: ImmediacyList::new(n),
            table,
            profiler,
            parked: vec![false; n],
            config,
            stats: TempoStats::default(),
            tracing: false,
            trace_buf: Vec::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TempoConfig {
        &self.config
    }

    /// Current logical tempo level of `w` (see the type-level docs).
    #[must_use]
    pub fn level(&self, w: WorkerId) -> TempoLevel {
        TempoLevel(self.virtuals[w.0].max(0) as usize)
    }

    /// The raw logical level of `w` as an integer.
    #[must_use]
    pub fn virtual_level(&self, w: WorkerId) -> i64 {
        self.virtuals[w.0]
    }

    /// Current frequency of the core hosting `w` under the active map.
    #[must_use]
    pub fn frequency(&self, w: WorkerId) -> Frequency {
        self.config.freq_map.frequency(self.level(w))
    }

    /// Current workload band `S` of `w` (`0 ..= K`, higher = longer
    /// deque = faster).
    #[must_use]
    pub fn band(&self, w: WorkerId) -> usize {
        self.bands[w.0]
    }

    /// The thresholds currently in force.
    #[must_use]
    pub fn thresholds(&self) -> &ThresholdTable {
        &self.table
    }

    /// The immediacy list (read-only view).
    #[must_use]
    pub fn immediacy(&self) -> &ImmediacyList {
        &self.list
    }

    /// Statistics accumulated since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    #[must_use]
    pub fn stats(&self) -> TempoStats {
        self.stats
    }

    /// Zero the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = TempoStats::default();
    }

    /// Enable or disable transition tracing (off by default).
    ///
    /// While enabled, the controller buffers one [`TransitionRecord`]
    /// per tempo transition — including transitions of workers *other*
    /// than the hook's subject (immediacy relays) that a host cannot
    /// reconstruct from hook calls alone. Hosts must call
    /// [`drain_transitions`](Self::drain_transitions) after each hook
    /// invocation to keep the buffer empty.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if !on {
            self.trace_buf.clear();
        }
    }

    /// Whether transition tracing is enabled.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Hand every buffered transition to `f`, oldest first, and clear
    /// the buffer (the backing allocation is reused across calls).
    pub fn drain_transitions<F: FnMut(TransitionRecord)>(&mut self, mut f: F) {
        for record in self.trace_buf.drain(..) {
            f(record);
        }
    }

    /// Record one transition of `w` when tracing is on; called exactly
    /// where the corresponding [`TempoStats`] counter is incremented, so
    /// the trace and the stats always agree.
    fn trace(&mut self, w: WorkerId, kind: TransitionKind) {
        if self.tracing {
            self.trace_buf.push(TransitionRecord {
                worker: w,
                kind,
                level: TempoLevel(self.virtuals[w.0].max(0) as usize),
            });
        }
    }

    /// Actuate the bootstrap frequency (fastest) for every worker.
    pub fn initialize<A: FrequencyActuator>(&mut self, actuator: &mut A) {
        for w in 0..self.config.num_workers {
            actuator.apply(TempoChange {
                worker: WorkerId(w),
                level: TempoLevel::FASTEST,
                frequency: self.config.freq_map.fastest(),
            });
        }
    }

    /// Hook: `w` successfully stole a task from victim `v`; the victim's
    /// deque holds `victim_len` tasks *after* the steal.
    ///
    /// Applies, in the paper's order: the victim-side workload check of
    /// `STEAL` (Fig. 5, Algorithm 3.5), then *Thief Procrastination*
    /// (`DOWN(w, v)`) and the immediacy-list insertion (Fig. 5 lines
    /// 20–26).
    pub fn on_steal<A: FrequencyActuator>(
        &mut self,
        thief: WorkerId,
        victim: WorkerId,
        victim_len: usize,
        actuator: &mut A,
    ) {
        self.stats.steals += 1;
        if self.config.policy.workload() {
            self.workload_lower(victim, victim_len, actuator);
            // Fig. 4(b): the thief's workload state re-syncs to its
            // now-empty deque ("its deque is of size 0, lower than the
            // first threshold, the tempo ... is set at the lowest one").
            // Without this, a band stuck at the bootstrap top would let a
            // procrastinated thief never regain speed through deque
            // growth.
            self.bands[thief.0] = 0;
            self.virtuals[thief.0] =
                self.clamp_virtual(self.virtuals[thief.0].max(self.floor(thief)));
            self.refresh(thief, actuator);
        }
        if self.config.policy.workpath() {
            // DOWN(w, v): one tempo lower than the victim (Fig. 5 l. 20),
            // bounded below by the thief's own workload floor.
            self.virtuals[thief.0] =
                self.clamp_virtual((self.virtuals[victim.0] + 1).max(self.floor(thief)));
            self.stats.path_downs += 1;
            self.trace(thief, TransitionKind::PathDown);
            self.refresh(thief, actuator);
            self.list.insert_thief(thief, victim);
        }
    }

    /// Hook: `w` popped null — it is out of work (paper Fig. 5 lines
    /// 5–14). Performs *Immediacy Relay*: every worker downstream of `w`
    /// is raised one tempo level, then `w` leaves the immediacy list.
    pub fn on_out_of_work<A: FrequencyActuator>(&mut self, w: WorkerId, actuator: &mut A) {
        if !self.config.policy.workpath() {
            return;
        }
        let downstream = self.list.downstream(w);
        if !downstream.is_empty() {
            self.stats.relays += 1;
            for d in downstream {
                // UP(w): removes relayed immediacy but never undercuts
                // the workload floor — a drained deque stays slow.
                self.virtuals[d.0] = (self.virtuals[d.0] - 1).max(self.floor(d));
                self.stats.relay_ups += 1;
                self.trace(d, TransitionKind::RelayUp);
                self.refresh(d, actuator);
            }
        }
        self.list.unlink(w);
    }

    /// Hook: `w` pushed a task; its deque now holds `len` tasks
    /// (paper Fig. 5, Algorithm 3.3).
    pub fn on_push<A: FrequencyActuator>(&mut self, w: WorkerId, len: usize, actuator: &mut A) {
        if !self.config.policy.workload() {
            return;
        }
        if self.table.should_raise(len, self.bands[w.0]) {
            self.bands[w.0] += 1;
            // UP(w) paired with the band move; the floor fell by one in
            // step, so this tracks exactly for floor-resting workers.
            self.virtuals[w.0] = (self.virtuals[w.0] - 1).max(self.floor(w));
            self.stats.workload_ups += 1;
            self.trace(w, TransitionKind::WorkloadUp);
            self.refresh(w, actuator);
        }
    }

    /// Hook: `w` popped a task from its own deque; the deque now holds
    /// `len` tasks (paper Fig. 5, Algorithm 3.4).
    pub fn on_pop<A: FrequencyActuator>(&mut self, w: WorkerId, len: usize, actuator: &mut A) {
        if !self.config.policy.workload() {
            return;
        }
        self.workload_lower(w, len, actuator);
    }

    /// Hook: `w` exhausted its bounded idle spin and is about to park on
    /// the host's idle primitive (condvar, futex…).
    ///
    /// A parked worker executes nothing, so under any non-baseline
    /// policy its core is pinned at the **slowest elected frequency** —
    /// the deepest tempo the paper's controller can express — without
    /// disturbing the worker's logical level: parking is a scheduler
    /// state, not a tempo transition, and the level must survive the nap
    /// so the first steal after waking is procrastinated relative to the
    /// right baseline. While parked, level changes (immediacy relays
    /// from other workers) are tracked but not actuated;
    /// [`on_unpark`](Self::on_unpark) actuates the then-current level.
    ///
    /// Idempotent per episode: a second `on_park` without an intervening
    /// unpark is a host bug and is ignored.
    pub fn on_park<A: FrequencyActuator>(&mut self, w: WorkerId, actuator: &mut A) {
        if self.parked[w.0] {
            return;
        }
        self.parked[w.0] = true;
        self.stats.parks += 1;
        if !self.config.policy.is_enabled() {
            return;
        }
        let slowest = self.config.freq_map.slowest();
        if self.config.freq_map.frequency(self.applied[w.0]) != slowest {
            self.stats.actuations += 1;
            actuator.apply(TempoChange {
                worker: w,
                level: self.level(w),
                frequency: slowest,
            });
        }
    }

    /// Hook: `w` woke from a park episode. Re-actuates the frequency of
    /// the worker's current tempo level if it differs from the parked
    /// (slowest) frequency the core was pinned at.
    pub fn on_unpark<A: FrequencyActuator>(&mut self, w: WorkerId, actuator: &mut A) {
        if !self.parked[w.0] {
            return;
        }
        self.parked[w.0] = false;
        self.stats.unparks += 1;
        if !self.config.policy.is_enabled() {
            return;
        }
        // The level may have moved while parked (relays); actuate
        // whatever is current now.
        self.applied[w.0] = self.level(w);
        let freq = self.config.freq_map.frequency(self.applied[w.0]);
        if freq != self.config.freq_map.slowest() {
            self.stats.actuations += 1;
            actuator.apply(TempoChange {
                worker: w,
                level: self.applied[w.0],
                frequency: freq,
            });
        }
    }

    /// Whether `w` is currently parked (between
    /// [`on_park`](Self::on_park) and [`on_unpark`](Self::on_unpark)).
    #[must_use]
    pub fn is_parked(&self, w: WorkerId) -> bool {
        self.parked[w.0]
    }

    /// Record one deque-size sample for the online profiler. Hosts call
    /// this for every worker once per profiler period.
    pub fn record_deque_sample(&mut self, deque_len: usize) {
        self.profiler.record(deque_len);
    }

    /// Recompute thresholds from the profiled window (paper §3.2); call
    /// once per profiler period after sampling.
    pub fn recompute_thresholds(&mut self) {
        if !self.config.policy.workload() {
            return;
        }
        self.table = self.profiler.recompute();
        self.stats.threshold_updates += 1;
    }

    /// The profiler period in nanoseconds (convenience for hosts).
    #[must_use]
    pub fn profiler_period_ns(&self) -> u64 {
        self.profiler.period_ns()
    }

    fn clamp_virtual(&self, v: i64) -> i64 {
        v.clamp(0, MAX_VIRTUAL)
    }

    /// The workload-justified minimum level of `w` (`K - S`), zero when
    /// workload sensitivity is disabled.
    fn floor(&self, w: WorkerId) -> i64 {
        if self.config.policy.workload() {
            (self.config.k_thresholds - self.bands[w.0]) as i64
        } else {
            0
        }
    }

    /// Workload-sensitive lowering shared by POP and STEAL: drop one band
    /// (slowing one tempo level), unless the worker heads an immediacy
    /// chain — the paper's single interaction point between the two
    /// strategies ("when a worker is at the beginning of the immediacy
    /// list, we choose not to reduce its tempo even if workload
    /// sensitivity advises so", §3.3).
    ///
    /// *Interpretation note* (see `DESIGN.md`): we read "at the beginning
    /// of the immediacy list" as *an active victim* — a worker currently
    /// linked into a chain with no more-immediate predecessor. A worker
    /// in no chain at all is subject to workload control as usual;
    /// otherwise the workload strategy would be inert in the unified
    /// algorithm, contradicting the additive contributions of the
    /// paper's Figs. 10–13. The guard only exists when workpath
    /// sensitivity participates; in workload-only mode there is no list
    /// to consult.
    fn workload_lower<A: FrequencyActuator>(&mut self, w: WorkerId, len: usize, actuator: &mut A) {
        if !self.table.should_lower(len, self.bands[w.0]) {
            return;
        }
        if self.config.policy.workpath() && self.list.is_linked(w) && self.list.is_head(w) {
            self.stats.guard_suppressions += 1;
            return;
        }
        self.bands[w.0] -= 1;
        self.virtuals[w.0] = self.clamp_virtual(self.virtuals[w.0] + 1);
        self.stats.workload_downs += 1;
        self.trace(w, TransitionKind::WorkloadDown);
        self.refresh(w, actuator);
    }

    /// Re-derive `w`'s level from its components and actuate on change.
    fn refresh<A: FrequencyActuator>(&mut self, w: WorkerId, actuator: &mut A) {
        let level = self.level(w);
        if level == self.applied[w.0] {
            return;
        }
        self.applied[w.0] = level;
        // A parked worker's core is pinned at the slowest frequency;
        // defer the actuation to on_unpark (which reads `applied`).
        if self.parked[w.0] {
            return;
        }
        self.stats.actuations += 1;
        actuator.apply(TempoChange {
            worker: w,
            level,
            frequency: self.config.freq_map.frequency(level),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordingActuator;

    fn config(policy: Policy, workers: usize, nfreq: usize) -> TempoConfig {
        let all = [2400u64, 1900, 1600, 1400, 1200];
        TempoConfig::builder()
            .policy(policy)
            .frequencies(
                all[..nfreq]
                    .iter()
                    .map(|&m| Frequency::from_mhz(m))
                    .collect(),
            )
            .workers(workers)
            .k_thresholds(2)
            .initial_average(4.0)
            .build()
    }

    fn w(i: usize) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn bootstrap_is_fastest_everywhere() {
        let mut ctl = TempoController::new(config(Policy::Unified, 4, 2));
        let mut act = RecordingActuator::new();
        ctl.initialize(&mut act);
        assert_eq!(act.changes().len(), 4);
        for i in 0..4 {
            assert_eq!(ctl.level(w(i)), TempoLevel::FASTEST);
            assert_eq!(ctl.frequency(w(i)), Frequency::from_mhz(2400));
            assert_eq!(ctl.band(w(i)), 2, "top band assumed at bootstrap");
        }
    }

    #[test]
    fn thief_procrastination_slows_thief_one_level() {
        // Workpath-only view: the pure procrastination chain of Fig. 3.
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 4, 3));
        let mut act = RecordingActuator::new();
        ctl.on_steal(w(1), w(0), 2, &mut act);
        assert_eq!(ctl.level(w(0)), TempoLevel(0));
        assert_eq!(ctl.level(w(1)), TempoLevel(1));
        assert_eq!(ctl.virtual_level(w(1)), 1);
        assert_eq!(act.last_frequency(w(1)), Some(Frequency::from_mhz(1900)));
        // Thief's thief is slower still (paper Fig. 3(c)).
        ctl.on_steal(w(2), w(1), 2, &mut act);
        assert_eq!(ctl.level(w(2)), TempoLevel(2));
    }

    #[test]
    fn unified_thief_starts_at_its_workload_floor() {
        // Fig. 4(b) in the unified setting: a fresh thief's empty deque
        // puts it at the lowest workload tempo (floor K), dominating the
        // one-below-victim rule until its deque grows.
        let mut ctl = TempoController::new(config(Policy::Unified, 4, 3));
        let mut act = RecordingActuator::new();
        let above = ctl.thresholds().thresholds()[1] + 1;
        ctl.on_steal(w(1), w(0), above, &mut act);
        assert_eq!(ctl.band(w(1)), 0, "band re-synced to the empty deque");
        assert_eq!(ctl.level(w(1)), TempoLevel(2), "floor K = 2 dominates");
        // Deque growth across both thresholds restores the fast tempo.
        let t = ctl.thresholds().thresholds().to_vec();
        ctl.on_push(w(1), t[0] + 1, &mut act);
        ctl.on_push(w(1), t[1] + 1, &mut act);
        assert_eq!(ctl.level(w(1)), TempoLevel(0));
    }

    #[test]
    fn logical_levels_deepen_but_frequency_saturates() {
        // §3.3/§3.4: a thief's thief keeps a logically slower tempo than
        // its victim even when 2-frequency control maps both onto the
        // same slow frequency — so one relay raises both without
        // reordering them.
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 4, 2));
        let mut act = RecordingActuator::new();
        ctl.on_steal(w(1), w(0), 2, &mut act);
        ctl.on_steal(w(2), w(1), 2, &mut act);
        ctl.on_steal(w(3), w(2), 2, &mut act);
        assert_eq!(ctl.level(w(1)), TempoLevel(1));
        assert_eq!(ctl.level(w(2)), TempoLevel(2));
        assert_eq!(ctl.level(w(3)), TempoLevel(3));
        // All of them actuate the slow (second) frequency.
        for i in 1..4 {
            assert_eq!(ctl.frequency(w(i)), Frequency::from_mhz(1900));
        }
        // Relay from w1: w2 and w3 rise one LEVEL; w2 regains the fast
        // frequency, w3 is still slow and still behind w2.
        ctl.on_out_of_work(w(1), &mut act);
        assert_eq!(ctl.level(w(2)), TempoLevel(1));
        assert_eq!(ctl.level(w(3)), TempoLevel(2));
        assert!(
            ctl.level(w(3)) > ctl.level(w(2)),
            "relative order preserved"
        );
    }

    #[test]
    fn immediacy_relay_raises_all_downstream() {
        // Paper Fig. 3(d)-(e): worker 1 finishes; its thief (2) and the
        // thief's thief (3) each rise one level.
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 4, 3));
        let mut act = RecordingActuator::new();
        ctl.on_steal(w(2), w(1), 2, &mut act);
        ctl.on_steal(w(3), w(2), 2, &mut act);
        assert_eq!(ctl.level(w(2)), TempoLevel(1));
        assert_eq!(ctl.level(w(3)), TempoLevel(2));
        ctl.on_out_of_work(w(1), &mut act);
        assert_eq!(ctl.level(w(2)), TempoLevel(0));
        assert_eq!(ctl.level(w(3)), TempoLevel(1));
        assert!(ctl.level(w(3)) > ctl.level(w(2)));
        assert_eq!(ctl.stats().relays, 1);
        assert_eq!(ctl.stats().relay_ups, 2);
        // w1 left the chain; w2 is now a head.
        assert!(ctl.immediacy().is_head(w(2)));
    }

    #[test]
    fn out_of_work_without_thieves_is_quiet() {
        let mut ctl = TempoController::new(config(Policy::Unified, 2, 2));
        let mut act = RecordingActuator::new();
        ctl.on_out_of_work(w(0), &mut act);
        assert_eq!(ctl.stats().relays, 0);
        assert!(act.changes().is_empty());
    }

    #[test]
    fn workload_bands_follow_deque_size_absolutely() {
        // Fig. 4 narrative: tempo reflects the deque-size band.
        let mut ctl = TempoController::new(config(Policy::WorkloadOnly, 1, 3));
        let mut act = RecordingActuator::new();
        let t = ctl.thresholds().thresholds().to_vec();
        assert_eq!(ctl.band(w(0)), 2);
        assert_eq!(ctl.level(w(0)), TempoLevel(0));
        // Drain below the second threshold: one band down, one level
        // slower.
        ctl.on_pop(w(0), t[1] - 1, &mut act);
        assert_eq!(ctl.band(w(0)), 1);
        assert_eq!(ctl.level(w(0)), TempoLevel(1));
        // Below the first threshold: slowest workload tempo (Fig. 4(f)).
        ctl.on_pop(w(0), t[0] - 1, &mut act);
        assert_eq!(ctl.band(w(0)), 0);
        assert_eq!(ctl.level(w(0)), TempoLevel(2));
        // Pushes past thresholds climb back toward the fastest.
        ctl.on_push(w(0), t[0] + 1, &mut act);
        assert_eq!(ctl.level(w(0)), TempoLevel(1));
        ctl.on_push(w(0), t[1] + 1, &mut act);
        assert_eq!(ctl.level(w(0)), TempoLevel(0));
        assert_eq!(ctl.stats().workload_ups, 2);
        assert_eq!(ctl.stats().workload_downs, 2);
    }

    #[test]
    fn band_oscillation_does_not_ratchet_levels() {
        // The regression the compositional semantics prevent: repeated
        // band up/down cycles must return to the same level.
        let mut ctl = TempoController::new(config(Policy::WorkloadOnly, 1, 2));
        let mut act = RecordingActuator::new();
        let t = ctl.thresholds().thresholds().to_vec();
        let start = ctl.level(w(0));
        for _ in 0..10 {
            ctl.on_pop(w(0), t[1] - 1, &mut act);
            ctl.on_push(w(0), t[1] + 1, &mut act);
        }
        assert_eq!(ctl.level(w(0)), start);
    }

    #[test]
    fn steal_lowers_victim_workload_band() {
        let mut ctl = TempoController::new(config(Policy::WorkloadOnly, 2, 3));
        let mut act = RecordingActuator::new();
        let t = ctl.thresholds().thresholds().to_vec();
        // A steal dropping the victim's deque below a threshold lowers it
        // one band per event.
        ctl.on_steal(w(1), w(0), t[1] - 1, &mut act);
        assert_eq!(ctl.band(w(0)), 1);
        assert_eq!(ctl.level(w(0)), TempoLevel(1));
    }

    #[test]
    fn head_guard_protects_active_victims() {
        // The single interaction of the two strategies (paper §3.3): an
        // active victim — linked head of an immediacy chain — keeps its
        // tempo even when its deque shrinks.
        let mut ctl = TempoController::new(config(Policy::Unified, 3, 3));
        let mut act = RecordingActuator::new();
        let t = ctl.thresholds().thresholds().to_vec();
        // First steal: w0 (band 2, fast) becomes a linked chain head; the
        // victim-side check is evaluated before the link forms (paper
        // order), so it may lower once.
        ctl.on_steal(w(1), w(0), t[1] + 1, &mut act);
        assert!(ctl.immediacy().is_head(w(0)));
        assert_eq!(ctl.band(w(0)), 2);
        // Now linked: pops draining its deque are suppressed.
        ctl.on_pop(w(0), t[1] - 1, &mut act);
        assert_eq!(ctl.band(w(0)), 2, "band frozen by guard");
        assert_eq!(ctl.level(w(0)), TempoLevel(0));
        assert_eq!(ctl.stats().guard_suppressions, 1);
        // A second steal is suppressed too.
        ctl.on_steal(w(2), w(0), t[0] - 1, &mut act);
        assert_eq!(ctl.stats().guard_suppressions, 2);
        assert_eq!(ctl.level(w(0)), TempoLevel(0));
        // A worker in NO chain is subject to workload lowering as usual:
        // grow w1's deque into band 1 first, then drain it.
        ctl.on_out_of_work(w(1), &mut act); // w1 unlinks itself
        ctl.on_push(w(1), t[0] + 1, &mut act);
        assert_eq!(ctl.band(w(1)), 1);
        ctl.on_pop(w(1), t[0] - 1, &mut act);
        assert_eq!(ctl.band(w(1)), 0, "unlinked workers lower freely");
    }

    #[test]
    fn baseline_policy_never_actuates() {
        let mut ctl = TempoController::new(config(Policy::Baseline, 4, 2));
        let mut act = RecordingActuator::new();
        ctl.on_steal(w(1), w(0), 5, &mut act);
        ctl.on_push(w(0), 100, &mut act);
        ctl.on_pop(w(0), 0, &mut act);
        ctl.on_out_of_work(w(0), &mut act);
        assert!(act.changes().is_empty());
        assert_eq!(ctl.level(w(1)), TempoLevel::FASTEST);
        // Steals are still counted for reporting parity.
        assert_eq!(ctl.stats().steals, 1);
    }

    #[test]
    fn workpath_only_ignores_thresholds() {
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 2, 2));
        let mut act = RecordingActuator::new();
        ctl.on_push(w(0), 1000, &mut act);
        ctl.on_pop(w(0), 0, &mut act);
        assert_eq!(ctl.stats().workload_ups, 0);
        assert_eq!(ctl.stats().workload_downs, 0);
        assert_eq!(ctl.level(w(0)), TempoLevel::FASTEST);
    }

    #[test]
    fn workload_only_has_no_head_guard() {
        // In workload-only mode no immediacy list exists; the guard must
        // not suppress lowering (otherwise the strategy would be inert).
        let mut ctl = TempoController::new(config(Policy::WorkloadOnly, 2, 2));
        let mut act = RecordingActuator::new();
        let t = ctl.thresholds().thresholds().to_vec();
        ctl.on_pop(w(0), t[1] - 1, &mut act);
        assert_eq!(ctl.stats().workload_downs, 1);
        assert_eq!(ctl.stats().guard_suppressions, 0);
    }

    #[test]
    fn unified_composes_both_signals() {
        let mut ctl = TempoController::new(config(Policy::Unified, 2, 2));
        let mut act = RecordingActuator::new();
        let t = ctl.thresholds().thresholds().to_vec();
        // Fresh thief: procrastinated AND at its empty-deque floor (K=2).
        ctl.on_steal(w(1), w(0), t[1] + 1, &mut act);
        assert_eq!(ctl.band(w(1)), 0);
        assert_eq!(ctl.level(w(1)), TempoLevel(2));
        // One band of deque growth: one level back.
        ctl.on_push(w(1), t[0] + 1, &mut act);
        assert_eq!(ctl.level(w(1)), TempoLevel(1));
        // A relay then removes the procrastination remainder.
        ctl.on_out_of_work(w(0), &mut act);
        assert_eq!(
            ctl.level(w(1)),
            TempoLevel(0).max(TempoLevel(ctl.virtual_level(w(1)).max(0) as usize))
        );
        assert!(ctl.level(w(1)) <= TempoLevel(1));
    }

    #[test]
    fn deque_growth_cancels_procrastination() {
        // The "best of both worlds" mechanism (§4.2): a thief whose
        // stolen subtree builds a deep deque regains the fast tempo even
        // before any relay — its work became immediate by volume.
        let mut ctl = TempoController::new(config(Policy::Unified, 2, 2));
        let mut act = RecordingActuator::new();
        let t = ctl.thresholds().thresholds().to_vec();
        ctl.on_steal(w(1), w(0), t[1] + 1, &mut act);
        // Fresh thief: empty deque -> band 0, level = floor K = 2.
        assert_eq!(ctl.level(w(1)), TempoLevel(2));
        // Its stolen subtree fans out: deque grows across both
        // thresholds; the workload UPs restore the fastest tempo without
        // waiting for a relay.
        ctl.on_push(w(1), t[0] + 1, &mut act);
        ctl.on_push(w(1), t[1] + 1, &mut act);
        assert_eq!(ctl.level(w(1)), TempoLevel(0));
        assert_eq!(ctl.frequency(w(1)), Frequency::from_mhz(2400));
    }

    #[test]
    fn threshold_recomputation_follows_profile() {
        let mut ctl = TempoController::new(config(Policy::Unified, 2, 2));
        for _ in 0..8 {
            ctl.record_deque_sample(30);
        }
        ctl.recompute_thresholds();
        assert_eq!(ctl.thresholds().thresholds(), &[20, 40]);
        assert_eq!(ctl.stats().threshold_updates, 1);
    }

    #[test]
    fn workload_only_skips_threshold_updates_when_disabled() {
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 2, 2));
        ctl.record_deque_sample(30);
        ctl.recompute_thresholds();
        assert_eq!(ctl.stats().threshold_updates, 0);
    }

    #[test]
    fn actuations_only_on_level_change() {
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 4, 2));
        let mut act = RecordingActuator::new();
        ctl.on_steal(w(1), w(0), 3, &mut act);
        assert_eq!(act.changes().len(), 1);
        // Re-steal from the same fast victim: path stays 1, no actuation.
        ctl.on_out_of_work(w(1), &mut act);
        ctl.on_steal(w(1), w(0), 2, &mut act);
        assert_eq!(act.changes().len(), 1);
        assert_eq!(ctl.stats().actuations, 1);
    }

    #[test]
    fn full_figure3_scenario() {
        // Walk the complete paper Fig. 3 example on 3 tempo levels.
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 4, 3));
        let mut act = RecordingActuator::new();
        // (b) worker 2 steals from worker 1.
        ctl.on_steal(w(1), w(0), 1, &mut act);
        // (c) worker 3 steals from worker 2.
        ctl.on_steal(w(2), w(1), 1, &mut act);
        assert_eq!(
            (ctl.level(w(0)).0, ctl.level(w(1)).0, ctl.level(w(2)).0),
            (0, 1, 2)
        );
        // (d)-(e) worker 1 finishes all tasks: relay.
        ctl.on_out_of_work(w(0), &mut act);
        assert_eq!(
            (ctl.level(w(1)).0, ctl.level(w(2)).0),
            (0, 1),
            "both thieves rise one level, order preserved"
        );
        // (f) worker 1 steals from worker 2 — the old victim becomes a
        // thief, one level slower than its new victim.
        ctl.on_steal(w(0), w(1), 1, &mut act);
        assert_eq!(ctl.level(w(0)), TempoLevel(1));
        assert!(ctl.immediacy().is_head(w(1)));
    }

    #[test]
    fn transition_trace_mirrors_stats_counters() {
        let mut ctl = TempoController::new(config(Policy::Unified, 4, 3));
        let mut act = RecordingActuator::new();
        ctl.set_tracing(true);
        assert!(ctl.tracing());
        let t = ctl.thresholds().thresholds().to_vec();
        ctl.on_steal(w(1), w(0), t[1] + 1, &mut act);
        ctl.on_push(w(1), t[0] + 1, &mut act);
        ctl.on_pop(w(1), t[0] - 1, &mut act);
        ctl.on_out_of_work(w(0), &mut act);
        let mut counts = std::collections::HashMap::new();
        let mut records = Vec::new();
        ctl.drain_transitions(|r| {
            *counts.entry(r.kind).or_insert(0u64) += 1;
            records.push(r);
        });
        let stats = ctl.stats();
        assert_eq!(
            counts.get(&TransitionKind::PathDown).copied().unwrap_or(0),
            stats.path_downs
        );
        assert_eq!(
            counts.get(&TransitionKind::RelayUp).copied().unwrap_or(0),
            stats.relay_ups
        );
        assert_eq!(
            counts
                .get(&TransitionKind::WorkloadUp)
                .copied()
                .unwrap_or(0),
            stats.workload_ups
        );
        assert_eq!(
            counts
                .get(&TransitionKind::WorkloadDown)
                .copied()
                .unwrap_or(0),
            stats.workload_downs
        );
        assert_eq!(records.len() as u64, stats.total_transitions());
        // The buffer drained; a second drain sees nothing.
        let mut more = 0;
        ctl.drain_transitions(|_| more += 1);
        assert_eq!(more, 0);
        // Disabling tracing clears and stops buffering.
        ctl.set_tracing(false);
        ctl.on_steal(w(2), w(0), 1, &mut act);
        ctl.drain_transitions(|_| more += 1);
        assert_eq!(more, 0);
    }

    #[test]
    fn tracing_off_by_default_buffers_nothing() {
        let mut ctl = TempoController::new(config(Policy::Unified, 2, 2));
        let mut act = RecordingActuator::new();
        ctl.on_steal(w(1), w(0), 5, &mut act);
        let mut n = 0;
        ctl.drain_transitions(|_| n += 1);
        assert_eq!(n, 0);
        assert!(!ctl.tracing());
    }

    #[test]
    fn park_pins_slowest_and_unpark_restores_level() {
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 2, 3));
        let mut act = RecordingActuator::new();
        // Worker 0 runs allegro; parking pins its core at the slowest
        // elected frequency without touching the logical level.
        ctl.on_park(w(0), &mut act);
        assert!(ctl.is_parked(w(0)));
        assert_eq!(act.last_frequency(w(0)), Some(Frequency::from_mhz(1600)));
        assert_eq!(ctl.level(w(0)), TempoLevel::FASTEST, "level survives");
        assert_eq!(ctl.stats().parks, 1);
        // Double-park is a host bug and a no-op.
        let before = act.changes().len();
        ctl.on_park(w(0), &mut act);
        assert_eq!(act.changes().len(), before);
        assert_eq!(ctl.stats().parks, 1);
        // Unpark restores the level frequency.
        ctl.on_unpark(w(0), &mut act);
        assert!(!ctl.is_parked(w(0)));
        assert_eq!(act.last_frequency(w(0)), Some(Frequency::from_mhz(2400)));
        // Every completed park came back through on_unpark, and a
        // double-unpark (host bug) is a no-op on the counter too.
        assert_eq!(ctl.stats().unparks, 1);
        ctl.on_unpark(w(0), &mut act);
        assert_eq!(ctl.stats().unparks, 1);
        // Every park/unpark apply was counted as an actuation.
        assert_eq!(ctl.stats().actuations, act.changes().len() as u64);
    }

    #[test]
    fn park_at_slowest_level_does_not_actuate() {
        // A deeply procrastinated thief already sits at the slowest
        // frequency: parking must not produce a redundant actuation.
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 2, 2));
        let mut act = RecordingActuator::new();
        ctl.on_steal(w(1), w(0), 2, &mut act); // w1 -> level 1 = slowest of 2
        let before = act.changes().len();
        ctl.on_park(w(1), &mut act);
        ctl.on_unpark(w(1), &mut act);
        assert_eq!(act.changes().len(), before, "no redundant actuations");
    }

    #[test]
    fn relay_while_parked_defers_actuation_to_unpark() {
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 3, 3));
        let mut act = RecordingActuator::new();
        // w1 steals from w0 (level 1), then parks at the slowest pin.
        ctl.on_steal(w(1), w(0), 2, &mut act);
        ctl.on_park(w(1), &mut act);
        assert_eq!(act.last_frequency(w(1)), Some(Frequency::from_mhz(1600)));
        // w0 runs dry: the relay raises parked w1 back to level 0, but
        // the actuation is deferred — the core stays pinned.
        ctl.on_out_of_work(w(0), &mut act);
        assert_eq!(ctl.level(w(1)), TempoLevel(0));
        assert_eq!(act.last_frequency(w(1)), Some(Frequency::from_mhz(1600)));
        // Unpark actuates the relayed level.
        ctl.on_unpark(w(1), &mut act);
        assert_eq!(act.last_frequency(w(1)), Some(Frequency::from_mhz(2400)));
    }

    #[test]
    fn baseline_policy_parks_without_actuating() {
        let mut ctl = TempoController::new(config(Policy::Baseline, 2, 2));
        let mut act = RecordingActuator::new();
        ctl.on_park(w(0), &mut act);
        ctl.on_unpark(w(0), &mut act);
        assert!(act.changes().is_empty(), "baseline never actuates");
        assert_eq!(ctl.stats().parks, 1, "parks still counted for reports");
    }

    #[test]
    fn virtual_level_is_bounded() {
        let mut ctl = TempoController::new(config(Policy::WorkpathOnly, 2, 2));
        let mut act = RecordingActuator::new();
        for _ in 0..200 {
            // Pathological ping-pong stealing between two workers.
            ctl.on_steal(w(1), w(0), 1, &mut act);
            ctl.on_steal(w(0), w(1), 1, &mut act);
        }
        assert!(ctl.virtual_level(w(0)) <= 60);
        assert!(ctl.virtual_level(w(1)) <= 60);
    }

    #[test]
    fn band_oscillation_does_not_ratchet() {
        // Full band round trips conserve the level: DOWNs are never
        // clipped (levels may exceed the frequency count) and UPs are
        // only clipped at the fastest tempo, so repeated drain/climb
        // cycles return to the starting level.
        let mut ctl = TempoController::new(config(Policy::WorkloadOnly, 1, 2));
        let mut act = RecordingActuator::new();
        let t = ctl.thresholds().thresholds().to_vec();
        for _ in 0..10 {
            ctl.on_pop(w(0), t[1] - 1, &mut act);
            ctl.on_pop(w(0), t[0] - 1, &mut act);
            ctl.on_push(w(0), t[0] + 1, &mut act);
            ctl.on_push(w(0), t[1] + 1, &mut act);
        }
        assert_eq!(ctl.level(w(0)), TempoLevel(0));
        assert_eq!(ctl.virtual_level(w(0)), 0);
    }
}
