//! # hermes-core
//!
//! The tempo-control algorithms of **HERMES** (Ribic & Liu, *Energy-Efficient
//! Work-Stealing Language Runtimes*, ASPLOS 2014), implemented as a pure,
//! executor-agnostic state machine.
//!
//! HERMES makes work-stealing runtimes energy-efficient by running each
//! worker at a *tempo* — a discrete speed level realised through DVFS — and
//! coordinating tempos with two complementary strategies:
//!
//! * **Workpath-sensitive control** ([`ImmediacyList`], paper §3.1): a thief
//!   executes less-immediate work than its victim (the work-first
//!   principle), so on a successful steal the thief is slowed to one level
//!   below the victim (*Thief Procrastination*). When a worker runs out of
//!   work, every worker downstream on its immediacy list is sped up one
//!   level (*Immediacy Relay*).
//! * **Workload-sensitive control** ([`ThresholdTable`], [`OnlineProfiler`],
//!   paper §3.2): deque length is a workload proxy; crossing profiled
//!   thresholds up or down raises or lowers tempo one level.
//!
//! The two strategies unify in [`TempoController`] (paper Fig. 5), which a
//! host scheduler drives through a small set of hooks (`on_push`,
//! `on_pop`, `on_steal`, `on_out_of_work`) and which actuates frequency
//! changes through the [`FrequencyActuator`] trait.
//!
//! This crate contains **no threads and no clocks**: it is driven both by
//! the deterministic discrete-event simulator (`hermes-sim`) and by the
//! real-thread runtime (`hermes-rt`).
//!
//! ## Quickstart
//!
//! ```
//! use hermes_core::{
//!     Frequency, Policy, RecordingActuator, TempoConfig, TempoController, WorkerId,
//! };
//!
//! // Two-frequency tempo control: fast 2.4 GHz, slow 1.6 GHz (paper Fig. 6).
//! let config = TempoConfig::builder()
//!     .policy(Policy::Unified)
//!     .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
//!     .workers(4)
//!     .build();
//! let mut actuator = RecordingActuator::new();
//! let mut ctl = TempoController::new(config);
//!
//! // Worker 1 steals from worker 0: thief procrastination slows worker 1.
//! ctl.on_steal(WorkerId(1), WorkerId(0), 3, &mut actuator);
//! assert!(ctl.level(WorkerId(1)) > ctl.level(WorkerId(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod actuator;
mod controller;
mod freq;
mod immediacy;
mod policy;
mod stats;
mod tempo;
mod thresholds;
mod trace;

pub use actuator::{FrequencyActuator, NullActuator, RecordingActuator, TempoChange};
pub use controller::{TempoConfig, TempoConfigBuilder, TempoController};
pub use freq::{FreqMap, Frequency, InvalidFreqMapError};
pub use immediacy::ImmediacyList;
pub use policy::Policy;
pub use stats::TempoStats;
pub use tempo::TempoLevel;
pub use thresholds::{OnlineProfiler, ProfilerConfig, ThresholdTable};
pub use trace::{TransitionKind, TransitionRecord};

/// Identifier of a worker thread within a work-stealing pool.
///
/// Workers are dense indices `0..num_workers`; the same ids are used by the
/// simulator, the real runtime, and the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub usize);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}
