//! K-Nearest Neighbors (the paper's **KNN** benchmark): parallel kd-tree
//! construction and k-NN classification, after PBBS `nearestNeighbors`.

use crate::data::{Labeled, Point2};
use crate::util::par_map;
use hermes_rt::join;

/// Below this many points, build subtrees serially.
const BUILD_CUTOFF: usize = 1 << 10;

/// A 2-d tree over labelled points.
#[derive(Debug)]
pub struct KdTree {
    root: Option<Box<KdNode>>,
    len: usize,
}

#[derive(Debug)]
struct KdNode {
    item: Labeled,
    /// Split dimension: 0 = x, 1 = y.
    dim: u8,
    left: Option<Box<KdNode>>,
    right: Option<Box<KdNode>>,
}

impl KdTree {
    /// Build a tree from `points`, reordering the slice in place
    /// (median-split construction; subtrees build in parallel).
    #[must_use]
    pub fn build(points: &mut [Labeled]) -> KdTree {
        let len = points.len();
        KdTree {
            root: build_node(points, 0),
            len,
        }
    }

    /// Number of points in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `k` nearest training points to `q`, nearest first.
    #[must_use]
    pub fn k_nearest(&self, q: &Point2, k: usize) -> Vec<Labeled> {
        if k == 0 {
            return Vec::new();
        }
        let mut best: Vec<(f64, Labeled)> = Vec::with_capacity(k + 1);
        if let Some(root) = &self.root {
            search(root, q, k, &mut best);
        }
        best.into_iter().map(|(_, l)| l).collect()
    }

    /// Classify `q` by majority vote among its `k` nearest neighbours
    /// (ties break toward the smaller label).
    #[must_use]
    pub fn classify(&self, q: &Point2, k: usize) -> Option<u8> {
        let neighbours = self.k_nearest(q, k);
        if neighbours.is_empty() {
            return None;
        }
        let mut counts = [0u32; 256];
        for n in &neighbours {
            counts[n.label as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(label, &c)| (c, usize::MAX - label))
            .map(|(label, _)| label as u8)
    }
}

fn build_node(points: &mut [Labeled], depth: u32) -> Option<Box<KdNode>> {
    if points.is_empty() {
        return None;
    }
    let dim = (depth % 2) as u8;
    let mid = points.len() / 2;
    points.select_nth_unstable_by(mid, |a, b| {
        key(a, dim)
            .partial_cmp(&key(b, dim))
            .expect("finite coords")
    });
    let item = points[mid];
    let (lo, rest) = points.split_at_mut(mid);
    let hi = &mut rest[1..];
    let (left, right) = if points_len(lo) + points_len(hi) >= BUILD_CUTOFF {
        join(|| build_node(lo, depth + 1), || build_node(hi, depth + 1))
    } else {
        (build_node(lo, depth + 1), build_node(hi, depth + 1))
    };
    Some(Box::new(KdNode {
        item,
        dim,
        left,
        right,
    }))
}

fn points_len(p: &[Labeled]) -> usize {
    p.len()
}

fn key(l: &Labeled, dim: u8) -> f64 {
    if dim == 0 {
        l.point.x
    } else {
        l.point.y
    }
}

fn search(node: &KdNode, q: &Point2, k: usize, best: &mut Vec<(f64, Labeled)>) {
    let d2 = q.dist2(&node.item.point);
    consider(best, k, d2, node.item);
    let qk = if node.dim == 0 { q.x } else { q.y };
    let nk = key(&node.item, node.dim);
    let (near, far) = if qk < nk {
        (&node.left, &node.right)
    } else {
        (&node.right, &node.left)
    };
    if let Some(n) = near {
        search(n, q, k, best);
    }
    // Prune the far side unless the splitting plane is closer than the
    // current k-th best.
    let plane_d2 = (qk - nk) * (qk - nk);
    if best.len() < k || plane_d2 < best.last().expect("non-empty").0 {
        if let Some(f) = far {
            search(f, q, k, best);
        }
    }
}

fn consider(best: &mut Vec<(f64, Labeled)>, k: usize, d2: f64, item: Labeled) {
    let pos = best.partition_point(|&(d, _)| d <= d2);
    if pos >= k {
        return;
    }
    best.insert(pos, (d2, item));
    best.truncate(k);
}

/// Classify every query point by `k`-nearest-neighbour vote against the
/// training set (tree build + queries both parallel).
///
/// Reorders `train` in place (the kd-tree is built over it).
///
/// ```
/// use hermes_rt::Pool;
/// use hermes_workloads::{knn_classify, Labeled, Point2};
/// let pool = Pool::new(2);
/// let mut train = vec![
///     Labeled { point: Point2 { x: 0.1, y: 0.1 }, label: 0 },
///     Labeled { point: Point2 { x: 0.9, y: 0.9 }, label: 1 },
/// ];
/// let queries = vec![Point2 { x: 0.15, y: 0.12 }];
/// let labels = pool.install(|| knn_classify(&mut train, &queries, 1));
/// assert_eq!(labels, vec![0]);
/// ```
#[must_use]
pub fn knn_classify(train: &mut [Labeled], queries: &[Point2], k: usize) -> Vec<u8> {
    let tree = KdTree::build(train);
    par_map(queries, 64, &|q| tree.classify(q, k).unwrap_or(0))
}

/// Brute-force k-NN classification — the serial oracle for tests.
#[must_use]
pub fn knn_classify_oracle(train: &[Labeled], queries: &[Point2], k: usize) -> Vec<u8> {
    queries
        .iter()
        .map(|q| {
            let mut dists: Vec<(f64, Labeled)> =
                train.iter().map(|t| (q.dist2(&t.point), *t)).collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let mut counts = [0u32; 256];
            for (_, t) in dists.iter().take(k) {
                counts[t.label as usize] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(label, &c)| (c, usize::MAX - label))
                .map(|(label, _)| label as u8)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{labeled_points, uniform_points2};
    use hermes_rt::Pool;

    #[test]
    fn knn_matches_bruteforce_oracle() {
        let pool = Pool::new(4);
        let mut train = labeled_points(2_000, 4, 60);
        let queries = uniform_points2(200, 61);
        let expect = knn_classify_oracle(&train, &queries, 5);
        let got = pool.install(|| knn_classify(&mut train, &queries, 5));
        assert_eq!(got, expect);
    }

    #[test]
    fn k_nearest_returns_sorted_distances() {
        let mut train = labeled_points(500, 3, 62);
        let tree = KdTree::build(&mut train);
        let q = Point2 { x: 0.5, y: 0.5 };
        let near = tree.k_nearest(&q, 10);
        assert_eq!(near.len(), 10);
        let dists: Vec<f64> = near.iter().map(|l| q.dist2(&l.point)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "sorted: {dists:?}");
    }

    #[test]
    fn exact_nearest_matches_linear_scan() {
        let mut train = labeled_points(1_000, 4, 63);
        let snapshot = train.clone();
        let tree = KdTree::build(&mut train);
        for q in uniform_points2(50, 64) {
            let best = tree.k_nearest(&q, 1)[0];
            let expect = snapshot
                .iter()
                .min_by(|a, b| {
                    q.dist2(&a.point)
                        .partial_cmp(&q.dist2(&b.point))
                        .expect("finite")
                })
                .expect("non-empty");
            assert_eq!(q.dist2(&best.point), q.dist2(&expect.point));
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let tree = KdTree::build(&mut []);
        assert!(tree.is_empty());
        assert!(tree.k_nearest(&Point2 { x: 0.0, y: 0.0 }, 3).is_empty());
        assert_eq!(tree.classify(&Point2 { x: 0.0, y: 0.0 }, 3), None);

        // All points identical.
        let mut same = vec![
            Labeled {
                point: Point2 { x: 0.5, y: 0.5 },
                label: 2
            };
            100
        ];
        let tree = KdTree::build(&mut same);
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.classify(&Point2 { x: 0.4, y: 0.4 }, 7), Some(2));
    }

    #[test]
    fn k_zero_and_k_larger_than_train() {
        let mut train = labeled_points(10, 2, 65);
        let tree = KdTree::build(&mut train);
        let q = Point2 { x: 0.2, y: 0.8 };
        assert!(tree.k_nearest(&q, 0).is_empty());
        assert_eq!(tree.k_nearest(&q, 100).len(), 10);
    }
}
