//! Integer Sort (the paper's **Sort** benchmark): parallel radix sort,
//! after PBBS `integerSort`.

use crate::util::parallel_scatter;

/// Number of bits per radix digit.
const RADIX_BITS: u32 = 8;
/// Buckets per pass.
const BUCKETS: usize = 1 << RADIX_BITS;
/// Below this size, delegate to the standard sort.
const SERIAL_CUTOFF: usize = 1 << 12;

/// Sort `data` ascending with a parallel least-significant-digit radix
/// sort (four 8-bit passes over `u32` keys).
///
/// Call inside a [`Pool::install`](hermes_rt::Pool::install) for parallel
/// execution; outside a pool it degrades to sequential fork-join.
///
/// ```
/// use hermes_rt::Pool;
/// use hermes_workloads::radix_sort;
/// let pool = Pool::new(2);
/// let mut v = vec![5u32, 3, 9, 3, 0];
/// pool.install(|| radix_sort(&mut v));
/// assert_eq!(v, [0, 3, 3, 5, 9]);
/// ```
pub fn radix_sort(data: &mut [u32]) {
    radix_sort_with_chunk(data, 1 << 14);
}

/// [`radix_sort`] with an explicit scatter chunk size (exposed for the
/// granularity ablation).
pub fn radix_sort_with_chunk(data: &mut [u32], chunk_size: usize) {
    if data.len() <= SERIAL_CUTOFF {
        data.sort_unstable();
        return;
    }
    let mut buf = vec![0u32; data.len()];
    for pass in 0..(u32::BITS / RADIX_BITS) {
        let shift = pass * RADIX_BITS;
        let classify = move |x: &u32| ((x >> shift) as usize) & (BUCKETS - 1);
        if pass % 2 == 0 {
            parallel_scatter(data, &mut buf, BUCKETS, chunk_size, &classify);
        } else {
            parallel_scatter(&buf, data, BUCKETS, chunk_size, &classify);
        }
    }
    // u32::BITS / RADIX_BITS = 4 passes: an even count, so the final
    // scatter of pass 3 landed back in `data`.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{skewed_keys, uniform_keys};
    use hermes_rt::Pool;

    fn check_sorts(mut v: Vec<u32>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let pool = Pool::new(4);
        pool.install(|| radix_sort(&mut v));
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_uniform_keys() {
        check_sorts(uniform_keys(100_000, 42));
    }

    #[test]
    fn sorts_skewed_keys() {
        check_sorts(skewed_keys(100_000, 43));
    }

    #[test]
    fn sorts_small_inputs_serially() {
        check_sorts(vec![]);
        check_sorts(vec![1]);
        check_sorts(vec![2, 1]);
        check_sorts(uniform_keys(100, 44));
    }

    #[test]
    fn sorts_adversarial_patterns() {
        check_sorts(vec![u32::MAX; 20_000]);
        check_sorts((0..20_000u32).rev().collect());
        check_sorts((0..20_000u32).map(|i| i % 3).collect());
    }

    #[test]
    fn custom_chunk_sizes_work() {
        let mut v = uniform_keys(50_000, 45);
        let mut expect = v.clone();
        expect.sort_unstable();
        let pool = Pool::new(4);
        pool.install(|| radix_sort_with_chunk(&mut v, 777));
        assert_eq!(v, expect);
    }
}
