//! Small fork-join helpers shared by the benchmark implementations.

use hermes_rt::join;

/// Map `f` over `input` into `out` in parallel, splitting both slices in
/// tandem down to `grain`.
///
/// # Panics
///
/// Panics if `input` and `out` have different lengths.
pub fn par_map_into<T, R, F>(input: &[T], out: &mut [R], grain: usize, f: &F)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert_eq!(input.len(), out.len(), "input/output length mismatch");
    let grain = grain.max(1);
    if input.len() <= grain {
        for (i, o) in input.iter().zip(out.iter_mut()) {
            *o = f(i);
        }
        return;
    }
    let mid = input.len() / 2;
    let (il, ir) = input.split_at(mid);
    let (ol, or) = out.split_at_mut(mid);
    join(
        || par_map_into(il, ol, grain, f),
        || par_map_into(ir, or, grain, f),
    );
}

/// Map `f` over `input`, collecting into a fresh `Vec`, in parallel.
pub fn par_map<T, R, F>(input: &[T], grain: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send + Default + Clone,
    F: Fn(&T) -> R + Sync,
{
    let mut out = vec![R::default(); input.len()];
    par_map_into(input, &mut out, grain, f);
    out
}

/// Split `slice` into the consecutive chunks whose lengths are given by
/// `sizes`, returning one mutable sub-slice per chunk.
///
/// # Panics
///
/// Panics if the sizes do not sum to the slice length.
pub fn split_by_sizes<'a, T>(mut slice: &'a mut [T], sizes: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(sizes.len());
    for &s in sizes {
        let (head, rest) = slice.split_at_mut(s);
        out.push(head);
        slice = rest;
    }
    assert!(slice.is_empty(), "sizes must sum to the slice length");
    out
}

/// Run `f` over each element of `items` in parallel (consuming the
/// vector). Useful when each work item owns mutable borrows, e.g. the
/// per-chunk output slices of a scatter.
pub fn par_consume<T, F>(mut items: Vec<T>, f: &F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    fn go<T: Send, F: Fn(T) + Sync>(items: &mut Vec<T>, f: &F) {
        match items.len() {
            0 => {}
            1 => f(items.pop().expect("len checked")),
            _ => {
                let mut right = items.split_off(items.len() / 2);
                join(|| go(items, f), || go(&mut right, f));
            }
        }
    }
    go(&mut items, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_rt::Pool;

    #[test]
    fn par_map_matches_serial() {
        let pool = Pool::new(4);
        let input: Vec<u64> = (0..10_000).collect();
        let out = pool.install(|| par_map(&input, 64, &|x| x * 3));
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn par_map_into_length_mismatch_panics() {
        let mut out = vec![0u64; 3];
        par_map_into(&[1u64, 2], &mut out, 1, &|&x| x);
    }

    #[test]
    fn split_by_sizes_partitions() {
        let mut v: Vec<u32> = (0..10).collect();
        let parts = split_by_sizes(&mut v, &[3, 0, 7]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1, 2]);
        assert!(parts[1].is_empty());
        assert_eq!(parts[2][0], 3);
    }

    #[test]
    #[should_panic(expected = "sizes must sum")]
    fn split_by_sizes_checks_total() {
        let mut v = vec![1, 2, 3];
        let _ = split_by_sizes(&mut v, &[1]);
    }

    #[test]
    fn par_consume_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = Pool::new(4);
        let total = AtomicU64::new(0);
        let items: Vec<u64> = (1..=100).collect();
        pool.install(|| {
            par_consume(items, &|x| {
                total.fetch_add(x, Ordering::SeqCst);
            })
        });
        assert_eq!(total.load(Ordering::SeqCst), 5050);
    }
}

/// Scatter `src` into `dst` grouped by bucket, fully in parallel and in
/// safe Rust, returning the bucket sizes.
///
/// The classic parallel scatter writes from many chunks into interleaved
/// destination ranges; we realise it safely by pre-splitting `dst` into
/// one sub-slice per `(bucket, chunk)` pair and *transposing ownership*
/// so each source chunk receives exactly the output slices it will fill.
///
/// Returns the total size of each bucket; bucket `b` occupies the range
/// `starts[b] .. starts[b] + sizes[b]` of `dst` where `starts` is the
/// prefix sum of the returned sizes.
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths, `nbuckets` is 0, or
/// `classify` returns an index `>= nbuckets`.
pub fn parallel_scatter<T, F>(
    src: &[T],
    dst: &mut [T],
    nbuckets: usize,
    chunk_size: usize,
    classify: &F,
) -> Vec<usize>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
    assert!(nbuckets > 0, "at least one bucket");
    let chunk_size = chunk_size.max(1);
    let chunks: Vec<&[T]> = src.chunks(chunk_size).collect();
    let nchunks = chunks.len();

    // Phase 1: per-chunk histograms, in parallel.
    let hists: Vec<Vec<usize>> = par_map(&chunks, 1, &|chunk: &&[T]| {
        let mut h = vec![0usize; nbuckets];
        for x in *chunk {
            h[classify(x)] += 1;
        }
        h
    });

    // Phase 2: carve dst into (bucket-major, chunk-minor) regions.
    let mut bucket_totals = vec![0usize; nbuckets];
    for h in &hists {
        for (b, c) in h.iter().enumerate() {
            bucket_totals[b] += c;
        }
    }
    let mut sizes = Vec::with_capacity(nbuckets * nchunks);
    for b in 0..nbuckets {
        for h in &hists {
            sizes.push(h[b]);
        }
    }
    let parts = split_by_sizes(dst, &sizes);

    // Phase 3: transpose ownership to per-chunk slice sets.
    let mut per_chunk: Vec<Vec<&mut [T]>> =
        (0..nchunks).map(|_| Vec::with_capacity(nbuckets)).collect();
    for (i, part) in parts.into_iter().enumerate() {
        per_chunk[i % nchunks].push(part);
    }

    // Phase 4: parallel scatter, each chunk into its own slices.
    let items: Vec<(&[T], Vec<&mut [T]>)> = chunks.into_iter().zip(per_chunk).collect();
    par_consume(items, &|(chunk, mut outs)| {
        let mut cursors = vec![0usize; nbuckets];
        for &x in chunk {
            let b = classify(&x);
            outs[b][cursors[b]] = x;
            cursors[b] += 1;
        }
    });
    bucket_totals
}

#[cfg(test)]
mod scatter_tests {
    use super::*;
    use hermes_rt::Pool;

    #[test]
    fn scatter_groups_by_bucket() {
        let pool = Pool::new(4);
        let src: Vec<u32> = (0..10_000).rev().collect();
        let mut dst = vec![0u32; src.len()];
        let sizes =
            pool.install(|| parallel_scatter(&src, &mut dst, 4, 512, &|&x| (x % 4) as usize));
        assert_eq!(sizes.iter().sum::<usize>(), src.len());
        // Every element within a bucket region has the right class.
        let mut start = 0;
        for (b, &s) in sizes.iter().enumerate() {
            for &x in &dst[start..start + s] {
                assert_eq!((x % 4) as usize, b);
            }
            start += s;
        }
        // Stability within (bucket, chunk) order is not promised, but
        // conservation is.
        let mut a = src.clone();
        let mut bsorted = dst.clone();
        a.sort_unstable();
        bsorted.sort_unstable();
        assert_eq!(a, bsorted);
    }

    #[test]
    fn scatter_single_bucket_is_copy() {
        let pool = Pool::new(2);
        let src = vec![5u32, 9, 1];
        let mut dst = vec![0u32; 3];
        let sizes = pool.install(|| parallel_scatter(&src, &mut dst, 1, 2, &|_| 0));
        assert_eq!(sizes, vec![3]);
        let mut d = dst.clone();
        d.sort_unstable();
        assert_eq!(d, vec![1, 5, 9]);
    }
}
