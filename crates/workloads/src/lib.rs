//! # hermes-workloads
//!
//! The five PBBS-style benchmarks of the HERMES evaluation (paper §4.1),
//! each in two forms:
//!
//! 1. **Real parallel algorithms** on the `hermes-rt` fork-join runtime —
//!    [`knn_classify`] (kd-tree k-nearest-neighbour classification),
//!    [`raycast`] (BVH first-hit ray casting), [`radix_sort`] (Integer
//!    Sort), [`sample_sort`] (Comparison Sort), and [`quickhull`] (Convex
//!    Hull) — all verified against serial oracles.
//! 2. **Task-DAG models** for the `hermes-sim` discrete-event simulator
//!    ([`Benchmark::dag`]), reproducing each benchmark's spawn structure,
//!    phase profile and load imbalance at the paper's scale.
//!
//! ```
//! use hermes_rt::Pool;
//! use hermes_workloads::{radix_sort, uniform_keys, Benchmark};
//!
//! // Real algorithm on real threads:
//! let pool = Pool::new(2);
//! let mut keys = uniform_keys(10_000, 42);
//! pool.install(|| radix_sort(&mut keys));
//! assert!(keys.windows(2).all(|w| w[0] <= w[1]));
//!
//! // Simulator model of the same benchmark:
//! let dag = Benchmark::Sort.dag(42);
//! assert!(dag.total_cycles() > 1_000_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compare;
mod dags;
mod data;
mod hull;
mod knn;
mod ray;
mod sort;
pub mod util;

pub use compare::{sample_sort, sample_sort_with_buckets};
pub use dags::Benchmark;
pub use data::{
    clustered_points2, labeled_points, ray_cast_set, skewed_keys, triangle_soup, uniform_keys,
    uniform_points2, Labeled, Point2, Point3, Ray, Triangle,
};
pub use hull::{convex_hull_oracle, cross, quickhull};
pub use knn::{knn_classify, knn_classify_oracle, KdTree};
pub use ray::{intersect, raycast, raycast_oracle, Aabb, Bvh};
pub use sort::{radix_sort, radix_sort_with_chunk};
