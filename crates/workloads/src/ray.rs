//! Sparse-Triangle Intersection (the paper's **Ray** benchmark): BVH
//! construction plus first-hit ray casting, after PBBS `rayCast`.
//!
//! "returns the first triangle each penetrating ray R intersects in a set
//! of triangles T in a three-dimensional bounding box."

use crate::data::{Point3, Ray, Triangle};
use crate::util::par_map;
use hermes_rt::join;

/// Below this many triangles, build subtrees serially.
const BUILD_CUTOFF: usize = 512;
/// Maximum triangles per leaf.
const LEAF_SIZE: usize = 8;

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Point3,
    /// Maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// The empty (inverted) box, identity for [`Aabb::union`].
    #[must_use]
    pub fn empty() -> Aabb {
        Aabb {
            min: Point3 {
                x: f64::INFINITY,
                y: f64::INFINITY,
                z: f64::INFINITY,
            },
            max: Point3 {
                x: f64::NEG_INFINITY,
                y: f64::NEG_INFINITY,
                z: f64::NEG_INFINITY,
            },
        }
    }

    /// The box around one triangle.
    #[must_use]
    pub fn of_triangle(t: &Triangle) -> Aabb {
        let mut b = Aabb::empty();
        for p in [t.a, t.b, t.c] {
            b = b.grown(p);
        }
        b
    }

    /// This box grown to include `p`.
    #[must_use]
    pub fn grown(&self, p: Point3) -> Aabb {
        Aabb {
            min: Point3 {
                x: self.min.x.min(p.x),
                y: self.min.y.min(p.y),
                z: self.min.z.min(p.z),
            },
            max: Point3 {
                x: self.max.x.max(p.x),
                y: self.max.y.max(p.y),
                z: self.max.z.max(p.z),
            },
        }
    }

    /// Union of two boxes.
    #[must_use]
    pub fn union(&self, o: &Aabb) -> Aabb {
        self.grown(o.min).grown(o.max)
    }

    /// Index of the longest axis (0 = x, 1 = y, 2 = z).
    #[must_use]
    pub fn longest_axis(&self) -> usize {
        let dx = self.max.x - self.min.x;
        let dy = self.max.y - self.min.y;
        let dz = self.max.z - self.min.z;
        if dx >= dy && dx >= dz {
            0
        } else if dy >= dz {
            1
        } else {
            2
        }
    }

    /// Slab test: does `ray` hit this box at parameter `t < t_max`?
    #[must_use]
    pub fn hit(&self, ray: &Ray, t_max: f64) -> bool {
        let mut t0: f64 = 1e-12;
        let mut t1 = t_max;
        for axis in 0..3 {
            let (o, d, lo, hi) = match axis {
                0 => (ray.origin.x, ray.dir.x, self.min.x, self.max.x),
                1 => (ray.origin.y, ray.dir.y, self.min.y, self.max.y),
                _ => (ray.origin.z, ray.dir.z, self.min.z, self.max.z),
            };
            if d.abs() < 1e-300 {
                if o < lo || o > hi {
                    return false;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (mut near, mut far) = ((lo - o) * inv, (hi - o) * inv);
            if near > far {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return false;
            }
        }
        true
    }
}

/// A bounding-volume hierarchy over a triangle set.
#[derive(Debug)]
pub struct Bvh {
    root: Option<BvhNode>,
}

#[derive(Debug)]
enum BvhNode {
    Leaf {
        bbox: Aabb,
        tris: Vec<usize>,
    },
    Inner {
        bbox: Aabb,
        left: Box<BvhNode>,
        right: Box<BvhNode>,
    },
}

impl BvhNode {
    fn bbox(&self) -> &Aabb {
        match self {
            BvhNode::Leaf { bbox, .. } | BvhNode::Inner { bbox, .. } => bbox,
        }
    }
}

impl Bvh {
    /// Build a median-split BVH over `tris` (subtrees in parallel).
    #[must_use]
    pub fn build(tris: &[Triangle]) -> Bvh {
        if tris.is_empty() {
            return Bvh { root: None };
        }
        let mut indices: Vec<usize> = (0..tris.len()).collect();
        Bvh {
            root: Some(build_node(tris, &mut indices)),
        }
    }

    /// The first (nearest) triangle `ray` hits: `(triangle index, t)`.
    #[must_use]
    pub fn first_hit(&self, tris: &[Triangle], ray: &Ray) -> Option<(usize, f64)> {
        let root = self.root.as_ref()?;
        let mut best: Option<(usize, f64)> = None;
        hit_node(root, tris, ray, &mut best);
        best
    }
}

fn build_node(tris: &[Triangle], indices: &mut [usize]) -> BvhNode {
    let bbox = indices
        .iter()
        .fold(Aabb::empty(), |b, &i| b.union(&Aabb::of_triangle(&tris[i])));
    if indices.len() <= LEAF_SIZE {
        return BvhNode::Leaf {
            bbox,
            tris: indices.to_vec(),
        };
    }
    let axis = bbox.longest_axis();
    let centroid = |i: usize| -> f64 {
        let c = tris[i].centroid();
        match axis {
            0 => c.x,
            1 => c.y,
            _ => c.z,
        }
    };
    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        centroid(a)
            .partial_cmp(&centroid(b))
            .expect("finite coords")
    });
    let (lo, hi) = indices.split_at_mut(mid);
    let (left, right) = if lo.len() + hi.len() >= BUILD_CUTOFF {
        join(|| build_node(tris, lo), || build_node(tris, hi))
    } else {
        (build_node(tris, lo), build_node(tris, hi))
    };
    BvhNode::Inner {
        bbox,
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn hit_node(node: &BvhNode, tris: &[Triangle], ray: &Ray, best: &mut Option<(usize, f64)>) {
    let t_max = best.map_or(f64::INFINITY, |(_, t)| t);
    if !node.bbox().hit(ray, t_max) {
        return;
    }
    match node {
        BvhNode::Leaf { tris: ids, .. } => {
            for &i in ids {
                if let Some(t) = intersect(&tris[i], ray) {
                    if best.is_none() || t < best.expect("checked").1 {
                        *best = Some((i, t));
                    }
                }
            }
        }
        BvhNode::Inner { left, right, .. } => {
            hit_node(left, tris, ray, best);
            hit_node(right, tris, ray, best);
        }
    }
}

/// Möller–Trumbore ray-triangle intersection; returns the ray parameter
/// `t > 0` of the hit, if any.
#[must_use]
pub fn intersect(tri: &Triangle, ray: &Ray) -> Option<f64> {
    let e1 = tri.b.sub(&tri.a);
    let e2 = tri.c.sub(&tri.a);
    let p = ray.dir.cross(&e2);
    let det = e1.dot(&p);
    if det.abs() < 1e-12 {
        return None; // parallel
    }
    let inv = 1.0 / det;
    let s = ray.origin.sub(&tri.a);
    let u = s.dot(&p) * inv;
    if !(0.0..=1.0).contains(&u) {
        return None;
    }
    let q = s.cross(&e1);
    let v = ray.dir.dot(&q) * inv;
    if v < 0.0 || u + v > 1.0 {
        return None;
    }
    let t = e2.dot(&q) * inv;
    (t > 1e-9).then_some(t)
}

/// For each ray, the index of the first triangle it hits (BVH build and
/// per-ray casting both parallel).
///
/// ```
/// use hermes_rt::Pool;
/// use hermes_workloads::{raycast, triangle_soup, ray_cast_set};
/// let pool = Pool::new(2);
/// let tris = triangle_soup(100, 0.3, 1);
/// let rays = ray_cast_set(50, 2);
/// let hits = pool.install(|| raycast(&tris, &rays));
/// assert_eq!(hits.len(), 50);
/// ```
#[must_use]
pub fn raycast(tris: &[Triangle], rays: &[Ray]) -> Vec<Option<usize>> {
    let bvh = Bvh::build(tris);
    par_map(rays, 32, &|r| bvh.first_hit(tris, r).map(|(i, _)| i))
}

/// Brute-force first-hit — the serial oracle for tests.
#[must_use]
pub fn raycast_oracle(tris: &[Triangle], rays: &[Ray]) -> Vec<Option<usize>> {
    rays.iter()
        .map(|r| {
            let mut best: Option<(usize, f64)> = None;
            for (i, tri) in tris.iter().enumerate() {
                if let Some(t) = intersect(tri, r) {
                    if best.is_none() || t < best.expect("checked").1 {
                        best = Some((i, t));
                    }
                }
            }
            best.map(|(i, _)| i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{ray_cast_set, triangle_soup};
    use hermes_rt::Pool;

    #[test]
    fn bvh_matches_bruteforce_oracle() {
        let pool = Pool::new(4);
        let tris = triangle_soup(2_000, 0.2, 70);
        let rays = ray_cast_set(300, 71);
        let expect = raycast_oracle(&tris, &rays);
        let got = pool.install(|| raycast(&tris, &rays));
        assert_eq!(got, expect);
        let hits = got.iter().filter(|h| h.is_some()).count();
        assert!(hits > 0, "a 2000-triangle soup should be hit sometimes");
    }

    #[test]
    fn direct_hit_geometry() {
        // A triangle squarely in front of a +z ray.
        let tri = Triangle {
            a: Point3 {
                x: -1.0,
                y: -1.0,
                z: 1.0,
            },
            b: Point3 {
                x: 1.0,
                y: -1.0,
                z: 1.0,
            },
            c: Point3 {
                x: 0.0,
                y: 1.0,
                z: 1.0,
            },
        };
        let ray = Ray {
            origin: Point3 {
                x: 0.0,
                y: 0.0,
                z: 0.0,
            },
            dir: Point3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        };
        let t = intersect(&tri, &ray).expect("must hit");
        assert!((t - 1.0).abs() < 1e-9);
        // Behind the origin: no hit.
        let back = Ray {
            origin: Point3 {
                x: 0.0,
                y: 0.0,
                z: 2.0,
            },
            dir: Point3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        };
        assert_eq!(intersect(&tri, &back), None);
    }

    #[test]
    fn nearest_of_two_stacked_triangles_wins() {
        let near = Triangle {
            a: Point3 {
                x: -1.0,
                y: -1.0,
                z: 1.0,
            },
            b: Point3 {
                x: 1.0,
                y: -1.0,
                z: 1.0,
            },
            c: Point3 {
                x: 0.0,
                y: 1.0,
                z: 1.0,
            },
        };
        let far = Triangle {
            a: Point3 {
                x: -1.0,
                y: -1.0,
                z: 2.0,
            },
            b: Point3 {
                x: 1.0,
                y: -1.0,
                z: 2.0,
            },
            c: Point3 {
                x: 0.0,
                y: 1.0,
                z: 2.0,
            },
        };
        let tris = vec![far, near];
        let bvh = Bvh::build(&tris);
        let ray = Ray {
            origin: Point3 {
                x: 0.0,
                y: 0.0,
                z: 0.0,
            },
            dir: Point3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        };
        let (idx, t) = bvh.first_hit(&tris, &ray).expect("hits");
        assert_eq!(idx, 1, "the nearer triangle");
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_scene_and_missing_rays() {
        let bvh = Bvh::build(&[]);
        let ray = Ray {
            origin: Point3 {
                x: 0.0,
                y: 0.0,
                z: 0.0,
            },
            dir: Point3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        };
        assert_eq!(bvh.first_hit(&[], &ray), None);

        let tris = triangle_soup(100, 0.1, 72);
        let away = Ray {
            origin: Point3 {
                x: 0.5,
                y: 0.5,
                z: -1.0,
            },
            dir: Point3 {
                x: 0.0,
                y: 0.0,
                z: -1.0,
            },
        };
        let bvh = Bvh::build(&tris);
        assert_eq!(bvh.first_hit(&tris, &away), None);
    }

    #[test]
    fn aabb_slab_test() {
        let b = Aabb::empty()
            .grown(Point3 {
                x: 0.0,
                y: 0.0,
                z: 0.0,
            })
            .grown(Point3 {
                x: 1.0,
                y: 1.0,
                z: 1.0,
            });
        let through = Ray {
            origin: Point3 {
                x: 0.5,
                y: 0.5,
                z: -1.0,
            },
            dir: Point3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        };
        assert!(b.hit(&through, f64::INFINITY));
        let miss = Ray {
            origin: Point3 {
                x: 5.0,
                y: 5.0,
                z: -1.0,
            },
            dir: Point3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        };
        assert!(!b.hit(&miss, f64::INFINITY));
        // t_max short of the box: treated as a miss.
        assert!(!b.hit(&through, 0.5));
        assert_eq!(b.longest_axis(), 0);
    }
}
