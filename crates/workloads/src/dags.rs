//! Simulator task-DAG models of the five PBBS benchmarks.
//!
//! The discrete-event simulator executes [`DagSpec`]s; these generators
//! reproduce each benchmark's *spawn structure and load profile* — phase
//! count, fan-out, recursion shape, per-task cost distribution and
//! imbalance — the properties that determine steal rates, deque depths
//! and idle tails, which is what the HERMES algorithms react to. Costs
//! are in CPU cycles; a leaf task is 0.5–4 ms at 2.4 GHz, matching the
//! paper's observation that DVFS switching time is "magnitudes smaller
//! than the execution time of tasks".

use hermes_sim::{Action, DagBuilder, DagSpec, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The five benchmarks of the paper's evaluation (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// K-Nearest Neighbors: kd-tree build + query phase.
    Knn,
    /// Sparse-Triangle Intersection: BVH build + ray-cast phase.
    Ray,
    /// Integer Sort: multi-pass parallel radix sort.
    Sort,
    /// Comparison Sort: sample sort with imbalanced buckets.
    Compare,
    /// Convex Hull: irregular quickhull recursion.
    Hull,
}

impl Benchmark {
    /// All five, in the order the paper's figures list them.
    #[must_use]
    pub fn all() -> [Benchmark; 5] {
        [
            Benchmark::Knn,
            Benchmark::Ray,
            Benchmark::Sort,
            Benchmark::Compare,
            Benchmark::Hull,
        ]
    }

    /// Short label used in figures and tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Knn => "knn",
            Benchmark::Ray => "ray",
            Benchmark::Sort => "sort",
            Benchmark::Compare => "compare",
            Benchmark::Hull => "hull",
        }
    }

    /// Build this benchmark's task DAG at the default (paper) scale.
    ///
    /// `seed` varies per trial: it jitters task costs and irregular
    /// recursion shapes the way input datasets vary across runs.
    #[must_use]
    pub fn dag(self, seed: u64) -> DagSpec {
        self.dag_scaled(seed, 1.0)
    }

    /// Build the DAG with all work costs multiplied by `scale`
    /// (smoke tests use `scale < 1`).
    #[must_use]
    pub fn dag_scaled(self, seed: u64, scale: f64) -> DagSpec {
        let mut rng = SmallRng::seed_from_u64(seed ^ (self as u64) << 32);
        let dag = match self {
            Benchmark::Sort => sort_dag(&mut rng, scale),
            Benchmark::Compare => compare_dag(&mut rng, scale),
            Benchmark::Knn => knn_dag(&mut rng, scale),
            Benchmark::Ray => ray_dag(&mut rng, scale),
            Benchmark::Hull => hull_dag(&mut rng, scale),
        };
        dag.with_mem_fraction(self.mem_fraction())
    }

    /// Memory-bound fraction of each benchmark's work segments — the
    /// effective DVFS frequency sensitivity.
    ///
    /// Radix sort streams the whole array every pass (bandwidth-bound);
    /// sample sort is close behind; the geometry benchmarks are
    /// pointer-chasing through caches. On the paper's machines (DDR3-1600
    /// shared by 8–16 active cores) memory time dominates: execution-time
    /// exponents versus core frequency of 0.2–0.4 are the norm for this
    /// benchmark class, which is precisely why the paper loses only 3–4 %
    /// time while running large fractions of the work at 2/3 frequency.
    /// Calibrated per benchmark; see `DESIGN.md` §"calibrated
    /// parameters".
    #[must_use]
    pub fn mem_fraction(self) -> f64 {
        match self {
            Benchmark::Sort => 0.80,
            Benchmark::Compare => 0.74,
            Benchmark::Knn => 0.66,
            Benchmark::Ray => 0.70,
            Benchmark::Hull => 0.64,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------
// Shape helpers

/// A `cilk_for`-style balanced binary spawn tree over per-task costs,
/// with `split` cycles of divide work at each interior node.
fn balanced_for(b: &mut DagBuilder, costs: &[u64], split: u64) -> NodeId {
    if costs.len() == 1 {
        return b.node(vec![Action::Work(costs[0])]);
    }
    let mid = costs.len() / 2;
    let left = balanced_for(b, &costs[..mid], split);
    let right = balanced_for(b, &costs[mid..], split);
    b.node(vec![
        Action::Work(split),
        Action::Spawn(left),
        Action::Spawn(right),
        Action::Sync,
    ])
}

/// A balanced binary spawn tree combining pre-built subtrees.
fn balanced_tree_over(b: &mut DagBuilder, nodes: &[NodeId], split: u64) -> NodeId {
    if nodes.len() == 1 {
        return nodes[0];
    }
    let mid = nodes.len() / 2;
    let left = balanced_tree_over(b, &nodes[..mid], split);
    let right = balanced_tree_over(b, &nodes[mid..], split);
    b.node(vec![
        Action::Work(split),
        Action::Spawn(left),
        Action::Spawn(right),
        Action::Sync,
    ])
}

/// A root running phases sequentially: `serial_before` cycles, then the
/// phase subtree, then sync, for each phase.
fn phased_root(b: &mut DagBuilder, phases: Vec<(u64, NodeId)>) -> NodeId {
    let mut actions = Vec::new();
    for (serial, phase) in phases {
        actions.push(Action::Work(serial));
        actions.push(Action::Spawn(phase));
        actions.push(Action::Sync);
    }
    b.node(actions)
}

/// Jittered cost: `base` ± `jitter` fraction.
fn jitter(rng: &mut SmallRng, base: f64, frac: f64) -> u64 {
    let f = 1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * frac;
    (base * f).max(1.0) as u64
}

fn scaled(scale: f64, v: f64) -> f64 {
    (v * scale).max(1.0)
}

// ---------------------------------------------------------------------
// Benchmark models

/// Integer Sort: 4 radix passes; each pass is a balanced count sweep, a
/// short serial prefix-sum, and a balanced scatter sweep. Costs are
/// near-uniform — radix sort is the *balanced* benchmark.
fn sort_dag(rng: &mut SmallRng, scale: f64) -> DagSpec {
    let mut b = DagBuilder::new();
    let blocks = 1024;
    let block_cost = scaled(scale, 380_000.0);
    let mut phases = Vec::new();
    for _ in 0..4 {
        for _ in 0..2 {
            // count sweep, then scatter sweep
            let costs: Vec<u64> = (0..blocks).map(|_| jitter(rng, block_cost, 0.15)).collect();
            let tree = balanced_for(&mut b, &costs, 3_000);
            phases.push((jitter(rng, scaled(scale, 1_200_000.0), 0.1), tree));
        }
    }
    let root = phased_root(&mut b, phases);
    b.build(root)
}

/// Comparison Sort: a sampling phase, a balanced partition sweep, and a
/// bucket-sort phase whose bucket costs follow a power law — the
/// *imbalanced* sort.
fn compare_dag(rng: &mut SmallRng, scale: f64) -> DagSpec {
    let mut b = DagBuilder::new();
    // Partition sweep.
    let part_costs: Vec<u64> = (0..1024)
        .map(|_| jitter(rng, scaled(scale, 330_000.0), 0.15))
        .collect();
    let partition = balanced_for(&mut b, &part_costs, 3_000);
    // Imbalanced bucket sorts: power-law sizes, cost ~ m log m; each
    // bucket is itself a recursive sort (its own spawn subtree).
    let buckets = 64;
    let weights: Vec<f64> = (0..buckets)
        .map(|_| rng.gen::<f64>().max(1e-3).powf(-0.55))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let total_bucket_cycles = scaled(scale, 1.5e9);
    let bucket_nodes: Vec<NodeId> = weights
        .iter()
        .map(|w| {
            let cost = total_bucket_cycles * w / wsum;
            parallel_work(&mut b, rng, cost, 400_000.0)
        })
        .collect();
    let bucket_phase = balanced_tree_over(&mut b, &bucket_nodes, 3_000);
    let root = phased_root(
        &mut b,
        vec![
            (jitter(rng, scaled(scale, 8_000_000.0), 0.1), partition),
            (jitter(rng, scaled(scale, 2_000_000.0), 0.1), bucket_phase),
        ],
    );
    b.build(root)
}

/// KNN: a divide-and-conquer kd-tree build (interior cost proportional
/// to subtree size) followed by a query sweep with moderate variance.
fn knn_dag(rng: &mut SmallRng, scale: f64) -> DagSpec {
    let mut b = DagBuilder::new();
    let build = knn_build_node(&mut b, rng, scaled(scale, 1.1e9), 11);
    let query_costs: Vec<u64> = (0..2048)
        .map(|_| {
            // Query blocks: lognormal-ish, backtracking varies ~3x.
            let v = 1.0 + rng.gen::<f64>() * rng.gen::<f64>() * 2.0;
            jitter(rng, scaled(scale, 650_000.0) * v / 1.8, 0.1)
        })
        .collect();
    let queries = balanced_for(&mut b, &query_costs, 2_500);
    let root = phased_root(
        &mut b,
        vec![
            (jitter(rng, scaled(scale, 3_000_000.0), 0.1), build),
            (jitter(rng, scaled(scale, 2_000_000.0), 0.1), queries),
        ],
    );
    b.build(root)
}

/// Spread `total` cycles of data-parallel work (a PBBS parallel filter /
/// partition) over `~block`-sized tasks as a balanced spawn tree; small
/// amounts stay a single segment.
fn parallel_work(b: &mut DagBuilder, rng: &mut SmallRng, total: f64, block: f64) -> NodeId {
    let tasks = ((total / block).round() as usize).clamp(1, 4096);
    if tasks == 1 {
        return b.node(vec![Action::Work(jitter(rng, total, 0.2))]);
    }
    let costs: Vec<u64> = (0..tasks)
        .map(|_| jitter(rng, total / tasks as f64, 0.15))
        .collect();
    balanced_for(b, &costs, 3_000)
}

/// kd-build recursion: a node over `m` total cycles runs a *parallel*
/// median partition (PBBS parallelises the filter), then recurses on two
/// halves.
fn knn_build_node(b: &mut DagBuilder, rng: &mut SmallRng, m: f64, depth: u32) -> NodeId {
    if depth == 0 {
        return b.node(vec![Action::Work(jitter(rng, m, 0.2))]);
    }
    let partition = parallel_work(b, rng, m * 0.12, 500_000.0);
    let bias = 0.5 + (rng.gen::<f64>() - 0.5) * 0.06; // near-median splits
    let rest = m * 0.88;
    let left = knn_build_node(b, rng, rest * bias, depth - 1);
    let right = knn_build_node(b, rng, rest * (1.0 - bias), depth - 1);
    b.node(vec![
        Action::Spawn(partition),
        Action::Sync,
        Action::Spawn(left),
        Action::Spawn(right),
        Action::Sync,
    ])
}

/// Ray: a BVH build (like the kd build but shallower) and a cast sweep
/// with a heavy tail — some rays traverse far deeper than others.
fn ray_dag(rng: &mut SmallRng, scale: f64) -> DagSpec {
    let mut b = DagBuilder::new();
    let build = knn_build_node(&mut b, rng, scaled(scale, 0.7e9), 10);
    let cast_costs: Vec<u64> = (0..2048)
        .map(|_| {
            // Heavy tail: 1 in 8 blocks hits a dense region.
            let heavy = rng.gen::<f64>() < 0.125;
            let base = if heavy { 2_300_000.0 } else { 550_000.0 };
            jitter(rng, scaled(scale, base), 0.25)
        })
        .collect();
    let cast = balanced_for(&mut b, &cast_costs, 2_500);
    let root = phased_root(
        &mut b,
        vec![
            (jitter(rng, scaled(scale, 2_000_000.0), 0.1), build),
            (jitter(rng, scaled(scale, 1_500_000.0), 0.1), cast),
        ],
    );
    b.build(root)
}

/// Hull: a balanced filter sweep, then the quickhull recursion — an
/// *irregular* tree whose subproblem sizes shrink unpredictably.
fn hull_dag(rng: &mut SmallRng, scale: f64) -> DagSpec {
    let mut b = DagBuilder::new();
    let filter_costs: Vec<u64> = (0..1024)
        .map(|_| jitter(rng, scaled(scale, 350_000.0), 0.15))
        .collect();
    let filter = balanced_for(&mut b, &filter_costs, 3_000);
    let recursion = hull_node(&mut b, rng, scaled(scale, 2.4e9));
    let root = phased_root(
        &mut b,
        vec![
            (jitter(rng, scaled(scale, 3_000_000.0), 0.1), filter),
            (jitter(rng, scaled(scale, 1_000_000.0), 0.1), recursion),
        ],
    );
    b.build(root)
}

/// Quickhull recursion: a *parallel* partition of the candidate set
/// (cost ∝ m), then recursion on two sides that together keep only part
/// of the points (irregular attrition).
fn hull_node(b: &mut DagBuilder, rng: &mut SmallRng, m: f64) -> NodeId {
    if m < 1_500_000.0 {
        return b.node(vec![Action::Work(jitter(rng, m.max(150_000.0), 0.3))]);
    }
    let partition = parallel_work(b, rng, m * 0.18, 500_000.0);
    // Survivors: 45-80% of candidates, split unevenly between sides.
    let survive = 0.45 + rng.gen::<f64>() * 0.35;
    let lean = rng.gen::<f64>();
    let rest = m * 0.82 * survive;
    let left = hull_node(b, rng, rest * lean);
    let right = hull_node(b, rng, rest * (1.0 - lean));
    b.node(vec![
        Action::Spawn(partition),
        Action::Sync,
        Action::Spawn(left),
        Action::Spawn(right),
        Action::Sync,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_dags() {
        for bench in Benchmark::all() {
            let dag = bench.dag(1);
            assert!(!dag.is_empty(), "{bench}");
            let total = dag.total_cycles();
            assert!(
                (1e9..6e9).contains(&(total as f64)),
                "{bench}: total {total} cycles should be second-scale"
            );
            let span = dag.critical_path_cycles();
            assert!(span <= total);
            let parallelism = total as f64 / span as f64;
            assert!(
                parallelism > 8.0,
                "{bench}: T1/Tinf = {parallelism:.1} must support 16 workers"
            );
        }
    }

    #[test]
    fn dags_are_deterministic_per_seed() {
        for bench in Benchmark::all() {
            assert_eq!(bench.dag(7), bench.dag(7), "{bench}");
        }
    }

    #[test]
    fn seeds_change_the_dag() {
        for bench in Benchmark::all() {
            assert_ne!(bench.dag(1), bench.dag(2), "{bench}");
        }
    }

    #[test]
    fn scaling_shrinks_work() {
        for bench in Benchmark::all() {
            let full = bench.dag_scaled(3, 1.0).total_cycles() as f64;
            let tenth = bench.dag_scaled(3, 0.1).total_cycles() as f64;
            assert!(
                tenth < full * 0.2,
                "{bench}: scale 0.1 gave {tenth} vs {full}"
            );
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Benchmark::all().iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
