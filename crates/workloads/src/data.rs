//! Seeded synthetic input generators.
//!
//! The paper uses PBBS datasets; we generate structurally equivalent
//! inputs deterministically from a seed so every trial is reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Euclidean distance to `other`.
    #[must_use]
    pub fn dist(&self, other: &Point2) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[must_use]
    pub fn dist2(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// A point in 3-space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point3 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Z coordinate.
    pub z: f64,
}

impl Point3 {
    /// Component-wise subtraction.
    #[must_use]
    pub fn sub(&self, o: &Point3) -> Point3 {
        Point3 {
            x: self.x - o.x,
            y: self.y - o.y,
            z: self.z - o.z,
        }
    }

    /// Cross product.
    #[must_use]
    pub fn cross(&self, o: &Point3) -> Point3 {
        Point3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Dot product.
    #[must_use]
    pub fn dot(&self, o: &Point3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }
}

/// A labelled training point for the KNN benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Labeled {
    /// Feature-space position.
    pub point: Point2,
    /// Class label.
    pub label: u8,
}

/// A triangle in 3-space (the Ray benchmark's scene element).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Point3,
    /// Second vertex.
    pub b: Point3,
    /// Third vertex.
    pub c: Point3,
}

impl Triangle {
    /// Centroid of the triangle.
    #[must_use]
    pub fn centroid(&self) -> Point3 {
        Point3 {
            x: (self.a.x + self.b.x + self.c.x) / 3.0,
            y: (self.a.y + self.b.y + self.c.y) / 3.0,
            z: (self.a.z + self.b.z + self.c.z) / 3.0,
        }
    }
}

/// A ray with origin and direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Origin point.
    pub origin: Point3,
    /// Direction (not necessarily normalised).
    pub dir: Point3,
}

/// Uniform random points in the unit square.
#[must_use]
pub fn uniform_points2(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point2 {
            x: rng.gen::<f64>(),
            y: rng.gen::<f64>(),
        })
        .collect()
}

/// Clustered points: `clusters` Gaussian-ish blobs in the unit square —
/// the skewed spatial distribution that makes KNN/Hull irregular.
#[must_use]
pub fn clustered_points2(n: usize, clusters: usize, seed: u64) -> Vec<Point2> {
    assert!(clusters > 0, "at least one cluster");
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers: Vec<Point2> = (0..clusters)
        .map(|_| Point2 {
            x: rng.gen::<f64>(),
            y: rng.gen::<f64>(),
        })
        .collect();
    (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..clusters)];
            // Sum of uniforms approximates a Gaussian tightly enough here.
            let jitter = |rng: &mut SmallRng| {
                (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5) * 0.05
            };
            Point2 {
                x: (c.x + jitter(&mut rng)).clamp(0.0, 1.0),
                y: (c.y + jitter(&mut rng)).clamp(0.0, 1.0),
            }
        })
        .collect()
}

/// Labelled training points: label = spatial quadrant-ish classes with
/// noise, so k-NN classification is non-trivial but learnable.
#[must_use]
pub fn labeled_points(n: usize, classes: u8, seed: u64) -> Vec<Labeled> {
    assert!(classes > 0, "at least one class");
    let mut rng = SmallRng::seed_from_u64(seed);
    uniform_points2(n, seed.wrapping_add(1))
        .into_iter()
        .map(|point| {
            let base = ((point.x * f64::from(classes)) as u8).min(classes - 1);
            let label = if rng.gen::<f64>() < 0.9 {
                base
            } else {
                rng.gen_range(0..classes)
            };
            Labeled { point, label }
        })
        .collect()
}

/// Uniform random `u32` keys.
#[must_use]
pub fn uniform_keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// Zipf-skewed keys: a few values dominate — the adversarial case for
/// bucket-based sorts (bucket imbalance drives steals).
#[must_use]
pub fn skewed_keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r: f64 = rng.gen::<f64>().max(1e-12);
            // Inverse-power transform: heavy head, long tail.
            let v = (1.0 / r.powf(0.5) - 1.0) * 1e6;
            (v as u64).min(u64::from(u32::MAX)) as u32
        })
        .collect()
}

/// Random triangle soup in the unit cube with edge lengths ~`size`.
#[must_use]
pub fn triangle_soup(n: usize, size: f64, seed: u64) -> Vec<Triangle> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let base = Point3 {
                x: rng.gen::<f64>(),
                y: rng.gen::<f64>(),
                z: rng.gen::<f64>(),
            };
            let mut v = |b: f64| b + (rng.gen::<f64>() - 0.5) * size;
            Triangle {
                a: base,
                b: Point3 {
                    x: v(base.x),
                    y: v(base.y),
                    z: v(base.z),
                },
                c: Point3 {
                    x: v(base.x),
                    y: v(base.y),
                    z: v(base.z),
                },
            }
        })
        .collect()
}

/// Rays shot from a plane in front of the cube toward it (the paper's
/// "penetrating rays R ... in a three-dimensional bounding box").
#[must_use]
pub fn ray_cast_set(n: usize, seed: u64) -> Vec<Ray> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Ray {
            origin: Point3 {
                x: rng.gen::<f64>(),
                y: rng.gen::<f64>(),
                z: -1.0,
            },
            dir: Point3 {
                x: (rng.gen::<f64>() - 0.5) * 0.2,
                y: (rng.gen::<f64>() - 0.5) * 0.2,
                z: 1.0,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_points2(100, 7), uniform_points2(100, 7));
        assert_eq!(uniform_keys(100, 7), uniform_keys(100, 7));
        assert_eq!(triangle_soup(10, 0.1, 7), triangle_soup(10, 0.1, 7));
        assert_ne!(uniform_keys(100, 7), uniform_keys(100, 8));
    }

    #[test]
    fn points_stay_in_unit_square() {
        for p in uniform_points2(1000, 3)
            .into_iter()
            .chain(clustered_points2(1000, 5, 3))
        {
            assert!((0.0..=1.0).contains(&p.x));
            assert!((0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn labels_are_in_range() {
        for l in labeled_points(500, 4, 9) {
            assert!(l.label < 4);
        }
    }

    #[test]
    fn skewed_keys_are_skewed() {
        // Keys above 1e8 need a draw below ~1e-4, so sample enough that the
        // tail is present in any healthy stream (expected ~20 hits here),
        // not just under one lucky seed.
        let n = 200_000;
        let keys = skewed_keys(n, 11);
        let small = keys.iter().filter(|&&k| k < 1_000_000).count();
        assert!(
            small > n * 3 / 10,
            "inverse-power transform should concentrate mass low: {small}"
        );
        let large = keys.iter().filter(|&&k| k > 100_000_000).count();
        assert!(large > 0, "but keep a long tail");
    }

    #[test]
    fn point_geometry_helpers() {
        let a = Point2 { x: 0.0, y: 0.0 };
        let b = Point2 { x: 3.0, y: 4.0 };
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        let x = Point3 {
            x: 1.0,
            y: 0.0,
            z: 0.0,
        };
        let y = Point3 {
            x: 0.0,
            y: 1.0,
            z: 0.0,
        };
        let z = x.cross(&y);
        assert!((z.z - 1.0).abs() < 1e-12 && z.x.abs() < 1e-12);
        assert!(x.dot(&y).abs() < 1e-12);
    }

    #[test]
    fn rays_point_into_the_cube() {
        for r in ray_cast_set(100, 5) {
            assert!(r.origin.z < 0.0);
            assert!(r.dir.z > 0.0);
        }
    }
}
