//! Convex Hull (the paper's **Hull** benchmark): parallel quickhull,
//! after PBBS `convexHull`.

use crate::data::Point2;
use hermes_rt::join;

/// Below this many candidate points, recurse serially.
const SERIAL_CUTOFF: usize = 2_000;
/// Strictly-left tolerance: points closer to a hull edge than this are
/// treated as on it and excluded (PBBS does the same).
const EPS: f64 = 1e-12;

/// Twice the signed area of triangle `(a, b, c)`; positive when `c` lies
/// strictly left of the directed line `a -> b`.
#[must_use]
pub fn cross(a: &Point2, b: &Point2, c: &Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Convex hull of `points` by parallel quickhull, returned in
/// counter-clockwise order starting from the leftmost point. Collinear
/// boundary points are excluded.
///
/// Returns an empty vector for fewer than 3 input points.
///
/// ```
/// use hermes_rt::Pool;
/// use hermes_workloads::{quickhull, Point2};
/// let pool = Pool::new(2);
/// let square = vec![
///     Point2 { x: 0.0, y: 0.0 }, Point2 { x: 1.0, y: 0.0 },
///     Point2 { x: 1.0, y: 1.0 }, Point2 { x: 0.0, y: 1.0 },
///     Point2 { x: 0.5, y: 0.5 }, // interior: excluded
/// ];
/// let hull = pool.install(|| quickhull(&square));
/// assert_eq!(hull.len(), 4);
/// ```
#[must_use]
pub fn quickhull(points: &[Point2]) -> Vec<Point2> {
    if points.len() < 3 {
        return Vec::new();
    }
    let cmp = |a: &&Point2, b: &&Point2| {
        (a.x, a.y)
            .partial_cmp(&(b.x, b.y))
            .expect("finite coordinates")
    };
    let lo = *points.iter().min_by(cmp).expect("non-empty");
    let hi = *points.iter().max_by(cmp).expect("non-empty");
    if lo == hi {
        return Vec::new(); // all points identical
    }
    let above: Vec<Point2> = points
        .iter()
        .copied()
        .filter(|p| cross(&lo, &hi, p) > EPS)
        .collect();
    let below: Vec<Point2> = points
        .iter()
        .copied()
        .filter(|p| cross(&hi, &lo, p) > EPS)
        .collect();
    let (upper, lower) = join(|| expand(lo, hi, above), || expand(hi, lo, below));
    let mut hull = Vec::with_capacity(upper.len() + lower.len() + 2);
    // `expand(a, b, _)` yields the chain strictly between a and b, in
    // a -> b order, on the left of a -> b. Counter-clockwise traversal
    // from the leftmost point runs below-side first (lo -> hi), then
    // above-side back (hi -> lo) — i.e. both chains reversed.
    hull.push(lo);
    hull.extend(lower.into_iter().rev());
    hull.push(hi);
    hull.extend(upper.into_iter().rev());
    // Farthest-point ties among collinear candidates can elect a point in
    // the middle of a hull edge; sweep those (and duplicates) out so the
    // hull contains corner vertices only, like the oracle.
    remove_collinear_middles(&mut hull);
    if hull.len() < 3 {
        return Vec::new(); // collinear input: no 2-d hull
    }
    hull
}

/// Drop vertices that do not make a strict left turn (collinear middles
/// and duplicates), iterating until the polygon is strictly convex.
fn remove_collinear_middles(hull: &mut Vec<Point2>) {
    loop {
        let n = hull.len();
        if n < 3 {
            return;
        }
        let mut keep = Vec::with_capacity(n);
        for i in 0..n {
            let prev = &hull[(i + n - 1) % n];
            let next = &hull[(i + 1) % n];
            if cross(prev, next, &hull[i]) < -EPS {
                // hull[i] lies strictly right of prev->next: a real corner
                // of the counter-clockwise polygon.
                keep.push(hull[i]);
            }
        }
        if keep.len() == n {
            return;
        }
        *hull = keep;
    }
}

/// Hull points strictly left of `a -> b`, in hull order.
fn expand(a: Point2, b: Point2, pts: Vec<Point2>) -> Vec<Point2> {
    if pts.is_empty() {
        return Vec::new();
    }
    // Farthest point from the line a-b drives the split.
    let far = *pts
        .iter()
        .max_by(|p, q| {
            cross(&a, &b, p)
                .partial_cmp(&cross(&a, &b, q))
                .expect("finite coordinates")
        })
        .expect("non-empty");
    let split = |from: Point2, to: Point2, pts: &[Point2]| -> Vec<Point2> {
        pts.iter()
            .copied()
            .filter(|p| cross(&from, &to, p) > EPS)
            .collect()
    };
    let left = split(a, far, &pts);
    let right = split(far, b, &pts);
    let (mut l, r) = if pts.len() >= SERIAL_CUTOFF {
        join(|| expand(a, far, left), || expand(far, b, right))
    } else {
        (expand(a, far, left), expand(far, b, right))
    };
    l.push(far);
    l.extend(r);
    l
}

/// Andrew's monotone chain — the serial oracle for tests. Returns the
/// hull counter-clockwise from the leftmost point, collinear points
/// excluded.
#[must_use]
pub fn convex_hull_oracle(points: &[Point2]) -> Vec<Point2> {
    if points.len() < 3 {
        return Vec::new();
    }
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).expect("finite"));
    pts.dedup();
    if pts.len() < 3 {
        return Vec::new();
    }
    let mut lower: Vec<Point2> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross(&lower[lower.len() - 2], &lower[lower.len() - 1], &p) <= EPS
        {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point2> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(&upper[upper.len() - 2], &upper[upper.len() - 1], &p) <= EPS
        {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    if lower.len() + upper.len() < 3 {
        return Vec::new(); // fully collinear input
    }
    lower.extend(upper);
    lower
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{clustered_points2, uniform_points2};
    use hermes_rt::Pool;

    fn normalize(mut hull: Vec<Point2>) -> Vec<(u64, u64)> {
        // Hulls may start at different vertices; compare as sorted sets of
        // quantised coordinates.
        let q = |v: f64| (v * 1e12) as u64;
        let mut keys: Vec<(u64, u64)> = hull.drain(..).map(|p| (q(p.x), q(p.y))).collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn hull_matches_monotone_chain_oracle() {
        let pool = Pool::new(4);
        for seed in [80, 81, 82] {
            let pts = uniform_points2(5_000, seed);
            let expect = convex_hull_oracle(&pts);
            let got = pool.install(|| quickhull(&pts));
            assert_eq!(normalize(got), normalize(expect), "seed {seed}");
        }
    }

    #[test]
    fn hull_of_clustered_points() {
        let pool = Pool::new(4);
        let pts = clustered_points2(10_000, 6, 83);
        let expect = convex_hull_oracle(&pts);
        let got = pool.install(|| quickhull(&pts));
        assert_eq!(normalize(got), normalize(expect));
    }

    #[test]
    fn hull_is_counter_clockwise_and_convex() {
        let pool = Pool::new(2);
        let pts = uniform_points2(2_000, 84);
        let hull = pool.install(|| quickhull(&pts));
        assert!(hull.len() >= 3);
        for i in 0..hull.len() {
            let a = &hull[i];
            let b = &hull[(i + 1) % hull.len()];
            let c = &hull[(i + 2) % hull.len()];
            assert!(
                cross(a, b, c) > 0.0,
                "consecutive hull vertices must turn left"
            );
        }
    }

    #[test]
    fn hull_contains_all_points() {
        let pool = Pool::new(2);
        let pts = uniform_points2(1_000, 85);
        let hull = pool.install(|| quickhull(&pts));
        for p in &pts {
            for i in 0..hull.len() {
                let a = &hull[i];
                let b = &hull[(i + 1) % hull.len()];
                assert!(
                    cross(a, b, p) >= -1e-9,
                    "point {p:?} lies outside hull edge {a:?}->{b:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(quickhull(&[]).is_empty());
        let p = Point2 { x: 0.5, y: 0.5 };
        assert!(quickhull(&[p, p, p, p]).is_empty());
        // Collinear points: no 2-d hull.
        let line: Vec<Point2> = (0..100)
            .map(|i| Point2 {
                x: i as f64,
                y: 2.0 * i as f64,
            })
            .collect();
        assert!(quickhull(&line).is_empty());
        assert!(convex_hull_oracle(&line).is_empty());
    }

    #[test]
    fn triangle_is_its_own_hull() {
        let tri = vec![
            Point2 { x: 0.0, y: 0.0 },
            Point2 { x: 1.0, y: 0.0 },
            Point2 { x: 0.0, y: 1.0 },
        ];
        let hull = quickhull(&tri);
        assert_eq!(normalize(hull), normalize(tri.clone()));
        assert_eq!(normalize(convex_hull_oracle(&tri)), normalize(tri));
    }
}
