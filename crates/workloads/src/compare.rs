//! Comparison Sort (the paper's **Compare** benchmark): parallel sample
//! sort, after PBBS `sampleSort`.

use crate::util::{par_consume, par_map_into, parallel_scatter, split_by_sizes};

/// Below this size, delegate to the standard sort.
const SERIAL_CUTOFF: usize = 1 << 12;
/// Oversampling factor for pivot selection.
const OVERSAMPLE: usize = 8;

/// Sort `data` ascending with a parallel sample sort: sample pivots,
/// partition into buckets in parallel, sort buckets in parallel.
///
/// ```
/// use hermes_rt::Pool;
/// use hermes_workloads::sample_sort;
/// let pool = Pool::new(2);
/// let mut v = vec![9u32, 1, 8, 2, 7];
/// pool.install(|| sample_sort(&mut v));
/// assert_eq!(v, [1, 2, 7, 8, 9]);
/// ```
pub fn sample_sort(data: &mut [u32]) {
    sample_sort_with_buckets(data, 64);
}

/// [`sample_sort`] with an explicit bucket count (exposed for the
/// granularity ablation).
///
/// # Panics
///
/// Panics if `buckets` is 0.
pub fn sample_sort_with_buckets(data: &mut [u32], buckets: usize) {
    assert!(buckets > 0, "at least one bucket");
    let n = data.len();
    if n <= SERIAL_CUTOFF || buckets == 1 {
        data.sort_unstable();
        return;
    }

    // Sample by fixed stride (deterministic), sort the sample, and pick
    // equally spaced pivots.
    let sample_size = (buckets * OVERSAMPLE).min(n);
    let stride = n / sample_size;
    let mut sample: Vec<u32> = (0..sample_size).map(|i| data[i * stride]).collect();
    sample.sort_unstable();
    let pivots: Vec<u32> = (1..buckets).map(|b| sample[b * OVERSAMPLE - 1]).collect();

    // Partition into buckets with the parallel scatter, then sort each
    // bucket in parallel and copy back.
    let classify = |x: &u32| pivots.partition_point(|p| p < x);
    let mut buf = vec![0u32; n];
    let sizes = parallel_scatter(data, &mut buf, buckets, (n / 64).max(1), &classify);
    let bucket_slices = split_by_sizes(&mut buf[..], &sizes);
    par_consume(bucket_slices, &|bucket| bucket.sort_unstable());
    par_map_into(&buf, data, (n / 64).max(1), &|&x| x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{skewed_keys, uniform_keys};
    use hermes_rt::Pool;

    fn check_sorts(mut v: Vec<u32>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let pool = Pool::new(4);
        pool.install(|| sample_sort(&mut v));
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_uniform_keys() {
        check_sorts(uniform_keys(100_000, 52));
    }

    #[test]
    fn sorts_skewed_keys() {
        // Heavy duplication stresses bucket imbalance.
        check_sorts(skewed_keys(100_000, 53));
    }

    #[test]
    fn sorts_edge_cases() {
        check_sorts(vec![]);
        check_sorts(vec![7]);
        check_sorts(vec![0; 50_000]);
        check_sorts((0..50_000u32).rev().collect());
    }

    #[test]
    fn explicit_bucket_counts() {
        for buckets in [1, 2, 16, 128] {
            let mut v = uniform_keys(30_000, 54);
            let mut expect = v.clone();
            expect.sort_unstable();
            let pool = Pool::new(4);
            pool.install(|| sample_sort_with_buckets(&mut v, buckets));
            assert_eq!(v, expect, "buckets={buckets}");
        }
    }
}
