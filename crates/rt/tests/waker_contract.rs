//! Waker-contract tests for `Pool::spawn_future` (ISSUE 6 satellite):
//! the four ways a waker can be misused or raced — wake before the next
//! poll, concurrent wakes from several threads, wake after completion,
//! and dropping a task without ever polling it to completion — must
//! never lose a poll, double-poll a scheduled task, resurrect a
//! completed one, or leak the future.
//!
//! The thread-heavy property tests are skipped under Miri; the
//! `miri_` tests at the bottom are sized for the interpreter and run
//! in the deque-concurrency CI lane's Miri step.

use hermes_rt::{Pool, WakerLatch};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Increments a shared counter when the owning future is dropped.
struct DropToken(Arc<AtomicU32>);

impl Drop for DropToken {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Shared observation point for one spawned [`Probe`].
struct Scope {
    polls: Arc<AtomicU32>,
    completions: Arc<AtomicU32>,
    drops: Arc<AtomicU32>,
    fired: Arc<AtomicBool>,
    /// The waker of the most recent pending poll.
    slot: Arc<Mutex<Option<Waker>>>,
    done: Arc<WakerLatch>,
}

/// Completes once `fired` is observed true; otherwise parks its waker
/// in `slot` (with the register/re-check pattern, so firing and waking
/// between the load and the store is never lost).
struct Probe {
    scope: ProbeShared,
    _token: DropToken,
}

#[derive(Clone)]
struct ProbeShared {
    polls: Arc<AtomicU32>,
    completions: Arc<AtomicU32>,
    fired: Arc<AtomicBool>,
    slot: Arc<Mutex<Option<Waker>>>,
    done: Arc<WakerLatch>,
}

impl Future for Probe {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let s = &self.scope;
        s.polls.fetch_add(1, Ordering::SeqCst);
        if s.fired.load(Ordering::SeqCst) {
            s.completions.fetch_add(1, Ordering::SeqCst);
            s.done.set();
            return Poll::Ready(());
        }
        *s.slot.lock() = Some(cx.waker().clone());
        if s.fired.load(Ordering::SeqCst) {
            s.completions.fetch_add(1, Ordering::SeqCst);
            s.done.set();
            return Poll::Ready(());
        }
        Poll::Pending
    }
}

fn spawn_probe(pool: &Pool) -> Scope {
    let scope = Scope {
        polls: Arc::new(AtomicU32::new(0)),
        completions: Arc::new(AtomicU32::new(0)),
        drops: Arc::new(AtomicU32::new(0)),
        fired: Arc::new(AtomicBool::new(false)),
        slot: Arc::new(Mutex::new(None)),
        done: Arc::new(WakerLatch::new()),
    };
    pool.spawn_future(Probe {
        scope: ProbeShared {
            polls: Arc::clone(&scope.polls),
            completions: Arc::clone(&scope.completions),
            fired: Arc::clone(&scope.fired),
            slot: Arc::clone(&scope.slot),
            done: Arc::clone(&scope.done),
        },
        _token: DropToken(Arc::clone(&scope.drops)),
    });
    scope
}

/// Spin until `counter` reaches `expect` (the completion latch is set
/// *inside* the final poll, slightly before the task drops the future,
/// so drop-count asserts need a grace window).
fn wait_for_count(counter: &AtomicU32, expect: u32, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while counter.load(Ordering::SeqCst) != expect {
        assert!(Instant::now() < deadline, "{what} never reached {expect}");
        std::thread::yield_now();
    }
}

/// Spin until the probe's first poll parked a waker.
fn wait_for_waker(scope: &Scope) -> Waker {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(w) = scope.slot.lock().take() {
            return w;
        }
        assert!(Instant::now() < deadline, "first poll never parked a waker");
        std::thread::yield_now();
    }
}

/// Wake before the re-poll has happened: a second wake finding the task
/// still SCHEDULED must coalesce (no double poll), and the owed poll
/// must still happen.
fn wake_before_poll_round(pool: &Pool) {
    let scope = spawn_probe(pool);
    let waker = wait_for_waker(&scope);
    scope.fired.store(true, Ordering::SeqCst);
    // First wake schedules the task; the immediate second wake races
    // the worker's poll and must be a no-op whether it finds the task
    // scheduled, running, or complete.
    waker.wake_by_ref();
    waker.wake();
    scope.done.wait();
    assert_eq!(scope.completions.load(Ordering::SeqCst), 1);
    let polls = scope.polls.load(Ordering::SeqCst);
    // Poll 1 parked; the coalesced wakes buy at most one more poll,
    // plus at most one for a wake that lands mid-poll (NOTIFIED).
    assert!((2..=3).contains(&polls), "polls = {polls}");
}

/// `threads` concurrent wakers on one pending task: the task completes
/// exactly once, and the wakes coalesce into at most `threads` extra
/// polls.
fn concurrent_wake_round(pool: &Pool, threads: usize) {
    let scope = spawn_probe(pool);
    let waker = wait_for_waker(&scope);
    scope.fired.store(true, Ordering::SeqCst);
    let barrier = Arc::new(std::sync::Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let waker = waker.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                waker.wake();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    scope.done.wait();
    assert_eq!(scope.completions.load(Ordering::SeqCst), 1);
    let polls = scope.polls.load(Ordering::SeqCst) as usize;
    assert!(polls >= 2, "the wakes must buy a re-poll");
    assert!(
        polls <= 1 + threads,
        "polls = {polls} with {threads} wakers"
    );
}

/// Wakes delivered after the future completed are no-ops: no poll, no
/// resurrection, no crash.
fn wake_after_completion_round(pool: &Pool) {
    let scope = spawn_probe(pool);
    let waker = wait_for_waker(&scope);
    let stale = waker.clone();
    scope.fired.store(true, Ordering::SeqCst);
    waker.wake();
    scope.done.wait();
    let polls_at_completion = scope.polls.load(Ordering::SeqCst);
    wait_for_count(&scope.drops, 1, "future drop at completion");
    stale.wake_by_ref();
    stale.wake();
    std::thread::yield_now();
    assert_eq!(scope.polls.load(Ordering::SeqCst), polls_at_completion);
    assert_eq!(scope.completions.load(Ordering::SeqCst), 1);
}

#[test]
fn wake_before_poll_is_coalesced() {
    let pool = Pool::new(2);
    for _ in 0..50 {
        wake_before_poll_round(&pool);
    }
}

#[test]
fn wake_after_completion_is_noop() {
    let pool = Pool::new(2);
    for _ in 0..50 {
        wake_after_completion_round(&pool);
    }
}

#[test]
fn dropping_the_pool_frees_unfinished_tasks() {
    // Tasks parked IDLE when their pool dies are freed once the last
    // waker goes: nothing leaks, nothing is polled again.
    let pool = Pool::new(2);
    let scopes: Vec<Scope> = (0..16).map(|_| spawn_probe(&pool)).collect();
    let wakers: Vec<Waker> = scopes.iter().map(wait_for_waker).collect();
    drop(pool);
    for scope in &scopes {
        assert_eq!(scope.completions.load(Ordering::SeqCst), 0);
    }
    // Waking against the dead pool retires the tasks in place...
    for w in &wakers {
        w.wake_by_ref();
    }
    for scope in &scopes {
        assert_eq!(
            scope.drops.load(Ordering::SeqCst),
            1,
            "dead-pool wake must drop the future"
        );
        assert_eq!(scope.completions.load(Ordering::SeqCst), 0);
    }
    // ...and the remaining waker clones are inert.
    drop(wakers);
}

#[test]
fn stopped_pool_releases_tasks_submitted_afterwards() {
    let mut pool = Pool::new(1);
    pool.stop();
    let scope = spawn_probe(&pool);
    assert_eq!(
        scope.drops.load(Ordering::SeqCst),
        1,
        "released, not queued"
    );
    assert_eq!(scope.polls.load(Ordering::SeqCst), 0, "never polled");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent wakes from 2..=4 threads against pools of 1..=4
    /// workers: exactly one completion, bounded polls.
    #[test]
    #[cfg_attr(miri, ignore = "thread-heavy; miri_concurrent_wake_smoke covers this")]
    fn concurrent_wakes_complete_exactly_once(
        workers in 1usize..4,
        threads in 2usize..5,
        rounds in 1usize..4,
    ) {
        let pool = Pool::new(workers);
        for _ in 0..rounds {
            concurrent_wake_round(&pool, threads);
        }
    }

    /// Interleaving wake-before-poll rounds with plain completions on a
    /// single worker keeps the 1-worker pool live (no lost wakeups even
    /// when every poll competes with the waker for the only worker).
    #[test]
    #[cfg_attr(miri, ignore = "thread-heavy; miri_wake_smoke covers this")]
    fn single_worker_pool_never_loses_wakeups(rounds in 1usize..8) {
        let pool = Pool::new(1);
        for _ in 0..rounds {
            wake_before_poll_round(&pool);
        }
    }
}

// ---------------------------------------------------------------------
// Miri-sized variants: one round each, small pools, no proptest driver.
// The deque-concurrency CI lane runs these under Miri.

#[test]
fn miri_wake_smoke() {
    let pool = Pool::new(1);
    wake_before_poll_round(&pool);
    wake_after_completion_round(&pool);
}

#[test]
fn miri_concurrent_wake_smoke() {
    let pool = Pool::new(1);
    concurrent_wake_round(&pool, 2);
}

// ---------------------------------------------------------------------
// Full-length stress: #[ignore]d so local `cargo test -q` stays fast;
// the deque-concurrency CI lane runs it in release via `-- --ignored`.

#[test]
#[ignore = "long-running wake storm; the concurrency CI lane runs it"]
fn stress_wake_storm() {
    for workers in [1, 2, 4] {
        let pool = Pool::new(workers);
        for round in 0..400 {
            match round % 3 {
                0 => wake_before_poll_round(&pool),
                1 => concurrent_wake_round(&pool, 4),
                _ => wake_after_completion_round(&pool),
            }
        }
    }
}
