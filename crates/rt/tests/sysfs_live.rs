//! Live-hardware sysfs tests, gated to SKIP (not fail) on hosts without
//! cpufreq/RAPL access — containers, CI runners, and non-Linux machines.
//!
//! The path-independent logic is covered everywhere by the fake-root unit
//! tests in `src/sysfs.rs`; these tests only add coverage on machines that
//! genuinely expose the interfaces (the paper's setting: a root-accessible
//! Linux box with the `userspace` cpufreq governor).

use hermes_core::Frequency;
use hermes_rt::{FrequencyDriver, RaplProbe, SysfsCpufreqDriver};
use std::path::Path;

/// Whether cpu0's cpufreq interface exists, uses the `userspace` governor,
/// and `scaling_setspeed` is writable by this process.
fn cpufreq_writable() -> bool {
    let cpufreq = Path::new("/sys/devices/system/cpu/cpu0/cpufreq");
    let governor = match std::fs::read_to_string(cpufreq.join("scaling_governor")) {
        Ok(g) => g,
        Err(_) => return false,
    };
    if governor.trim() != "userspace" {
        return false;
    }
    std::fs::OpenOptions::new()
        .write(true)
        .open(cpufreq.join("scaling_setspeed"))
        .is_ok()
}

/// Restores cpu0's original `scaling_setspeed` on drop, so the test never
/// leaves the measurement box repinned — even when an assert fails.
struct SetspeedGuard {
    original: String,
}

impl SetspeedGuard {
    fn capture() -> std::io::Result<Self> {
        let original = std::fs::read_to_string(SETSPEED)?.trim().to_string();
        Ok(SetspeedGuard { original })
    }
}

impl Drop for SetspeedGuard {
    fn drop(&mut self) {
        // "<unsupported>" appears under non-userspace governors; nothing to
        // restore then (and the test skipped anyway).
        if self.original.parse::<u64>().is_ok() {
            let _ = std::fs::write(SETSPEED, format!("{}\n", self.original));
        }
    }
}

const SETSPEED: &str = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed";

#[test]
fn live_cpufreq_driver_round_trips_or_skips() {
    if !cpufreq_writable() {
        eprintln!("skipping: no writable userspace cpufreq on this host");
        return;
    }
    let freqs = SysfsCpufreqDriver::available_frequencies(Path::new("/sys/devices/system/cpu"), 0)
        .expect("advertised table readable on cpufreq hosts");
    assert!(!freqs.is_empty());
    let _guard = SetspeedGuard::capture().expect("current setpoint readable");
    let driver = SysfsCpufreqDriver::new(vec![0]).expect("constructible with userspace governor");
    let fastest: Frequency = freqs[0];
    driver
        .set_frequency(0, fastest)
        .expect("set_frequency writable");
    assert_eq!(
        driver.frequency(0),
        Some(fastest),
        "driver tracks its write"
    );
    // Round-trip through the kernel, not the driver's cache: the setpoint
    // file must hold exactly what was requested (the kernel clamps values
    // outside the advertised table).
    let kernel_khz = std::fs::read_to_string(SETSPEED)
        .expect("setpoint readable after write")
        .trim()
        .parse::<u64>()
        .expect("numeric setpoint under userspace governor");
    assert_eq!(
        kernel_khz,
        fastest.khz(),
        "kernel accepted the advertised fastest frequency unclamped"
    );
}

#[test]
fn live_rapl_probe_reads_monotone_energy_or_skips() {
    let probe = match RaplProbe::discover() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("skipping: no RAPL counters on this host ({e})");
            return;
        }
    };
    let a = probe.read_joules().expect("first reading");
    let b = probe.read_joules().expect("second reading");
    // Counters are cumulative; allow equality on coarse-resolution hosts
    // and wrap-arounds are ~minutes apart, not microseconds.
    assert!(b >= a, "RAPL energy must not decrease: {a} -> {b}");
}
