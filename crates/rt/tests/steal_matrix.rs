//! Steal-matrix and steal-distance-histogram invariants of the rt pool,
//! for both deque implementations (ISSUE 3 satellite).
//!
//! The telemetry steal matrix is the ground truth the locality ablation
//! reads, so its bookkeeping must partition exactly:
//!
//! * each thief's matrix row sums to that worker's `steals` counter,
//! * the diagonal is zero (no self-steals),
//! * the steal-distance histogram derived from the matrix totals the
//!   same number of steals (the histogram is a re-bucketing, never a
//!   re-count),
//! * event-folded totals equal the scheduler's atomic counters.

use hermes_core::{Frequency, Policy, TempoConfig};
use hermes_rt::{parallel_for, DequeKind, Pool, RtStats, Topology, VictimPolicy};
use hermes_telemetry::{RingSink, RunReport, TelemetrySink};
use std::sync::Arc;

/// Per-element work slow enough that a parallel region spans many OS
/// scheduler ticks, so thieves get a chance even on single-core hosts.
fn spin_work(x: &mut u64) {
    let mut acc = *x;
    for _ in 0..2_000 {
        acc = std::hint::black_box(acc.wrapping_mul(2654435761).rotate_left(7));
    }
    *x = acc;
}

fn run_and_report(deque: DequeKind, victim: VictimPolicy) -> (RunReport, RtStats) {
    const WORKERS: usize = 4;
    let sink = Arc::new(RingSink::new(WORKERS));
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(WORKERS)
        .build();
    let mut pool = Pool::builder()
        .workers(WORKERS)
        .tempo(tempo)
        .deque(deque)
        // Dense placement: 4 workers over 4 cores in 2 clock domains, so
        // the histogram has both distance-1 and distance-2 mass to
        // bucket.
        .topology(Topology::uniform(4, 2, 2))
        .victim_policy(victim)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
        .build();
    for _ in 0..40 {
        let mut v: Vec<u64> = (0..20_000).collect();
        pool.install(|| parallel_for(&mut v, 64, spin_work));
        if pool.stats().steals >= 20 {
            break;
        }
    }
    // Freeze the pool so counters and the sink stop moving before the
    // fold (idle workers otherwise keep recording empty sweeps).
    pool.stop();
    pool.flush_energy_telemetry();
    let stats = pool.stats();
    let report = sink
        .report("steal-matrix", "rt", pool.elapsed_ns() as f64 / 1e9, 0.0)
        .with_steal_distances(&pool.worker_distances());
    (report, stats)
}

fn check_invariants(report: &RunReport, stats: &RtStats, who: &str) {
    let totals = report.totals();
    assert!(totals.steals > 0, "{who}: the workload must steal");
    // Event totals agree with the scheduler's atomic counters.
    assert_eq!(totals.steals, stats.steals, "{who}: steals");
    assert_eq!(totals.empty_steals, stats.empty_steals, "{who}: empty");
    assert_eq!(
        totals.lost_race_steals, stats.lost_race_steals,
        "{who}: lost races"
    );
    // Matrix rows partition each thief's steals; diagonal empty.
    let mut matrix_total = 0u64;
    for (w, row) in report.steal_matrix.iter().enumerate() {
        assert_eq!(row[w], 0, "{who}: no self-steals (worker {w})");
        let row_sum: u64 = row.iter().sum();
        assert_eq!(
            row_sum, report.per_worker[w].steals,
            "{who}: row {w} sums to its steals counter"
        );
        matrix_total += row_sum;
    }
    assert_eq!(
        matrix_total, totals.steals,
        "{who}: matrix partitions steals"
    );
    // The distance histogram re-buckets the matrix exactly.
    assert_eq!(
        report.steal_distance_total(),
        totals.steals,
        "{who}: histogram total == steals"
    );
    assert!(
        report.same_domain_steal_fraction().is_some(),
        "{who}: fraction defined once steals exist"
    );
    // And everything survives the JSON codec.
    let parsed = RunReport::from_json(&report.to_json()).expect("round trip");
    assert_eq!(&parsed, report);
}

#[test]
fn the_deque_matrix_and_histogram_invariants() {
    let (report, stats) = run_and_report(DequeKind::The, VictimPolicy::UniformRandom);
    check_invariants(&report, &stats, "THE/uniform");
}

#[test]
fn lock_free_deque_matrix_and_histogram_invariants() {
    let (report, stats) = run_and_report(DequeKind::LockFree, VictimPolicy::UniformRandom);
    check_invariants(&report, &stats, "lock-free/uniform");
}

#[test]
fn locality_policies_keep_the_invariants() {
    for victim in [VictimPolicy::NearestFirst, VictimPolicy::DistanceWeighted] {
        for deque in [DequeKind::The, DequeKind::LockFree] {
            let (report, stats) = run_and_report(deque, victim);
            check_invariants(&report, &stats, victim.label());
        }
    }
}
