//! Scale-down race tests for the elastic worker pool (ISSUE 7
//! satellite): the transitions where work and sleep collide — a wake
//! delivered while a worker is anywhere between its sleep reservation
//! and the indefinite wait, a burst injected into a pool that has
//! already shed workers, concurrent sleep claims hammering the sentinel
//! floor, and shutdown racing the transition itself — must never lose a
//! wakeup, lose a task, or run a task twice.
//!
//! The thread-heavy property tests are skipped under Miri; the `miri_`
//! tests at the bottom are sized for the interpreter and run in the
//! deque-concurrency CI lane's Miri step.

use hermes_rt::{ElasticConfig, ElasticState, Pool, WakeReason};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A hair-trigger elastic config: default hysteresis bands, but a
/// cooldown short enough that every round of a test can scale.
fn cfg_fast() -> ElasticConfig {
    ElasticConfig {
        cooldown_ns: 50_000,
        ..ElasticConfig::default()
    }
}

fn elastic_pool(workers: usize) -> Pool {
    Pool::builder()
        .workers(workers)
        .spin_budget(1)
        .elastic(cfg_fast())
        .build()
}

/// Spin until `counter` reaches `expect`, asserting along the way that
/// it never overshoots — an overshoot is a task executed twice.
fn wait_for_count(counter: &AtomicU32, expect: u32, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let n = counter.load(Ordering::SeqCst);
        assert!(
            n <= expect,
            "{what} overshot: {n} > {expect} (task ran twice)"
        );
        if n == expect {
            return;
        }
        assert!(Instant::now() < deadline, "{what} stalled at {n}/{expect}");
        std::thread::yield_now();
    }
}

/// Wait for the scale controller to put at least one worker to sleep,
/// then inject a burst: every task must complete exactly once, whether
/// it is drained by the sentinel, a woken sleeper, or a thief pulling
/// from a sleeping worker's (stealable) deque.
fn scale_down_burst_round(pool: &Pool, tasks: u32, workers: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while pool.active_workers() >= workers {
        assert!(
            Instant::now() < deadline,
            "pool never scaled down from {workers}"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    let hits = Arc::new(AtomicU32::new(0));
    for _ in 0..tasks {
        let hits = Arc::clone(&hits);
        pool.spawn(move || {
            hits.fetch_add(1, Ordering::SeqCst);
        });
    }
    wait_for_count(&hits, tasks, "burst completions");
    // Grace window: a duplicate execution would land shortly after the
    // count first reaches the target.
    for _ in 0..64 {
        std::thread::yield_now();
    }
    assert_eq!(hits.load(Ordering::SeqCst), tasks, "task ran twice");
}

/// The scale-down race in isolation: deliver the wake while the sleeper
/// is anywhere between its reservation (`try_begin_sleep`) and the
/// indefinite wait (`sleep_wait`). Whichever side wins the race, the
/// wake must be consumed — the pending slot under the cell mutex is the
/// mechanism under test.
fn wake_races_sleep_transition_round(el: &ElasticState, w: usize) {
    let terminate = AtomicBool::new(false);
    assert!(el.try_begin_sleep(w), "sleep slot must be free");
    std::thread::scope(|s| {
        let sleeper = s.spawn(|| el.sleep_wait(w, &terminate));
        // `w` is already marked sleeping, so the wake targets it
        // immediately — possibly before `sleep_wait` has even started.
        assert_eq!(el.wake_one(WakeReason::Signal), Some(w));
        assert_eq!(sleeper.join().unwrap(), WakeReason::Signal);
    });
    el.finish_sleep(w);
    assert!(!el.is_sleeping(w));
}

/// Every worker claims a sleep slot at once: exactly `workers − 1` may
/// win (the sentinel floor holds through the storm), and releasing the
/// slots restores the full awake count.
fn concurrent_sleep_claims_round(workers: usize) {
    let el = ElasticState::new(cfg_fast(), workers);
    let wins: Vec<bool> = std::thread::scope(|s| {
        let el = &el;
        let handles: Vec<_> = (0..workers)
            .map(|w| s.spawn(move || el.try_begin_sleep(w)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        wins.iter().filter(|won| **won).count(),
        workers - 1,
        "exactly the sentinel must be refused"
    );
    assert_eq!(el.awake_workers(), 1);
    for (w, won) in wins.iter().enumerate() {
        if *won {
            el.finish_sleep(w);
        }
    }
    assert_eq!(el.awake_workers(), workers);
}

/// Shutdown racing the transition: workers reserve their slots and head
/// for the indefinite wait while the main thread terminates the pool.
/// The pending-slot handshake plus the terminate re-check must end
/// every wait, whether it had started or not.
fn shutdown_races_sleep_transition_round(workers: usize) {
    let el = ElasticState::new(cfg_fast(), workers);
    let terminate = AtomicBool::new(false);
    std::thread::scope(|s| {
        let el = &el;
        let terminate = &terminate;
        let sleepers: Vec<_> = (0..workers - 1)
            .map(|w| {
                s.spawn(move || {
                    assert!(el.try_begin_sleep(w), "slots are distinct");
                    let reason = el.sleep_wait(w, terminate);
                    el.finish_sleep(w);
                    reason
                })
            })
            .collect();
        terminate.store(true, Ordering::SeqCst);
        el.wake_all_for_shutdown();
        for h in sleepers {
            assert_eq!(h.join().unwrap(), WakeReason::Shutdown);
        }
    });
    assert_eq!(el.awake_workers(), workers, "everyone is awake again");
}

#[test]
fn scaled_down_pool_drains_bursts_exactly_once() {
    let mut pool = elastic_pool(4);
    for round in 0..20 {
        scale_down_burst_round(&pool, 16 + round, 4);
    }
    pool.stop();
    let stats = pool.stats();
    assert!(
        stats.sleeps > 0,
        "the rounds must actually scale: {stats:?}"
    );
    assert_eq!(stats.wakes, stats.sleeps, "{stats:?}");
}

#[test]
fn wake_during_sleep_transition_is_never_lost() {
    let el = ElasticState::new(cfg_fast(), 3);
    for round in 0..200 {
        wake_races_sleep_transition_round(&el, round % 3);
    }
    assert_eq!(el.awake_workers(), 3);
}

#[test]
fn sentinel_floor_holds_under_claim_storms() {
    for _ in 0..50 {
        concurrent_sleep_claims_round(4);
    }
}

#[test]
fn shutdown_is_never_slept_through() {
    for _ in 0..50 {
        shutdown_races_sleep_transition_round(3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bursts injected into pools mid scale-down, across worker counts
    /// and burst sizes: exactly-once completion every time, and every
    /// sleep bracket closed by exactly one wake at shutdown.
    #[test]
    #[cfg_attr(miri, ignore = "thread-heavy; miri_scale_down_smoke covers this")]
    fn bursts_survive_scale_transitions(
        workers in 2usize..5,
        tasks in 8u32..48,
        rounds in 1usize..3,
    ) {
        let mut pool = elastic_pool(workers);
        for _ in 0..rounds {
            scale_down_burst_round(&pool, tasks, workers);
        }
        pool.stop();
        let stats = pool.stats();
        prop_assert_eq!(stats.wakes, stats.sleeps);
    }

    /// The wake/sleep-transition race across worker counts and round
    /// counts: no interleaving loses the wake.
    #[test]
    #[cfg_attr(miri, ignore = "thread-heavy; miri_transition_race_smoke covers this")]
    fn transition_races_never_lose_wakes(
        workers in 2usize..6,
        rounds in 1usize..16,
    ) {
        let el = ElasticState::new(cfg_fast(), workers);
        for round in 0..rounds {
            wake_races_sleep_transition_round(&el, round % workers);
        }
        prop_assert_eq!(el.awake_workers(), workers);
    }
}

// ---------------------------------------------------------------------
// Miri-sized variants: one round each, two workers, no proptest driver.
// The deque-concurrency CI lane runs these under Miri.

#[test]
fn miri_transition_race_smoke() {
    let el = ElasticState::new(cfg_fast(), 2);
    wake_races_sleep_transition_round(&el, 1);
    concurrent_sleep_claims_round(2);
    shutdown_races_sleep_transition_round(2);
}

#[test]
fn miri_scale_down_smoke() {
    // One tiny burst on a live two-worker elastic pool — enough to run
    // the spawn→wake path under the interpreter without the (wall-clock
    // driven) scale-down wait of the full rounds.
    let mut pool = elastic_pool(2);
    let hits = Arc::new(AtomicU32::new(0));
    for _ in 0..4 {
        let hits = Arc::clone(&hits);
        pool.spawn(move || {
            hits.fetch_add(1, Ordering::SeqCst);
        });
    }
    wait_for_count(&hits, 4, "miri burst completions");
    pool.stop();
    assert_eq!(hits.load(Ordering::SeqCst), 4);
}

// ---------------------------------------------------------------------
// Full-length stress: #[ignore]d so local `cargo test -q` stays fast;
// the deque-concurrency CI lane runs it in release via `-- --ignored`.

#[test]
#[ignore = "long-running scale-transition storm; the concurrency CI lane runs it"]
fn stress_scale_transition_storm() {
    for workers in [2, 4] {
        let mut pool = elastic_pool(workers);
        for round in 0..150 {
            scale_down_burst_round(&pool, 8 + (round % 17), workers);
        }
        pool.stop();
        let stats = pool.stats();
        assert_eq!(stats.wakes, stats.sleeps, "{stats:?}");
    }
    let el = ElasticState::new(cfg_fast(), 4);
    for round in 0..400 {
        wake_races_sleep_transition_round(&el, round % 4);
    }
    for _ in 0..200 {
        concurrent_sleep_claims_round(4);
        shutdown_races_sleep_transition_round(3);
    }
}
