//! Type-erased jobs flowing through the work-stealing deques.
//!
//! This is the one module of the runtime that uses `unsafe`: like rayon's
//! `StackJob`, a [`StackJob`] lives on the stack of the `join` that created
//! it, and its [`JobRef`] is a type-erased pointer into that stack frame.
//! The join protocol guarantees the frame outlives every use of the
//! pointer: `join` does not return until the job's latch is set, and the
//! latch is set only by the single execution of the job.

use crate::Latch;
use std::cell::UnsafeCell;

/// Request class of a submitted task, used by the pool's sharded
/// injector cells to pick a drain lane (and by serving layers to drive
/// admission control). Ordered most-urgent-first, so `High < Normal`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-critical: drained before every other class, never shed
    /// by admission control.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Best-effort: drained last, shed first under load.
    Background,
}

impl Priority {
    /// Every priority, most urgent first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Background];

    /// Stable lowercase name (artifact/metrics label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Background => "background",
        }
    }
}

/// A type-erased, executable job pointer.
///
/// Equality of two `JobRef`s (pointer identity of the job object, not the
/// function pointer) is how `join` recognises that the task it popped
/// back is the one it pushed — the class fields below never participate.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
    release_fn: unsafe fn(*const ()),
    /// Request class, read by the injector cells for lane selection.
    /// Irrelevant once the job reaches a worker deque (deques preserve
    /// fork-join order, not class order).
    priority: Priority,
    /// Absolute deadline in pool-epoch nanoseconds (0 = none): routes
    /// normal-class work into the deadline lane so admitted
    /// deadline-bearing requests overtake plain normal traffic.
    deadline_ns: u64,
}

impl PartialEq for JobRef {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.pointer, other.pointer)
    }
}

impl Eq for JobRef {}

// SAFETY: a JobRef is only created from jobs whose payloads are Send
// (enforced by the public APIs' `F: Send` bounds), and the job protocol
// transfers ownership of the single execution to whichever thread runs it.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    ///
    /// `pointer` must stay valid until exactly one of `execute` or
    /// `release` is called, exactly once.
    pub(crate) unsafe fn new(
        pointer: *const (),
        execute_fn: unsafe fn(*const ()),
        release_fn: unsafe fn(*const ()),
    ) -> JobRef {
        JobRef {
            pointer,
            execute_fn,
            release_fn,
            priority: Priority::Normal,
            deadline_ns: 0,
        }
    }

    /// Attach a request class (and optional absolute deadline, 0 =
    /// none) to this job; the pool's injector cells read it for lane
    /// selection.
    #[must_use]
    pub(crate) fn with_class(mut self, priority: Priority, deadline_ns: u64) -> JobRef {
        self.priority = priority;
        self.deadline_ns = deadline_ns;
        self
    }

    /// The job's request class.
    pub(crate) fn priority(&self) -> Priority {
        self.priority
    }

    /// The job's absolute deadline in pool-epoch nanoseconds (0 = none).
    pub(crate) fn deadline_ns(&self) -> u64 {
        self.deadline_ns
    }

    /// Run the job. Consumes the ref conceptually; calling twice is UB.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: contract forwarded to the constructor's caller.
        unsafe { (self.execute_fn)(self.pointer) }
    }

    /// Free the job *without* running it.
    ///
    /// This is the shutdown path: a terminated pool drains its queues and
    /// releases whatever is still parked there. Heap jobs free their
    /// allocation, future tasks drop the queue's task reference, stack
    /// jobs do nothing (the owning `join`/`install` frame still owns the
    /// payload and will observe an unset latch).
    ///
    /// # Safety
    ///
    /// Consumes the ref: the job must not be executed or released again.
    pub(crate) unsafe fn release(self) {
        // SAFETY: contract forwarded to the constructor's caller.
        unsafe { (self.release_fn)(self.pointer) }
    }
}

/// `release` for jobs that own no heap state of their own ([`StackJob`]).
unsafe fn release_noop(_: *const ()) {}

impl std::fmt::Debug for JobRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRef")
            .field("pointer", &self.pointer)
            .finish()
    }
}

/// A job allocated on the stack of a `join`, executed at most once.
pub(crate) struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<R>>,
    pub(crate) latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> Self {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    /// A type-erased reference to this job.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive and pinned until the latch is
    /// set, and must ensure the ref is executed at most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        // SAFETY: lifetime/uniqueness obligations are forwarded to the
        // caller per this method's contract.
        unsafe {
            JobRef::new(
                self as *const StackJob<F, R> as *const (),
                Self::execute_erased,
                release_noop,
            )
        }
    }

    unsafe fn execute_erased(this: *const ()) {
        // SAFETY: `this` points to a live StackJob (the join frame blocks
        // until the latch below is set), and single execution is
        // guaranteed by the deque: each pushed JobRef is popped or stolen
        // exactly once.
        unsafe {
            let this = &*(this as *const StackJob<F, R>);
            let f = (*this.f.get()).take().expect("job executed twice");
            *this.result.get() = Some(f());
            this.latch.set();
        }
    }

    /// Take the result after the latch is set.
    ///
    /// # Safety
    ///
    /// Only call after `latch.probe()` returned true; the Acquire load in
    /// `probe` synchronises with the Release store in `set`, making the
    /// result write visible.
    pub(crate) unsafe fn take_result(&self) -> R {
        // SAFETY: per contract the latch was observed set, so the writer
        // is done and no other reader exists.
        unsafe {
            (*self.result.get())
                .take()
                .expect("result taken before job ran")
        }
    }

    /// Run the job directly on the current thread (the pop-back fast
    /// path), returning its result without the latch round-trip.
    ///
    /// # Safety
    ///
    /// The corresponding `JobRef` must not be executed afterwards.
    pub(crate) unsafe fn run_inline(&self) -> R {
        // SAFETY: per contract the JobRef is dead, so we hold the only
        // access path to the closure cell.
        let f = unsafe { (*self.f.get()).take() }.expect("job executed twice");
        let r = f();
        self.latch.set();
        r
    }
}

// SAFETY: the payload and result only cross threads via the protocol
// described on the methods.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

/// A heap-allocated fire-and-forget job (used by `scope` spawns and
/// `Pool::spawn`).
pub(crate) struct HeapJob {
    f: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    pub(crate) fn new(f: Box<dyn FnOnce() + Send>) -> Box<Self> {
        Box::new(HeapJob { f })
    }

    /// Convert into a `JobRef`, leaking the box until execution.
    pub(crate) fn into_job_ref(self: Box<Self>) -> JobRef {
        let pointer = Box::into_raw(self) as *const ();
        // SAFETY: the pointer came from Box::into_raw and is reclaimed in
        // execute_erased or release_erased exactly once.
        unsafe { JobRef::new(pointer, Self::execute_erased, Self::release_erased) }
    }

    unsafe fn execute_erased(this: *const ()) {
        // SAFETY: `this` came from Box::into_raw in into_job_ref and is
        // reclaimed exactly once.
        let this = unsafe { Box::from_raw(this as *mut HeapJob) };
        (this.f)();
    }

    unsafe fn release_erased(this: *const ()) {
        // SAFETY: as in execute_erased; the closure is dropped unrun.
        drop(unsafe { Box::from_raw(this as *mut HeapJob) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_job_roundtrip() {
        let job = StackJob::new(|| 6 * 7);
        let r = unsafe {
            let job_ref = job.as_job_ref();
            job_ref.execute();
            assert!(job.latch.probe());
            job.take_result()
        };
        assert_eq!(r, 42);
    }

    #[test]
    fn stack_job_inline_path() {
        let job = StackJob::new(|| "hi");
        let r = unsafe { job.run_inline() };
        assert_eq!(r, "hi");
        assert!(job.latch.probe());
    }

    #[test]
    fn heap_job_executes_and_frees() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicU32::new(0));
        let h2 = Arc::clone(&hits);
        let job = HeapJob::new(Box::new(move || {
            h2.fetch_add(1, Ordering::SeqCst);
        }));
        unsafe { job.into_job_ref().execute() };
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn heap_job_release_frees_without_running() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        struct DropProbe(Arc<AtomicU32>);
        impl Drop for DropProbe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU32::new(0));
        let ran = Arc::new(AtomicU32::new(0));
        let probe = DropProbe(Arc::clone(&drops));
        let r2 = Arc::clone(&ran);
        let job = HeapJob::new(Box::new(move || {
            let _keep = &probe;
            r2.fetch_add(1, Ordering::SeqCst);
        }));
        unsafe { job.into_job_ref().release() };
        assert_eq!(ran.load(Ordering::SeqCst), 0, "released job must not run");
        assert_eq!(drops.load(Ordering::SeqCst), 1, "closure must be freed");
    }

    #[test]
    fn stack_job_release_leaves_latch_unset() {
        let job = StackJob::new(|| 7);
        unsafe {
            let job_ref = job.as_job_ref();
            job_ref.release();
        }
        assert!(!job.latch.probe());
        // The frame still owns the job; run it for real afterwards.
        assert_eq!(unsafe { job.run_inline() }, 7);
    }

    #[test]
    fn class_fields_never_affect_identity() {
        let a = StackJob::new(|| 1);
        unsafe {
            let plain = a.as_job_ref();
            let classed = a.as_job_ref().with_class(Priority::High, 99);
            assert_eq!(plain, classed, "equality is pointer identity only");
            assert_eq!(classed.priority(), Priority::High);
            assert_eq!(classed.deadline_ns(), 99);
            assert_eq!(plain.priority(), Priority::Normal);
            assert_eq!(plain.deadline_ns(), 0);
            // Consume the job through exactly one of the refs.
            plain.execute();
        }
    }

    #[test]
    fn job_ref_identity() {
        let a = StackJob::new(|| 1);
        let b = StackJob::new(|| 2);
        unsafe {
            let ra1 = a.as_job_ref();
            let ra2 = a.as_job_ref();
            let rb = b.as_job_ref();
            assert_eq!(ra1, ra2);
            assert_ne!(ra1, rb);
            // Consume both so the latches are honoured.
            ra1.execute();
            rb.execute();
        }
    }
}
