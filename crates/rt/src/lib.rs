//! # hermes-rt
//!
//! A real-thread work-stealing runtime with HERMES tempo control.
//!
//! The pool mirrors the structure of the paper's modified Cilk Plus
//! runtime: per-worker deques (the THE-protocol deque from
//! `hermes-deque`), randomized victim selection, and the
//! [`TempoController`](hermes_core::TempoController) hooks wired into
//! push/pop/steal/out-of-work — so the workpath- and workload-sensitive
//! algorithms run on live threads exactly where the paper's runtime runs
//! them.
//!
//! One structural substitution, documented in `DESIGN.md`: Cilk steals
//! *continuations* (compiler-supported cactus stacks); this runtime, like
//! rayon and TBB, steals *children* — `join(a, b)` pushes `b` and runs
//! `a`. The deque discipline, thief-victim relation, and work-first
//! ordering of deque entries are preserved, which is all the tempo
//! algorithms observe. The exact continuation semantics are additionally
//! modelled in `hermes-sim`.
//!
//! Frequency actuation is pluggable: [`EmulatedDvfs`] (timing dilation +
//! power model, works anywhere), [`SysfsCpufreqDriver`] (real Linux
//! cpufreq), or [`NullDriver`] (baseline).
//!
//! ## Quickstart
//!
//! ```
//! use hermes_core::{Frequency, Policy, TempoConfig};
//! use hermes_rt::{join, Pool};
//!
//! let tempo = TempoConfig::builder()
//!     .policy(Policy::Unified)
//!     .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
//!     .workers(4)
//!     .build();
//! let pool = Pool::builder()
//!     .workers(4)
//!     .tempo(tempo)
//!     .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
//!     .build();
//!
//! let (a, b) = pool.install(|| join(|| 6 * 7, || "tempo"));
//! assert_eq!((a, b), (42, "tempo"));
//! println!("virtual energy: {:?} J", pool.total_energy());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

mod driver;
mod elastic;
mod job;
mod latch;
mod pool;
mod sysfs;
mod task;

pub use driver::{
    DriverError, EmulatedDvfs, FrequencyDriver, NullDriver, PARK_WATTS_FRACTION,
    SLEEP_WATTS_FRACTION,
};
pub use elastic::{
    ElasticConfig, ElasticState, LoadSignal, ScaleController, ScaleDecision, SleepVerdict,
    WorkerState,
};
pub use job::Priority;
pub use latch::{Latch, WakerLatch};
pub use pool::{
    current_worker_energy_nj, current_worker_index, join, parallel_chunks, parallel_for,
    parallel_map_reduce, DequeKind, Pool, PoolBuilder, RtStats, SpawnOptions,
};
pub use sysfs::{parse_available_frequencies, parse_energy_uj, RaplProbe, SysfsCpufreqDriver};
// The live-metrics types `Pool::metrics` returns and the span-phase
// vocabulary `spawn_future_traced` records, re-exported so callers
// need no separate hermes-telemetry import.
pub use hermes_telemetry::{MetricsSnapshot, SpanPhase, WakeReason, WorkerMetricsSample};
// The shared topology model the pool's locality-aware victim selection
// is configured with (see `PoolBuilder::topology`).
pub use hermes_topology::{discover as discover_topology, Topology, VictimPolicy};
