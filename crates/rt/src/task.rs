//! Heap-allocated future tasks polled on pool workers.
//!
//! A [`FutureTask`] is the async sibling of `HeapJob`: a refcounted
//! header (`Arc`) around a future, type-erased into the same [`JobRef`]
//! currency the deques and injector already move. Executing the ref
//! polls the future once, in place; the task's [`Waker`] re-queues it
//! through [`PoolInner::repush`], so between polls a pending task costs
//! nothing — no worker is pinned waiting on it.
//!
//! ## State machine
//!
//! One `AtomicU8` serializes pollers against wakers (the rayon/tokio
//! task-header discipline, with `SeqCst` throughout — these are
//! per-wake cold-path transitions, not per-steal hot-path ones):
//!
//! ```text
//!            spawn                    poll -> Pending
//!   (new) ────────▶ SCHEDULED ──▶ RUNNING ─────────────▶ IDLE
//!                       ▲           │  ▲ │                 │
//!                       │   wake    │  │ └──▶ COMPLETE     │ wake
//!                       │  during   ▼  │    (poll Ready    │
//!                       │   poll  NOTIFIED    or panic)    │
//!                       └───────────┘ └────────────────────┘
//!                        re-queued after the poll returns
//! ```
//!
//! Invariants the `unsafe` below leans on:
//!
//! - Exactly one `JobRef` per `SCHEDULED` episode exists in the queues,
//!   and queues hand each ref to exactly one executor — so at most one
//!   poller runs at a time, and only the poller touches the future
//!   cell. Wakers touch nothing but `state`.
//! - A wake that finds the task `RUNNING` parks as `NOTIFIED`; the
//!   poller converts that into a fresh `SCHEDULED` episode after its
//!   poll returns `Pending`, so readiness that races with the poll is
//!   never lost.
//! - `COMPLETE` is terminal: the future is dropped in place (the cell
//!   is emptied) before the state is published, and late wakes no-op.
//!
//! Reference counting: the queue's `JobRef` holds one strong count
//! (`Arc::into_raw` at enqueue, `Arc::from_raw` at execute/release),
//! and every `Waker` clone holds one. A task whose future returns
//! `Pending` without stashing its waker anywhere is therefore freed on
//! the spot — leaked-task bugs decay into dropped futures, not lost
//! memory.

use crate::job::{JobRef, Priority};
use crate::pool::{PoolInner, SpawnOptions};
use hermes_telemetry::SpanPhase;
use std::cell::UnsafeCell;
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

/// Not queued, not running: only a wake can revive the task.
const IDLE: u8 = 0;
/// A `JobRef` for the task sits in a deque or the injector.
const SCHEDULED: u8 = 1;
/// A worker is inside `poll`.
const RUNNING: u8 = 2;
/// A wake landed during `poll`; re-queue when the poll returns.
const NOTIFIED: u8 = 3;
/// The future finished (or panicked, or its pool died) and was dropped.
const COMPLETE: u8 = 4;

/// A spawned future and its scheduling header (see module docs).
pub(crate) struct FutureTask<F> {
    state: AtomicU8,
    /// Weak: tasks must not keep a shut-down pool alive, and a wake
    /// arriving after the pool died completes the task in place.
    pool: Weak<PoolInner>,
    /// `None` once complete; see the module invariants for why the
    /// state machine makes the cell data-race-free.
    future: UnsafeCell<Option<F>>,
    /// Causal-span id threaded through the telemetry stream at every
    /// lifecycle edge; 0 means untraced (the cost is one branch per
    /// edge, see `PoolInner::record_span`).
    span: u64,
    /// Request class, re-attached to every `JobRef` this task mints so
    /// waker re-queues land in the same injector lane the original
    /// submission used.
    priority: Priority,
    /// Absolute deadline in pool-epoch nanoseconds (0 = none), carried
    /// alongside the class for lane selection.
    deadline_ns: u64,
}

// SAFETY: the future cell is only ever accessed by the unique holder of
// the RUNNING transition (or the exclusive SCHEDULED claim in
// `reschedule`'s dead-pool arm); every other thread only touches the
// atomic `state`. `F: Send` makes moving that exclusive access across
// threads sound.
unsafe impl<F: Send> Sync for FutureTask<F> {}

impl<F> FutureTask<F>
where
    F: Future<Output = ()> + Send + 'static,
{
    /// Queue `future` on `pool` as a freshly scheduled task. A nonzero
    /// `span` threads a causal-span id through the event stream (see
    /// `Pool::spawn_future_traced`); 0 traces nothing. `opts` carries
    /// the request class (kept for the task's whole lifetime, so
    /// re-queues preserve the lane) and the initial cell hint (used
    /// only for this first injection; re-queues follow the waking
    /// worker's locality instead).
    pub(crate) fn spawn(pool: &Arc<PoolInner>, future: F, span: u64, opts: SpawnOptions) {
        let task = Arc::new(FutureTask {
            state: AtomicU8::new(SCHEDULED),
            pool: Arc::downgrade(pool),
            future: UnsafeCell::new(Some(future)),
            span,
            priority: opts.priority,
            deadline_ns: opts.deadline_ns,
        });
        pool.record_span(span, true, SpanPhase::Queued);
        pool.inject_hinted(task.into_job_ref(), opts.domain_hint);
    }

    /// Type-erase one strong reference into the deques' job currency.
    fn into_job_ref(self: Arc<Self>) -> JobRef {
        let (priority, deadline_ns) = (self.priority, self.deadline_ns);
        let pointer = Arc::into_raw(self) as *const ();
        // SAFETY: the pointer came from Arc::into_raw and is reclaimed
        // by exactly one of poll_erased/release_erased.
        unsafe { JobRef::new(pointer, Self::poll_erased, Self::release_erased) }
            .with_class(priority, deadline_ns)
    }

    unsafe fn poll_erased(this: *const ()) {
        // SAFETY: `this` came from Arc::into_raw in into_job_ref; the
        // queue hands the ref to exactly one executor.
        let task = unsafe { Arc::from_raw(this as *const Self) };
        task.poll_once();
    }

    unsafe fn release_erased(this: *const ()) {
        // SAFETY: as in poll_erased; dropping the strong count without
        // polling is exactly what release means. The future itself is
        // dropped when the last reference (possibly a waker held
        // elsewhere) goes away.
        drop(unsafe { Arc::from_raw(this as *const Self) });
    }

    /// Run one poll episode: SCHEDULED → RUNNING → {IDLE, SCHEDULED,
    /// COMPLETE}.
    fn poll_once(self: Arc<Self>) {
        let prev = self.state.swap(RUNNING, Ordering::SeqCst);
        debug_assert_eq!(prev, SCHEDULED, "queued task polled while not scheduled");
        let pool = self.pool.upgrade();
        if let Some(pool) = &pool {
            pool.task_polled();
            pool.record_span(self.span, false, SpanPhase::Queued);
            pool.record_span(self.span, true, SpanPhase::Poll);
        }
        let waker = Waker::from(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        // SAFETY: we hold the unique SCHEDULED→RUNNING transition, so no
        // other thread touches the cell (module invariants).
        let slot = unsafe { &mut *self.future.get() };
        let fut = slot.as_mut().expect("completed task was rescheduled");
        // SAFETY: the future lives inside the Arc and is never moved:
        // polled in place here, dropped in place by the `None` stores.
        let pinned = unsafe { Pin::new_unchecked(fut) };
        match std::panic::catch_unwind(AssertUnwindSafe(|| pinned.poll(&mut cx))) {
            Ok(Poll::Ready(())) => {
                if let Some(pool) = &pool {
                    pool.record_span(self.span, false, SpanPhase::Poll);
                }
                // Drop the future in place *before* publishing COMPLETE;
                // late wakes observe COMPLETE and no-op.
                *slot = None;
                self.state.store(COMPLETE, Ordering::SeqCst);
            }
            Ok(Poll::Pending) => {
                // Open the park-wait span *before* the RUNNING→IDLE CAS:
                // once IDLE is published a waker may close the span from
                // its own thread, and the pairing stays begin-then-end.
                if let Some(pool) = &pool {
                    pool.record_span(self.span, false, SpanPhase::Poll);
                    pool.record_span(self.span, true, SpanPhase::ParkWait);
                }
                // Park the task unless a wake landed during the poll, in
                // which case it goes straight back to the queue: the
                // wake may have raced with the future's own readiness
                // registration, so it must buy another poll.
                if self
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
                {
                    debug_assert_eq!(self.state.load(Ordering::SeqCst), NOTIFIED);
                    // The wake beat the park: a zero-length park-wait.
                    if let Some(pool) = &pool {
                        pool.record_span(self.span, false, SpanPhase::ParkWait);
                    }
                    self.state.store(SCHEDULED, Ordering::SeqCst);
                    self.reschedule();
                }
            }
            Err(payload) => {
                if let Some(pool) = &pool {
                    pool.record_span(self.span, false, SpanPhase::Poll);
                }
                // A panicking future is dead: free it, then resume the
                // panic on the worker like a panicking spawn closure.
                *slot = None;
                self.state.store(COMPLETE, Ordering::SeqCst);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// The waker body: buy the task another poll, at most one queue
    /// entry at a time.
    fn wake_impl(self: &Arc<Self>) {
        let pool = self.pool.upgrade();
        if let Some(pool) = &pool {
            pool.task_woken();
        }
        loop {
            match self.state.load(Ordering::SeqCst) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, SCHEDULED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        // Close the park-wait on the *waking* thread's
                        // stream — this edge is the cross-worker hop the
                        // trace exporter draws a flow arrow for.
                        if let Some(pool) = &pool {
                            pool.record_span(self.span, false, SpanPhase::ParkWait);
                        }
                        return self.reschedule();
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                // SCHEDULED / NOTIFIED: a poll is already owed, and it
                // will observe any readiness published before this
                // wake. COMPLETE: late wake, no-op.
                _ => return,
            }
        }
    }

    /// Hand a freshly SCHEDULED task back to the pool's queues.
    fn reschedule(self: &Arc<Self>) {
        match self.pool.upgrade() {
            Some(pool) => {
                pool.record_span(self.span, true, SpanPhase::Queued);
                pool.repush(Arc::clone(self).into_job_ref());
            }
            None => {
                // The pool is gone: no worker will ever poll again.
                // SAFETY: we hold the exclusive SCHEDULED claim with no
                // queue entry outstanding, so no other thread touches
                // the cell; drop the future now so waker clones held by
                // dead event sources don't keep it alive.
                unsafe { *self.future.get() = None };
                self.state.store(COMPLETE, Ordering::SeqCst);
            }
        }
    }
}

impl<F> Wake for FutureTask<F>
where
    F: Future<Output = ()> + Send + 'static,
{
    fn wake(self: Arc<Self>) {
        self.wake_impl();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.wake_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Mutex;

    /// A future that reports its drop and can be told to stay pending,
    /// parking its waker in a shared slot.
    struct Probe {
        polls: Arc<AtomicU32>,
        drops: Arc<AtomicU32>,
        ready_after: u32,
        waker_slot: Arc<Mutex<Option<Waker>>>,
    }

    impl Future for Probe {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let polls = self.polls.fetch_add(1, Ordering::SeqCst) + 1;
            if polls >= self.ready_after {
                Poll::Ready(())
            } else {
                *self.waker_slot.lock().unwrap() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    impl Drop for Probe {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    struct Rig {
        polls: Arc<AtomicU32>,
        drops: Arc<AtomicU32>,
        waker_slot: Arc<Mutex<Option<Waker>>>,
        task: Arc<FutureTask<Probe>>,
    }

    /// A scheduled task with a dead pool handle, as if its pool had
    /// been dropped while the task sat in a queue.
    fn orphan_task(ready_after: u32) -> Rig {
        let polls = Arc::new(AtomicU32::new(0));
        let drops = Arc::new(AtomicU32::new(0));
        let waker_slot = Arc::new(Mutex::new(None));
        let task = Arc::new(FutureTask {
            state: AtomicU8::new(SCHEDULED),
            pool: Weak::new(),
            future: UnsafeCell::new(Some(Probe {
                polls: Arc::clone(&polls),
                drops: Arc::clone(&drops),
                ready_after,
                waker_slot: Arc::clone(&waker_slot),
            })),
            span: 0,
            priority: Priority::Normal,
            deadline_ns: 0,
        });
        Rig {
            polls,
            drops,
            waker_slot,
            task,
        }
    }

    #[test]
    fn ready_future_completes_and_frees() {
        let rig = orphan_task(1);
        let job = Arc::clone(&rig.task).into_job_ref();
        // SAFETY: the ref is executed exactly once.
        unsafe { job.execute() };
        assert_eq!(rig.polls.load(Ordering::SeqCst), 1);
        assert_eq!(
            rig.drops.load(Ordering::SeqCst),
            1,
            "future dropped in place"
        );
        assert_eq!(rig.task.state.load(Ordering::SeqCst), COMPLETE);
    }

    #[test]
    fn release_frees_without_polling() {
        let rig = orphan_task(1);
        let job = Arc::clone(&rig.task).into_job_ref();
        // SAFETY: the ref is released exactly once and never executed.
        unsafe { job.release() };
        assert_eq!(rig.polls.load(Ordering::SeqCst), 0, "released, not run");
        drop(rig.task);
        assert_eq!(
            rig.drops.load(Ordering::SeqCst),
            1,
            "freed with the last ref"
        );
    }

    #[test]
    fn wake_after_pool_death_completes_in_place() {
        let rig = orphan_task(u32::MAX);
        let job = Arc::clone(&rig.task).into_job_ref();
        // SAFETY: the ref is executed exactly once.
        unsafe { job.execute() };
        assert_eq!(rig.task.state.load(Ordering::SeqCst), IDLE);
        let waker = rig
            .waker_slot
            .lock()
            .unwrap()
            .take()
            .expect("waker stashed");
        waker.wake();
        // No pool to re-queue on: the wake itself retired the task.
        assert_eq!(rig.task.state.load(Ordering::SeqCst), COMPLETE);
        assert_eq!(rig.drops.load(Ordering::SeqCst), 1);
        assert_eq!(rig.polls.load(Ordering::SeqCst), 1, "never polled again");
    }

    #[test]
    fn wake_after_completion_is_noop() {
        let rig = orphan_task(1);
        let external = Waker::from(Arc::clone(&rig.task));
        let job = Arc::clone(&rig.task).into_job_ref();
        // SAFETY: the ref is executed exactly once.
        unsafe { job.execute() };
        assert_eq!(rig.task.state.load(Ordering::SeqCst), COMPLETE);
        external.wake_by_ref();
        external.wake();
        assert_eq!(rig.task.state.load(Ordering::SeqCst), COMPLETE);
        assert_eq!(rig.polls.load(Ordering::SeqCst), 1);
        assert_eq!(rig.drops.load(Ordering::SeqCst), 1, "not resurrected");
    }

    #[test]
    fn unstashed_waker_means_refcount_frees_pending_future() {
        // A future that returns Pending without registering its waker
        // anywhere: once the queue's ref is consumed, nothing keeps the
        // task alive and the future is freed, not leaked.
        let rig = orphan_task(u32::MAX);
        let job = Arc::clone(&rig.task).into_job_ref();
        // SAFETY: the ref is executed exactly once.
        unsafe { job.execute() };
        // Drop the stashed waker (the only outside reference besides
        // ours) and then our handle.
        rig.waker_slot.lock().unwrap().take();
        drop(rig.task);
        assert_eq!(rig.drops.load(Ordering::SeqCst), 1);
    }
}
