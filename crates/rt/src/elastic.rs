//! Elastic worker-count scaling (`hermes-elastic`).
//!
//! The tempo controller scales *frequency*; this module scales the
//! *worker count*. Each worker moves through an explicit lifecycle —
//! [`WorkerState::Busy`] (executing a task), [`WorkerState::Stealing`]
//! (sweeping for work), [`WorkerState::Sleeping`] (taken out of the
//! pool) — and a [`ScaleController`] consumes the pool's existing load
//! signals (merged injector-cell depth, the failed-steal rate, and the
//! windowed busy-share the serving layer already computes for
//! admission) to decide wake-one / sleep-one transitions.
//!
//! Two invariants, both enforced here rather than trusted to callers:
//!
//! * **Sentinel** — at least [`ElasticConfig::min_awake`] workers
//!   (≥ 1) are awake at all times. [`ElasticState::try_begin_sleep`]
//!   refuses the transition that would violate it, so there is always
//!   a worker spinning/stealing to pick up arriving work immediately.
//! * **Hysteresis** — the wake thresholds sit strictly above the sleep
//!   thresholds and every committed transition starts a cooldown
//!   ([`ElasticConfig::cooldown_ns`]), so a load level near either
//!   threshold cannot thrash the pool through sleep/wake cycles.
//!
//! Unlike a *parked* worker (PR 5), which re-checks for work every
//! millisecond, a *sleeping* worker waits indefinitely on its own
//! per-worker channel and is woken only by an explicit signal: a load
//! decision ([`WakeReason::Signal`]), a sentinel rotation
//! ([`WakeReason::SentinelRotation`]), or pool shutdown
//! ([`WakeReason::Shutdown`]). Its deque stays stealable and the
//! injector cells stay drainable by everyone still awake — sleeping
//! removes a *thief and a pair of hands*, never work.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

use hermes_telemetry::WakeReason;
use parking_lot::{Condvar, Mutex};

/// Lifecycle of a worker under the elastic policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Executing a task.
    Busy,
    /// Awake but out of local work: polling the injector and sweeping
    /// victims (this is also the sentinel's resting state).
    Stealing,
    /// Taken out of the pool: waiting indefinitely for a wake signal.
    Sleeping,
}

const STATE_BUSY: u8 = 0;
const STATE_STEALING: u8 = 1;
const STATE_SLEEPING: u8 = 2;

impl WorkerState {
    fn code(self) -> u8 {
        match self {
            WorkerState::Busy => STATE_BUSY,
            WorkerState::Stealing => STATE_STEALING,
            WorkerState::Sleeping => STATE_SLEEPING,
        }
    }

    fn from_code(code: u8) -> WorkerState {
        match code {
            STATE_BUSY => WorkerState::Busy,
            STATE_SLEEPING => WorkerState::Sleeping,
            _ => WorkerState::Stealing,
        }
    }
}

/// Tuning knobs of the elastic policy. [`Default`] gives the constants
/// documented in DESIGN.md §Elastic; every threshold pair must keep the
/// wake side strictly above the sleep side (checked at pool build).
#[derive(Debug, Clone, Copy)]
pub struct ElasticConfig {
    /// Sentinel floor: how many workers must stay awake (clamped ≥ 1).
    pub min_awake: usize,
    /// Wake a sleeper when the merged injector depth exceeds this many
    /// queued tasks *per awake worker* (backlog the awake set cannot
    /// absorb).
    pub wake_depth_per_worker: usize,
    /// Allow sleeping only when the merged injector depth is at or
    /// below this absolute count. Must sit below
    /// `wake_depth_per_worker × 1` for hysteresis.
    pub sleep_depth: usize,
    /// Wake a sleeper when the windowed busy-share reaches this
    /// many permille.
    pub wake_busy_permille: u32,
    /// Allow sleeping only when the windowed busy-share is at or below
    /// this many permille. Must sit below `wake_busy_permille`.
    pub sleep_busy_permille: u32,
    /// Minimum nanoseconds between committed scale transitions (shared
    /// by wakes and sleeps, so the pool cannot ping-pong).
    pub cooldown_ns: u64,
    /// Sentinel fairness: at most every this many nanoseconds, the
    /// sentinel may wake a sleeper ([`WakeReason::SentinelRotation`])
    /// and retire itself at the next opportunity, so one worker does
    /// not spin forever while its peers sleep. `0` disables rotation
    /// (the default: deterministic benches keep a fixed sentinel).
    pub rotation_period_ns: u64,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            min_awake: 1,
            wake_depth_per_worker: 4,
            sleep_depth: 1,
            wake_busy_permille: 900,
            sleep_busy_permille: 400,
            cooldown_ns: 2_000_000,
            rotation_period_ns: 0,
        }
    }
}

impl ElasticConfig {
    /// Panic unless the wake thresholds sit strictly above the sleep
    /// thresholds (the hysteresis band exists) and the sentinel floor
    /// is at least one.
    fn validate(self) -> Self {
        assert!(self.min_awake >= 1, "elastic min_awake must be >= 1");
        assert!(
            self.wake_depth_per_worker > self.sleep_depth,
            "elastic hysteresis: wake depth {} must exceed sleep depth {}",
            self.wake_depth_per_worker,
            self.sleep_depth
        );
        assert!(
            self.wake_busy_permille > self.sleep_busy_permille,
            "elastic hysteresis: wake busy-share {} must exceed sleep busy-share {}",
            self.wake_busy_permille,
            self.sleep_busy_permille
        );
        self
    }
}

/// One observation of the pool's load, fed to [`ScaleController::decide`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadSignal {
    /// Merged depth of the injector cells (tasks admitted but not yet
    /// picked up).
    pub queue_depth: usize,
    /// Windowed busy-share of the awake workers, in permille (0 when no
    /// live-metrics hub exists; the depth and steal signals then carry
    /// the decision alone).
    pub busy_permille: u32,
    /// Failed steal sweeps observed since the last consultation — the
    /// caller's evidence that awake workers are idling. A sleep is only
    /// ever proposed on this evidence, so a saturated pool (whose
    /// sweeps succeed) never sheds workers on a depth blip.
    pub failed_sweeps: u64,
}

/// What the pool should do with the worker count right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Wake one sleeping worker.
    WakeOne,
    /// Put one awake worker to sleep.
    SleepOne,
    /// Leave the pool as it is.
    Hold,
}

/// The decision core: pure threshold logic over a [`LoadSignal`] plus
/// the shared scale cooldown. Separate from [`ElasticState`] so the
/// hysteresis behaviour is unit-testable without threads.
#[derive(Debug)]
pub struct ScaleController {
    cfg: ElasticConfig,
    /// Nanosecond timestamp (pool epoch) of the last committed scale
    /// transition; 0 before the first.
    last_scale_ns: AtomicU64,
}

impl ScaleController {
    /// A controller over `cfg` (validated).
    #[must_use]
    pub fn new(cfg: ElasticConfig) -> Self {
        ScaleController {
            cfg: cfg.validate(),
            last_scale_ns: AtomicU64::new(0),
        }
    }

    /// Threshold logic: wake when the backlog per awake worker or the
    /// busy-share crosses the wake line; sleep when depth *and*
    /// busy-share sit under the sleep lines and the caller brings
    /// failed-sweep evidence; hold in the hysteresis band between.
    /// Wake outranks sleep, and neither fires outside
    /// `min_awake..=total`. Pure — cooldown is [`Self::try_commit`]'s
    /// business, so tests can probe the bands directly.
    #[must_use]
    pub fn decide(&self, sig: LoadSignal, awake: usize, total: usize) -> ScaleDecision {
        if awake < total
            && (sig.queue_depth > self.cfg.wake_depth_per_worker * awake.max(1)
                || sig.busy_permille >= self.cfg.wake_busy_permille)
        {
            return ScaleDecision::WakeOne;
        }
        if awake > self.cfg.min_awake
            && sig.failed_sweeps > 0
            && sig.queue_depth <= self.cfg.sleep_depth
            && sig.busy_permille <= self.cfg.sleep_busy_permille
        {
            return ScaleDecision::SleepOne;
        }
        ScaleDecision::Hold
    }

    /// Claim the shared cooldown for a transition at `now_ns`. Returns
    /// `false` (decision dropped) while a previous transition's
    /// cooldown is still running or another thread claims this instant
    /// first.
    pub fn try_commit(&self, now_ns: u64) -> bool {
        let last = self.last_scale_ns.load(Ordering::Relaxed);
        now_ns.saturating_sub(last) >= self.cfg.cooldown_ns
            && self
                .last_scale_ns
                .compare_exchange(last, now_ns, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
    }
}

/// Outcome of an idle worker consulting the policy before blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepVerdict {
    /// The sleep slot is reserved (awake count already decremented):
    /// the worker must proceed into its sleep bracket.
    Sleep,
    /// The worker is (one of) the sentinel(s): it must never take the
    /// indefinite sleep. It keeps spinning/stealing, or falls back to
    /// the shallow 1 ms-recheck park where producer notifies still
    /// reach it.
    Sentinel,
    /// No transition right now (cooldown, load in the hysteresis band,
    /// or a racing worker took the slot): fall back to ordinary
    /// parking.
    Hold,
}

/// Per-worker wake channel. A sleeping worker waits here indefinitely;
/// a wake stores its reason and notifies. Keeping the channel separate
/// from the pool's park condvar means producer notifies never land on
/// (and are never swallowed by) sleepers.
#[derive(Debug, Default)]
struct WakeCell {
    pending: Mutex<Option<WakeReason>>,
    cond: Condvar,
}

/// Shared elastic state of one pool: the per-worker lifecycle flags,
/// the awake count (sentinel accounting), the wake channels, and the
/// embedded [`ScaleController`].
#[derive(Debug)]
pub struct ElasticState {
    cfg: ElasticConfig,
    controller: ScaleController,
    /// Workers not currently sleeping. Decremented (under the sentinel
    /// floor check) *before* a worker starts its sleep bracket,
    /// incremented after it ends, so the invariant holds through the
    /// transition itself.
    awake: AtomicUsize,
    /// Per-worker lifecycle, for observability (racy reads by design).
    states: Vec<AtomicU8>,
    /// `sleeping[w]` is set for the whole sleep bracket of worker `w`;
    /// wake targeting scans it.
    sleeping: Vec<AtomicBool>,
    cells: Vec<WakeCell>,
    /// Timestamp of the last sentinel rotation (cooldown separate from
    /// the scale cooldown: rotation is fairness, not scaling).
    rotation_last_ns: AtomicU64,
}

impl ElasticState {
    /// Elastic state for a pool of `workers` workers.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` violates the hysteresis invariants (wake
    /// thresholds must sit strictly above sleep thresholds) or
    /// `min_awake` is zero.
    #[must_use]
    pub fn new(cfg: ElasticConfig, workers: usize) -> Self {
        let cfg = cfg.validate();
        ElasticState {
            cfg,
            controller: ScaleController::new(cfg),
            awake: AtomicUsize::new(workers),
            states: (0..workers)
                .map(|_| AtomicU8::new(STATE_STEALING))
                .collect(),
            sleeping: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            cells: (0..workers).map(|_| WakeCell::default()).collect(),
            rotation_last_ns: AtomicU64::new(0),
        }
    }

    /// The configuration this state was built with.
    #[must_use]
    pub fn config(&self) -> ElasticConfig {
        self.cfg
    }

    /// Total workers (sleeping or not).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.cells.len()
    }

    /// Workers currently awake (not inside a sleep bracket).
    #[must_use]
    pub fn awake_workers(&self) -> usize {
        self.awake.load(Ordering::SeqCst)
    }

    /// Whether worker `w` is inside a sleep bracket right now.
    #[must_use]
    pub fn is_sleeping(&self, w: usize) -> bool {
        self.sleeping[w].load(Ordering::SeqCst)
    }

    /// Worker `w`'s current lifecycle state (racy by nature).
    #[must_use]
    pub fn worker_state(&self, w: usize) -> WorkerState {
        WorkerState::from_code(self.states[w].load(Ordering::Relaxed))
    }

    /// Publish worker `w`'s lifecycle transition (one relaxed store).
    pub fn set_state(&self, w: usize, state: WorkerState) {
        self.states[w].store(state.code(), Ordering::Relaxed);
    }

    /// Idle worker `w` (fresh off `failed_sweeps` empty sweeps) asks
    /// what to do before blocking. On [`SleepVerdict::Sleep`] the slot
    /// is already reserved — the caller must run its sleep bracket and
    /// end it with [`Self::finish_sleep`].
    #[must_use]
    pub fn consult(&self, w: usize, sig: LoadSignal, now_ns: u64) -> SleepVerdict {
        let awake = self.awake.load(Ordering::SeqCst);
        if let ScaleDecision::SleepOne = self.controller.decide(sig, awake, self.workers()) {
            if self.controller.try_commit(now_ns) && self.try_begin_sleep(w) {
                return SleepVerdict::Sleep;
            }
            return SleepVerdict::Hold;
        }
        if awake <= self.cfg.min_awake {
            return SleepVerdict::Sentinel;
        }
        SleepVerdict::Hold
    }

    /// Reserve a sleep slot for worker `w`: decrement the awake count
    /// unless that would break the sentinel floor. On success the
    /// worker is marked sleeping and **must** eventually call
    /// [`Self::finish_sleep`].
    pub fn try_begin_sleep(&self, w: usize) -> bool {
        let floor = self.cfg.min_awake;
        let reserved = self
            .awake
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n > floor).then(|| n - 1)
            })
            .is_ok();
        if reserved {
            self.sleeping[w].store(true, Ordering::SeqCst);
            self.set_state(w, WorkerState::Sleeping);
        }
        reserved
    }

    /// Block worker `w` until a wake signal arrives; returns the
    /// reason. No timed re-check: this wait is indefinite by design
    /// (the whole point of sleeping over parking). A wake requested
    /// *before* this call (the scale-down race window) is consumed
    /// immediately — the pending slot under the cell mutex is what
    /// makes the handshake lose no wakeups. `terminate` is re-checked
    /// after every wakeup so a shutdown that raced the transition is
    /// never slept through.
    pub fn sleep_wait(&self, w: usize, terminate: &AtomicBool) -> WakeReason {
        let cell = &self.cells[w];
        let mut pending = cell.pending.lock();
        loop {
            if let Some(reason) = pending.take() {
                return reason;
            }
            if terminate.load(Ordering::SeqCst) {
                return WakeReason::Shutdown;
            }
            cell.cond.wait(&mut pending);
        }
    }

    /// End worker `w`'s sleep bracket: back awake, stale pending wake
    /// (if any) dropped, lifecycle back to stealing.
    pub fn finish_sleep(&self, w: usize) {
        self.sleeping[w].store(false, Ordering::SeqCst);
        *self.cells[w].pending.lock() = None;
        self.awake.fetch_add(1, Ordering::SeqCst);
        self.set_state(w, WorkerState::Stealing);
    }

    /// Deliver a wake to worker `w`'s channel. Safe to call whether or
    /// not `w` is actually sleeping: a stale pending wake is cleared by
    /// the next [`Self::finish_sleep`] and at worst causes one
    /// spurious (instantly re-evaluated) wakeup.
    fn request_wake(&self, w: usize, reason: WakeReason) {
        let mut pending = self.cells[w].pending.lock();
        if pending.is_none() {
            *pending = Some(reason);
        }
        self.cells[w].cond.notify_one();
    }

    /// Wake one sleeping worker (lowest index first) with `reason`.
    /// Returns the woken worker, or `None` when nobody sleeps.
    pub fn wake_one(&self, reason: WakeReason) -> Option<usize> {
        let w = (0..self.workers()).find(|&w| self.sleeping[w].load(Ordering::SeqCst))?;
        self.request_wake(w, reason);
        Some(w)
    }

    /// Producer-side scale-up check: if the signal crosses the wake
    /// thresholds and the cooldown allows it, wake one sleeper with
    /// [`WakeReason::Signal`]. Cheap when fully awake (one atomic
    /// load).
    pub fn try_wake_for_load(&self, sig: LoadSignal, now_ns: u64) -> Option<usize> {
        let awake = self.awake.load(Ordering::SeqCst);
        if awake >= self.workers() {
            return None;
        }
        if !matches!(
            self.controller.decide(sig, awake, self.workers()),
            ScaleDecision::WakeOne
        ) {
            return None;
        }
        if !self.controller.try_commit(now_ns) {
            return None;
        }
        self.wake_one(WakeReason::Signal)
    }

    /// Sentinel fairness: at most once per
    /// [`ElasticConfig::rotation_period_ns`], wake a sleeper with
    /// [`WakeReason::SentinelRotation`] so the caller (the sentinel)
    /// can retire at its next consultation. Returns the woken worker.
    pub fn try_rotate(&self, now_ns: u64) -> Option<usize> {
        if self.cfg.rotation_period_ns == 0 {
            return None;
        }
        let last = self.rotation_last_ns.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) < self.cfg.rotation_period_ns {
            return None;
        }
        if self
            .rotation_last_ns
            .compare_exchange(last, now_ns, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        self.wake_one(WakeReason::SentinelRotation)
    }

    /// Shutdown path: deliver [`WakeReason::Shutdown`] to every
    /// worker's channel (sleeping or about to sleep), so indefinite
    /// waits end. The caller must have stored `terminate` first — the
    /// channel covers workers already waiting, the terminate re-check
    /// in [`Self::sleep_wait`] covers those still transitioning.
    pub fn wake_all_for_shutdown(&self) {
        for w in 0..self.workers() {
            self.request_wake(w, WakeReason::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cfg() -> ElasticConfig {
        ElasticConfig {
            min_awake: 1,
            wake_depth_per_worker: 4,
            sleep_depth: 1,
            wake_busy_permille: 900,
            sleep_busy_permille: 400,
            cooldown_ns: 1_000,
            rotation_period_ns: 0,
        }
    }

    #[test]
    fn decide_covers_the_three_bands() {
        let ctl = ScaleController::new(cfg());
        let idle = LoadSignal {
            queue_depth: 0,
            busy_permille: 0,
            failed_sweeps: 3,
        };
        let mid = LoadSignal {
            queue_depth: 3,
            busy_permille: 600,
            failed_sweeps: 1,
        };
        let hot = LoadSignal {
            queue_depth: 40,
            busy_permille: 950,
            failed_sweeps: 0,
        };
        assert_eq!(ctl.decide(idle, 4, 4), ScaleDecision::SleepOne);
        // The hysteresis band: neither threshold crossed.
        assert_eq!(ctl.decide(mid, 4, 4), ScaleDecision::Hold);
        // Backlog or busy-share over the wake line wakes — but only if
        // someone is actually asleep.
        assert_eq!(ctl.decide(hot, 2, 4), ScaleDecision::WakeOne);
        assert_eq!(ctl.decide(hot, 4, 4), ScaleDecision::Hold);
        // The sentinel floor blocks the last sleep.
        assert_eq!(ctl.decide(idle, 1, 4), ScaleDecision::Hold);
        // No failed-sweep evidence, no sleep: a quiet depth reading
        // alone must not shed a worker.
        let quiet_no_evidence = LoadSignal {
            failed_sweeps: 0,
            ..idle
        };
        assert_eq!(ctl.decide(quiet_no_evidence, 4, 4), ScaleDecision::Hold);
        // Wake outranks sleep evidence: depth past the wake line with
        // failed sweeps still wakes.
        let deep = LoadSignal {
            queue_depth: 100,
            busy_permille: 0,
            failed_sweeps: 5,
        };
        assert_eq!(ctl.decide(deep, 2, 4), ScaleDecision::WakeOne);
    }

    #[test]
    fn wake_depth_scales_with_awake_workers() {
        let ctl = ScaleController::new(cfg());
        let sig = LoadSignal {
            queue_depth: 6,
            busy_permille: 0,
            failed_sweeps: 0,
        };
        // 6 queued > 4×1: one awake worker is overwhelmed…
        assert_eq!(ctl.decide(sig, 1, 4), ScaleDecision::WakeOne);
        // …but 6 ≤ 4×2: two awake workers absorb the same backlog.
        assert_eq!(ctl.decide(sig, 2, 4), ScaleDecision::Hold);
    }

    #[test]
    fn cooldown_blocks_back_to_back_transitions() {
        let ctl = ScaleController::new(cfg());
        // A fresh controller holds for one full cooldown from the pool
        // epoch: no scale transition in the very first instants.
        assert!(!ctl.try_commit(500));
        assert!(ctl.try_commit(5_000));
        assert!(!ctl.try_commit(5_500), "inside the cooldown window");
        assert!(ctl.try_commit(6_000), "cooldown elapsed");
        assert!(!ctl.try_commit(6_999));
        assert!(ctl.try_commit(7_500));
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_are_rejected() {
        let _ = ScaleController::new(ElasticConfig {
            wake_busy_permille: 300,
            sleep_busy_permille: 400,
            ..cfg()
        });
    }

    #[test]
    fn sentinel_floor_survives_concurrent_sleep_claims() {
        let el = ElasticState::new(cfg(), 3);
        assert_eq!(el.awake_workers(), 3);
        assert!(el.try_begin_sleep(0));
        assert!(el.try_begin_sleep(1));
        // Worker 2 is the sentinel: the claim that would empty the
        // pool is refused.
        assert!(!el.try_begin_sleep(2));
        assert_eq!(el.awake_workers(), 1);
        assert!(el.is_sleeping(0) && el.is_sleeping(1) && !el.is_sleeping(2));
        el.finish_sleep(1);
        assert_eq!(el.awake_workers(), 2);
        assert!(el.try_begin_sleep(2), "a freed slot is claimable again");
    }

    #[test]
    fn consult_maps_decisions_to_verdicts() {
        let el = ElasticState::new(cfg(), 2);
        let idle = LoadSignal {
            queue_depth: 0,
            busy_permille: 0,
            failed_sweeps: 1,
        };
        // First consultation sleeps (the epoch cooldown has elapsed),
        // second hits the sentinel floor.
        assert_eq!(el.consult(0, idle, 10_000), SleepVerdict::Sleep);
        assert_eq!(el.consult(1, idle, 10_100), SleepVerdict::Sentinel);
        el.finish_sleep(0);
        // Inside the cooldown the verdict is Hold, not Sleep…
        assert_eq!(el.consult(0, idle, 10_500), SleepVerdict::Hold);
        // …and past it the slot is claimable again.
        assert_eq!(el.consult(0, idle, 12_000), SleepVerdict::Sleep);
    }

    #[test]
    fn wake_delivered_before_wait_is_not_lost() {
        // The scale-down race in miniature: the wake lands between the
        // sleep reservation and the wait. The pending slot holds it.
        let el = ElasticState::new(cfg(), 2);
        let terminate = AtomicBool::new(false);
        assert!(el.try_begin_sleep(1));
        assert_eq!(el.wake_one(WakeReason::Signal), Some(1));
        // The "sleeping" worker arrives late and must return instantly.
        assert_eq!(el.sleep_wait(1, &terminate), WakeReason::Signal);
        el.finish_sleep(1);
        assert_eq!(el.awake_workers(), 2);
    }

    #[test]
    fn sleep_wait_blocks_until_signalled_across_threads() {
        let el = Arc::new(ElasticState::new(cfg(), 2));
        let terminate = Arc::new(AtomicBool::new(false));
        assert!(el.try_begin_sleep(0));
        let sleeper = {
            let el = Arc::clone(&el);
            let terminate = Arc::clone(&terminate);
            std::thread::spawn(move || {
                let reason = el.sleep_wait(0, &terminate);
                el.finish_sleep(0);
                reason
            })
        };
        // Wait until the sleeper is visible, then wake it by load.
        while el.wake_one(WakeReason::Signal).is_none() {
            std::thread::yield_now();
        }
        assert_eq!(sleeper.join().unwrap(), WakeReason::Signal);
        assert_eq!(el.awake_workers(), 2);
        assert!(!el.is_sleeping(0));
    }

    #[test]
    fn shutdown_wakes_every_sleeper() {
        let el = Arc::new(ElasticState::new(cfg(), 3));
        let terminate = Arc::new(AtomicBool::new(false));
        let sleepers: Vec<_> = (0..2)
            .map(|w| {
                assert!(el.try_begin_sleep(w));
                let el = Arc::clone(&el);
                let terminate = Arc::clone(&terminate);
                std::thread::spawn(move || {
                    let reason = el.sleep_wait(w, &terminate);
                    el.finish_sleep(w);
                    reason
                })
            })
            .collect();
        terminate.store(true, Ordering::SeqCst);
        el.wake_all_for_shutdown();
        for s in sleepers {
            assert_eq!(s.join().unwrap(), WakeReason::Shutdown);
        }
        assert_eq!(el.awake_workers(), 3);
    }

    #[test]
    fn try_wake_for_load_respects_thresholds_and_cooldown() {
        let el = ElasticState::new(cfg(), 2);
        assert!(el.try_begin_sleep(1));
        let quiet = LoadSignal::default();
        let deep = LoadSignal {
            queue_depth: 50,
            ..LoadSignal::default()
        };
        assert_eq!(el.try_wake_for_load(quiet, 10_000), None);
        assert_eq!(el.try_wake_for_load(deep, 10_000), Some(1));
        el.finish_sleep(1);
        assert!(el.try_begin_sleep(1));
        // Immediately after: cooldown blocks the next wake.
        assert_eq!(el.try_wake_for_load(deep, 10_100), None);
        assert_eq!(el.try_wake_for_load(deep, 20_000), Some(1));
        el.finish_sleep(1);
        // Fully awake pools take the one-load fast path out.
        assert_eq!(el.try_wake_for_load(deep, 90_000), None);
    }

    #[test]
    fn rotation_is_periodic_and_optional() {
        let off = ElasticState::new(cfg(), 2);
        assert!(off.try_begin_sleep(1));
        assert_eq!(off.try_rotate(1_000_000), None, "rotation disabled");
        let el = ElasticState::new(
            ElasticConfig {
                rotation_period_ns: 1_000,
                ..cfg()
            },
            2,
        );
        assert!(el.try_begin_sleep(1));
        assert_eq!(el.try_rotate(2_000), Some(1));
        el.finish_sleep(1);
        assert!(el.try_begin_sleep(1));
        assert_eq!(el.try_rotate(2_500), None, "inside the rotation period");
        assert_eq!(el.try_rotate(3_000), Some(1));
    }

    #[test]
    fn lifecycle_states_round_trip() {
        let el = ElasticState::new(cfg(), 1);
        assert_eq!(el.worker_state(0), WorkerState::Stealing);
        el.set_state(0, WorkerState::Busy);
        assert_eq!(el.worker_state(0), WorkerState::Busy);
        el.set_state(0, WorkerState::Sleeping);
        assert_eq!(el.worker_state(0), WorkerState::Sleeping);
    }
}
