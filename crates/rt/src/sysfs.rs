//! Real-hardware bindings: Linux cpufreq sysfs DVFS and RAPL energy
//! counters.
//!
//! These drivers make the runtime deployable on actual Linux machines
//! (the paper's setting); in containers and CI they fail construction
//! gracefully and callers fall back to
//! [`EmulatedDvfs`](crate::EmulatedDvfs). The path-independent parsing
//! logic is unit-tested everywhere.

use crate::driver::{DriverError, FrequencyDriver};
use hermes_core::Frequency;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// DVFS driver writing Linux `cpufreq` operating points.
///
/// Worker `i` is mapped to the CPU id `cpus[i]`; frequency requests write
/// `scaling_setspeed` (requires the `userspace` governor and permissions
/// on `/sys/devices/system/cpu/cpu*/cpufreq`).
#[derive(Debug)]
pub struct SysfsCpufreqDriver {
    cpus: Vec<usize>,
    root: PathBuf,
    current_khz: Vec<AtomicU64>,
}

impl SysfsCpufreqDriver {
    /// Bind workers to the given CPU ids under the standard sysfs root.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] if any CPU's cpufreq directory is missing
    /// or its governor is not `userspace`.
    pub fn new(cpus: Vec<usize>) -> Result<Self, DriverError> {
        Self::with_root(cpus, Path::new("/sys/devices/system/cpu"))
    }

    /// Like [`new`](Self::new) with an explicit sysfs root (testable).
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn with_root(cpus: Vec<usize>, root: &Path) -> Result<Self, DriverError> {
        if cpus.is_empty() {
            return Err(DriverError::new("at least one cpu is required"));
        }
        for &cpu in &cpus {
            let gov_path = root.join(format!("cpu{cpu}/cpufreq/scaling_governor"));
            let governor = std::fs::read_to_string(&gov_path).map_err(|e| {
                DriverError::new(format!("cannot read {}: {e}", gov_path.display()))
            })?;
            if governor.trim() != "userspace" {
                return Err(DriverError::new(format!(
                    "cpu{cpu} governor is '{}', need 'userspace'",
                    governor.trim()
                )));
            }
        }
        let current_khz = cpus.iter().map(|_| AtomicU64::new(0)).collect();
        Ok(SysfsCpufreqDriver {
            cpus,
            root: root.to_path_buf(),
            current_khz,
        })
    }

    /// Frequencies advertised by `cpu` under `root`
    /// (`scaling_available_frequencies`), fastest first.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] if the file is missing or malformed.
    pub fn available_frequencies(root: &Path, cpu: usize) -> Result<Vec<Frequency>, DriverError> {
        let path = root.join(format!("cpu{cpu}/cpufreq/scaling_available_frequencies"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| DriverError::new(format!("cannot read {}: {e}", path.display())))?;
        parse_available_frequencies(&text)
    }
}

/// Parse a `scaling_available_frequencies` line (kHz values), returning
/// the table fastest-first.
///
/// # Errors
///
/// Returns [`DriverError`] if no parseable values are present.
pub fn parse_available_frequencies(text: &str) -> Result<Vec<Frequency>, DriverError> {
    let mut freqs: Vec<Frequency> = text
        .split_whitespace()
        .filter_map(|tok| tok.parse::<u64>().ok())
        .map(Frequency::from_khz)
        .collect();
    if freqs.is_empty() {
        return Err(DriverError::new("no frequencies listed"));
    }
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    freqs.dedup();
    Ok(freqs)
}

impl FrequencyDriver for SysfsCpufreqDriver {
    fn set_frequency(&self, worker: usize, freq: Frequency) -> Result<(), DriverError> {
        let cpu = *self
            .cpus
            .get(worker)
            .ok_or_else(|| DriverError::new(format!("worker {worker} out of range")))?;
        let path = self.root.join(format!("cpu{cpu}/cpufreq/scaling_setspeed"));
        std::fs::write(&path, format!("{}\n", freq.khz()))
            .map_err(|e| DriverError::new(format!("cannot write {}: {e}", path.display())))?;
        self.current_khz[worker].store(freq.khz(), Ordering::Relaxed);
        Ok(())
    }

    fn frequency(&self, worker: usize) -> Option<Frequency> {
        let khz = self.current_khz.get(worker)?.load(Ordering::Relaxed);
        (khz > 0).then(|| Frequency::from_khz(khz))
    }

    fn name(&self) -> &'static str {
        "sysfs-cpufreq"
    }
}

/// Reader of Intel/AMD RAPL package-energy counters
/// (`/sys/class/powercap/intel-rapl:*/energy_uj`).
#[derive(Debug)]
pub struct RaplProbe {
    counters: Vec<PathBuf>,
}

impl RaplProbe {
    /// Discover RAPL domains under the standard powercap root.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] if no readable RAPL domain exists (normal
    /// in containers; callers fall back to modelled energy).
    pub fn discover() -> Result<Self, DriverError> {
        Self::with_root(Path::new("/sys/class/powercap"))
    }

    /// Like [`discover`](Self::discover) with an explicit root (testable).
    ///
    /// # Errors
    ///
    /// Same conditions as [`discover`](Self::discover).
    pub fn with_root(root: &Path) -> Result<Self, DriverError> {
        let mut counters = Vec::new();
        let entries = std::fs::read_dir(root)
            .map_err(|e| DriverError::new(format!("cannot read {}: {e}", root.display())))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            // Top-level domains only (intel-rapl:0, not intel-rapl:0:0):
            // subdomain energy is already included in the package counter.
            if name.starts_with("intel-rapl:") && name.matches(':').count() == 1 {
                let path = entry.path().join("energy_uj");
                if path.exists() {
                    counters.push(path);
                }
            }
        }
        if counters.is_empty() {
            return Err(DriverError::new("no RAPL energy counters found"));
        }
        counters.sort();
        Ok(RaplProbe { counters })
    }

    /// Total package energy in joules since an arbitrary epoch; subtract
    /// two readings to measure an interval.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] if any counter fails to read or parse.
    pub fn read_joules(&self) -> Result<f64, DriverError> {
        let mut total_uj = 0u64;
        for path in &self.counters {
            let text = std::fs::read_to_string(path)
                .map_err(|e| DriverError::new(format!("cannot read {}: {e}", path.display())))?;
            total_uj += parse_energy_uj(&text)?;
        }
        Ok(total_uj as f64 / 1e6)
    }

    /// Number of RAPL domains found.
    #[must_use]
    pub fn domains(&self) -> usize {
        self.counters.len()
    }
}

/// Parse an `energy_uj` reading (microjoules).
///
/// # Errors
///
/// Returns [`DriverError`] on malformed content.
pub fn parse_energy_uj(text: &str) -> Result<u64, DriverError> {
    text.trim()
        .parse::<u64>()
        .map_err(|e| DriverError::new(format!("bad energy_uj value: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_frequency_table() {
        // AMD FX-8150 style table.
        let f = parse_available_frequencies("3600000 3300000 2700000 2100000 1400000\n").unwrap();
        assert_eq!(f.len(), 5);
        assert_eq!(f[0], Frequency::from_mhz(3600));
        assert_eq!(f[4], Frequency::from_mhz(1400));
    }

    #[test]
    fn frequency_table_sorts_and_dedups() {
        let f = parse_available_frequencies("1400000 3600000 1400000").unwrap();
        assert_eq!(
            f,
            vec![Frequency::from_mhz(3600), Frequency::from_mhz(1400)]
        );
    }

    #[test]
    fn rejects_empty_frequency_table() {
        assert!(parse_available_frequencies("\n").is_err());
        assert!(parse_available_frequencies("not numbers").is_err());
    }

    #[test]
    fn parses_energy_counter() {
        assert_eq!(parse_energy_uj("123456789\n").unwrap(), 123_456_789);
        assert!(parse_energy_uj("xyz").is_err());
    }

    #[test]
    fn sysfs_driver_via_fake_root() {
        let dir = std::env::temp_dir().join(format!("hermes-sysfs-{}", std::process::id()));
        let cpu0 = dir.join("cpu0/cpufreq");
        std::fs::create_dir_all(&cpu0).unwrap();
        std::fs::write(cpu0.join("scaling_governor"), "userspace\n").unwrap();
        std::fs::write(cpu0.join("scaling_setspeed"), "").unwrap();
        std::fs::write(
            cpu0.join("scaling_available_frequencies"),
            "2400000 1600000\n",
        )
        .unwrap();

        let driver = SysfsCpufreqDriver::with_root(vec![0], &dir).unwrap();
        driver.set_frequency(0, Frequency::from_mhz(1600)).unwrap();
        assert_eq!(driver.frequency(0), Some(Frequency::from_mhz(1600)));
        let written = std::fs::read_to_string(cpu0.join("scaling_setspeed")).unwrap();
        assert_eq!(written.trim(), "1600000");
        assert_eq!(
            SysfsCpufreqDriver::available_frequencies(&dir, 0).unwrap()[0],
            Frequency::from_mhz(2400)
        );
        assert!(driver.set_frequency(9, Frequency::from_mhz(1600)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sysfs_driver_requires_userspace_governor() {
        let dir = std::env::temp_dir().join(format!("hermes-sysfs-gov-{}", std::process::id()));
        let cpu0 = dir.join("cpu0/cpufreq");
        std::fs::create_dir_all(&cpu0).unwrap();
        std::fs::write(cpu0.join("scaling_governor"), "performance\n").unwrap();
        let err = SysfsCpufreqDriver::with_root(vec![0], &dir).unwrap_err();
        assert!(err.to_string().contains("userspace"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sysfs_driver_missing_cpu_errors() {
        let dir = std::env::temp_dir().join(format!("hermes-sysfs-miss-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(SysfsCpufreqDriver::with_root(vec![0], &dir).is_err());
        assert!(SysfsCpufreqDriver::with_root(vec![], &dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rapl_probe_via_fake_root() {
        let dir = std::env::temp_dir().join(format!("hermes-rapl-{}", std::process::id()));
        let d0 = dir.join("intel-rapl:0");
        let d1 = dir.join("intel-rapl:1");
        let sub = dir.join("intel-rapl:0:0"); // subdomain: ignored
        std::fs::create_dir_all(&d0).unwrap();
        std::fs::create_dir_all(&d1).unwrap();
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(d0.join("energy_uj"), "1000000\n").unwrap();
        std::fs::write(d1.join("energy_uj"), "2500000\n").unwrap();
        std::fs::write(sub.join("energy_uj"), "999\n").unwrap();

        let probe = RaplProbe::with_root(&dir).unwrap();
        assert_eq!(probe.domains(), 2);
        let joules = probe.read_joules().unwrap();
        assert!((joules - 3.5).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rapl_probe_missing_root_errors() {
        assert!(RaplProbe::with_root(Path::new("/definitely/not/here")).is_err());
    }
}
