//! Frequency drivers: how tempo decisions reach (real or emulated) DVFS.

use hermes_core::Frequency;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Error raised by a frequency driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverError {
    message: String,
}

impl DriverError {
    /// Create an error with the given description.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        DriverError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frequency driver error: {}", self.message)
    }
}

impl std::error::Error for DriverError {}

/// Applies per-worker frequency changes decided by the tempo controller.
///
/// Implementations:
/// * [`NullDriver`] — ignores changes (baseline runs).
/// * [`EmulatedDvfs`] — dilates task execution time and integrates a power
///   model, for machines without accessible DVFS (CI, containers).
/// * [`SysfsCpufreqDriver`](crate::SysfsCpufreqDriver) — writes real Linux
///   cpufreq operating points (requires root and the userspace governor).
pub trait FrequencyDriver: Send + Sync {
    /// Apply `freq` for worker `worker`.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] when actuation fails; the runtime logs the
    /// first failure and continues at the old frequency (tempo control is
    /// best-effort, never a correctness concern).
    fn set_frequency(&self, worker: usize, freq: Frequency) -> Result<(), DriverError>;

    /// Current frequency for `worker`, if the driver tracks one.
    fn frequency(&self, worker: usize) -> Option<Frequency>;

    /// Human-readable driver name for logs and reports.
    fn name(&self) -> &'static str;
}

/// Driver that ignores every request (the unmodified-runtime baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullDriver;

impl FrequencyDriver for NullDriver {
    fn set_frequency(&self, _worker: usize, _freq: Frequency) -> Result<(), DriverError> {
        Ok(())
    }

    fn frequency(&self, _worker: usize) -> Option<Frequency> {
        None
    }

    fn name(&self) -> &'static str {
        "null"
    }
}

/// Fraction of the fastest busy power a *parked* core draws under the
/// emulated power model: deep C-state residency is a few percent of
/// active power on the machines the paper measures. This is what makes
/// the serving ablation's parking axis visible in virtual energy — a
/// spinning idle worker burns `busy_watts(f)` (a spin loop executes at
/// full tilt at its core's current frequency), a parked one burns only
/// this fraction of `busy_watts_fast`.
pub const PARK_WATTS_FRACTION: f64 = 0.05;

/// Fraction of the fastest busy power an *elastically sleeping* core
/// draws. A parked worker re-arms a 1 ms re-check timeout, so its core
/// takes only shallow C-state residency between timer wakeups; an
/// elastic sleeper waits indefinitely on a signal with no timer armed,
/// which is what lets the package hold the deepest sleep state. The
/// order-of-magnitude gap below [`PARK_WATTS_FRACTION`] is the energy
/// headroom the worker-count axis adds over the frequency axis (see
/// DESIGN.md §Elastic).
pub const SLEEP_WATTS_FRACTION: f64 = 0.005;

/// What one accounting call charged: the constant-power slice the pool
/// turns into an [`Event::PowerInterval`](hermes_telemetry::Event) when
/// a sink is attached. `milliwatts × duration_ns` picojoules mirrors the
/// nanojoule meter charge to within milliwatt rounding, so summed
/// interval energy cross-checks [`EmulatedDvfs::total_energy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PowerCharge {
    /// Length of the charged slice, ns (virtual time for dilated task
    /// slices, real time for idle spin and park episodes).
    pub duration_ns: u64,
    /// Power billed over the slice, mW.
    pub milliwatts: u64,
}

/// Emulated DVFS by timing dilation.
///
/// Real DVFS makes a task take `f_max / f` times longer; the emulation
/// reproduces that wall-clock effect by busy-waiting for the extra time
/// after each task slice, and accounts virtual energy as
/// `P_busy(f) × dilated_time`. This keeps the *scheduling dynamics* (steal
/// opportunities, load imbalance) faithful on machines where frequencies
/// cannot actually be changed, and gives examples a concrete energy
/// number.
///
/// The emulation applies between tasks, not inside them, so completion
/// signals propagate marginally earlier than true DVFS would allow; the
/// discrete-event simulator (`hermes-sim`) is the measurement-grade
/// substrate.
#[derive(Debug)]
pub struct EmulatedDvfs {
    fastest: Frequency,
    freqs_khz: Vec<AtomicU64>,
    /// Virtual nanojoules consumed per worker.
    energy_nj: Vec<AtomicU64>,
    /// Wall-clock start of each worker's in-flight busy slice, ns since
    /// `epoch` ([`BUSY_IDLE`] when no slice is open). Lets
    /// [`worker_energy_nj`](Self::worker_energy_nj) price the open
    /// slice live, so a meter read from *inside* a task sees the energy
    /// that task has drawn so far rather than a value frozen at the
    /// last task boundary.
    busy_since_ns: Vec<AtomicU64>,
    epoch: std::time::Instant,
    /// Busy power at the fastest frequency, watts (simplified linear-V
    /// model embedded to avoid a dependency on `hermes-sim`).
    busy_watts_fast: f64,
}

/// `busy_since_ns` sentinel: no busy slice open on this worker.
const BUSY_IDLE: u64 = u64::MAX;

impl EmulatedDvfs {
    /// An emulator for `workers` workers whose hardware tops out at
    /// `fastest`, drawing `busy_watts_fast` watts per busy core there.
    #[must_use]
    pub fn new(workers: usize, fastest: Frequency, busy_watts_fast: f64) -> Self {
        EmulatedDvfs {
            fastest,
            freqs_khz: (0..workers)
                .map(|_| AtomicU64::new(fastest.khz()))
                .collect(),
            energy_nj: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            busy_since_ns: (0..workers).map(|_| AtomicU64::new(BUSY_IDLE)).collect(),
            epoch: std::time::Instant::now(),
            busy_watts_fast,
        }
    }

    /// Busy power at `freq` under a cubic-in-frequency scaling (the
    /// `V²·f` law with voltage roughly linear in frequency).
    #[must_use]
    pub fn busy_watts(&self, freq: Frequency) -> f64 {
        let r = freq.ratio_to(self.fastest);
        self.busy_watts_fast * r * r * r
    }

    /// The slowdown factor for `worker` (1.0 at the fastest frequency).
    #[must_use]
    pub fn dilation(&self, worker: usize) -> f64 {
        let khz = self.freqs_khz[worker].load(Ordering::Relaxed);
        self.fastest.khz() as f64 / khz as f64
    }

    /// Open a busy slice on `worker`: called by the pool just before a
    /// task body runs, so mid-task meter reads accrue live. Closed (and
    /// settled exactly, from the pool's own duration measurement) by
    /// [`account_and_dilate`](Self::account_and_dilate).
    pub(crate) fn begin_busy(&self, worker: usize) {
        self.busy_since_ns[worker].store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Account one executed task slice and perform the dilation spin.
    /// Called by the pool after each task execution; returns the busy
    /// slice charged (virtual duration at the current busy power).
    pub(crate) fn account_and_dilate(&self, worker: usize, real: Duration) -> PowerCharge {
        self.busy_since_ns[worker].store(BUSY_IDLE, Ordering::Relaxed);
        let khz = self.freqs_khz[worker].load(Ordering::Relaxed);
        let freq = Frequency::from_khz(khz);
        let dilation = self.fastest.khz() as f64 / khz as f64;
        let virtual_time = real.as_secs_f64() * dilation;
        let watts = self.busy_watts(freq);
        let nj = watts * virtual_time * 1e9;
        self.energy_nj[worker].fetch_add(nj as u64, Ordering::Relaxed);
        let extra = virtual_time - real.as_secs_f64();
        if extra > 0.0 {
            let deadline = std::time::Instant::now() + Duration::from_secs_f64(extra);
            while std::time::Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
        PowerCharge {
            duration_ns: (virtual_time * 1e9) as u64,
            milliwatts: (watts * 1e3).round() as u64,
        }
    }

    /// Account wall-clock time a worker spent *spinning idle* (failed
    /// pop/steal/injector sweeps plus yields): charged at the busy
    /// power of the worker's current frequency — a spin loop executes
    /// at full tilt — with no dilation, since idle time is real time,
    /// not dilated task time. Callers charge one short slice per idle
    /// iteration, so a tempo actuation landing mid-idle moves the
    /// billed power within one sweep+yield of the frequency change.
    /// This is the energy the tempo controller recovers by
    /// procrastinating thieves, and the parking subsystem recovers by
    /// not spinning at all.
    pub(crate) fn account_idle_spin(&self, worker: usize, real: Duration) -> PowerCharge {
        let khz = self.freqs_khz[worker].load(Ordering::Relaxed);
        let freq = Frequency::from_khz(khz);
        let watts = self.busy_watts(freq);
        let nj = watts * real.as_secs_f64() * 1e9;
        self.energy_nj[worker].fetch_add(nj as u64, Ordering::Relaxed);
        PowerCharge {
            duration_ns: real.as_nanos() as u64,
            milliwatts: (watts * 1e3).round() as u64,
        }
    }

    /// Account a completed park episode: charged at
    /// [`PARK_WATTS_FRACTION`] of the fastest busy power, independent
    /// of the core's DVFS operating point (a sleeping core's clock is
    /// gated either way).
    pub(crate) fn account_parked(&self, worker: usize, real: Duration) -> PowerCharge {
        self.account_fraction(worker, real, PARK_WATTS_FRACTION)
    }

    /// Account a completed elastic-sleep episode: like a park, but at
    /// the deeper [`SLEEP_WATTS_FRACTION`] — an indefinite signal wait
    /// arms no re-check timer, so the core reaches (and stays in) the
    /// deepest sleep state.
    pub(crate) fn account_slept(&self, worker: usize, real: Duration) -> PowerCharge {
        self.account_fraction(worker, real, SLEEP_WATTS_FRACTION)
    }

    fn account_fraction(&self, worker: usize, real: Duration, fraction: f64) -> PowerCharge {
        let watts = self.busy_watts_fast * fraction;
        let nj = watts * real.as_secs_f64() * 1e9;
        self.energy_nj[worker].fetch_add(nj as u64, Ordering::Relaxed);
        PowerCharge {
            duration_ns: real.as_nanos() as u64,
            milliwatts: (watts * 1e3).round() as u64,
        }
    }

    /// Virtual nanojoules charged to `worker` so far, *including* a
    /// live estimate for the busy slice currently open (a task mid-run
    /// has drawn power the settled counter won't see until the task
    /// boundary). Cheap enough for the serving layer to read before and
    /// after every poll episode when attributing energy to requests —
    /// the delta across a bracket is the energy the bracketed code
    /// drew. The estimate uses the same `watts × dilated-time` formula
    /// the settle does, so the running value flows continuously into
    /// the settled one.
    #[must_use]
    pub fn worker_energy_nj(&self, worker: usize) -> u64 {
        let settled = self.energy_nj[worker].load(Ordering::Relaxed);
        let since = self.busy_since_ns[worker].load(Ordering::Relaxed);
        if since == BUSY_IDLE {
            return settled;
        }
        let now = self.epoch.elapsed().as_nanos() as u64;
        let real = now.saturating_sub(since) as f64 / 1e9;
        let khz = self.freqs_khz[worker].load(Ordering::Relaxed);
        let dilation = self.fastest.khz() as f64 / khz as f64;
        let watts = self.busy_watts(Frequency::from_khz(khz));
        settled + (watts * real * dilation * 1e9) as u64
    }

    /// Virtual joules consumed so far, per worker.
    #[must_use]
    pub fn energy_by_worker(&self) -> Vec<f64> {
        self.energy_nj
            .iter()
            .map(|e| e.load(Ordering::Relaxed) as f64 / 1e9)
            .collect()
    }

    /// Total virtual joules consumed so far.
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.energy_by_worker().iter().sum()
    }
}

impl FrequencyDriver for EmulatedDvfs {
    fn set_frequency(&self, worker: usize, freq: Frequency) -> Result<(), DriverError> {
        let slot = self
            .freqs_khz
            .get(worker)
            .ok_or_else(|| DriverError::new(format!("worker {worker} out of range")))?;
        if freq.khz() == 0 {
            return Err(DriverError::new("zero frequency"));
        }
        slot.store(freq.khz(), Ordering::Relaxed);
        Ok(())
    }

    fn frequency(&self, worker: usize) -> Option<Frequency> {
        self.freqs_khz
            .get(worker)
            .map(|k| Frequency::from_khz(k.load(Ordering::Relaxed)))
    }

    fn name(&self) -> &'static str {
        "emulated-dvfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_driver_accepts_everything() {
        let d = NullDriver;
        assert!(d.set_frequency(3, Frequency::from_mhz(1600)).is_ok());
        assert_eq!(d.frequency(3), None);
        assert_eq!(d.name(), "null");
    }

    #[test]
    fn emulated_tracks_per_worker_frequency() {
        let d = EmulatedDvfs::new(2, Frequency::from_mhz(2400), 8.0);
        assert_eq!(d.frequency(0), Some(Frequency::from_mhz(2400)));
        d.set_frequency(0, Frequency::from_mhz(1600)).unwrap();
        assert_eq!(d.frequency(0), Some(Frequency::from_mhz(1600)));
        assert_eq!(d.frequency(1), Some(Frequency::from_mhz(2400)));
        assert!((d.dilation(0) - 1.5).abs() < 1e-12);
        assert!((d.dilation(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emulated_rejects_bad_requests() {
        let d = EmulatedDvfs::new(1, Frequency::from_mhz(2400), 8.0);
        assert!(d.set_frequency(5, Frequency::from_mhz(1600)).is_err());
        assert!(d.set_frequency(0, Frequency::from_khz(0)).is_err());
    }

    #[test]
    fn power_scales_cubically() {
        let d = EmulatedDvfs::new(1, Frequency::from_mhz(2400), 8.0);
        let half = d.busy_watts(Frequency::from_mhz(1200));
        assert!((half - 1.0).abs() < 1e-9, "8 W × (1/2)³ = 1 W, got {half}");
    }

    #[test]
    fn idle_spin_charges_current_frequency_power() {
        let d = EmulatedDvfs::new(1, Frequency::from_mhz(2400), 8.0);
        // Full tilt: 8 W × 10 ms = 80 mJ.
        d.account_idle_spin(0, Duration::from_millis(10));
        let fast = d.total_energy();
        assert!((fast - 0.080).abs() < 1e-6, "fast spin {fast} J");
        // Half frequency: 1 W × 10 ms = 10 mJ more.
        d.set_frequency(0, Frequency::from_mhz(1200)).unwrap();
        d.account_idle_spin(0, Duration::from_millis(10));
        let total = d.total_energy();
        assert!(
            (total - 0.090).abs() < 1e-6,
            "slow spin adds 10 mJ: {total} J"
        );
    }

    #[test]
    fn parked_time_charges_the_park_fraction() {
        let d = EmulatedDvfs::new(1, Frequency::from_mhz(2400), 8.0);
        d.account_parked(0, Duration::from_millis(100));
        let e = d.total_energy();
        // 8 W × 0.05 × 100 ms = 40 mJ.
        let expect = 8.0 * PARK_WATTS_FRACTION * 0.1;
        assert!((e - expect).abs() < 1e-6, "parked energy {e} J");
        // Parking must be far cheaper than spinning the same time.
        let spin = EmulatedDvfs::new(1, Frequency::from_mhz(2400), 8.0);
        spin.account_idle_spin(0, Duration::from_millis(100));
        assert!(e < spin.total_energy() / 10.0);
    }

    #[test]
    fn power_charges_mirror_the_nanojoule_meter() {
        let d = EmulatedDvfs::new(1, Frequency::from_mhz(2400), 8.0);
        let spin = d.account_idle_spin(0, Duration::from_millis(10));
        assert_eq!(spin.milliwatts, 8_000);
        assert_eq!(spin.duration_ns, 10_000_000);
        let parked = d.account_parked(0, Duration::from_millis(100));
        assert_eq!(parked.milliwatts, 400);
        assert_eq!(parked.duration_ns, 100_000_000);
        assert_eq!(d.worker_energy_nj(0), (d.total_energy() * 1e9) as u64);
        // The mW × ns picojoule products reproduce the meter to within
        // milliwatt rounding — the closure cross-check the energy
        // ledger relies on.
        let pj =
            (spin.milliwatts * spin.duration_ns + parked.milliwatts * parked.duration_ns) as f64;
        let rel = (pj / 1e12 - d.total_energy()).abs() / d.total_energy();
        assert!(rel < 1e-3, "relative interval-vs-meter error {rel}");
    }

    #[test]
    fn open_busy_slices_accrue_on_the_meter_live() {
        let d = EmulatedDvfs::new(1, Frequency::from_mhz(2400), 8.0);
        assert_eq!(d.worker_energy_nj(0), 0);
        d.begin_busy(0);
        std::thread::sleep(Duration::from_millis(5));
        let mid = d.worker_energy_nj(0);
        // 8 W × ≥5 ms ≥ 40 mJ: a mid-task read sees the draw so far.
        assert!(mid >= 40_000_000, "live estimate {mid} nJ");
        assert!(
            d.worker_energy_nj(0) >= mid,
            "the live meter never runs backwards within a slice"
        );
        // Settling replaces the estimate with the measured charge and
        // closes the slice: the meter is the settled value again.
        d.account_and_dilate(0, Duration::from_millis(10));
        let settled = d.worker_energy_nj(0);
        assert_eq!(settled, (d.total_energy() * 1e9) as u64);
        assert!(
            (settled as f64 - 80e6).abs() < 8e6,
            "8 W × 10 ms = 80 mJ, got {settled} nJ"
        );
    }

    #[test]
    fn accounting_accumulates_energy_and_dilates() {
        let d = EmulatedDvfs::new(1, Frequency::from_mhz(2400), 8.0);
        d.set_frequency(0, Frequency::from_mhz(1200)).unwrap();
        let before = std::time::Instant::now();
        d.account_and_dilate(0, Duration::from_millis(5));
        let spun = before.elapsed();
        // 2x dilation: ~5ms extra spin.
        assert!(spun >= Duration::from_millis(4), "spun only {spun:?}");
        let e = d.total_energy();
        // 1 W × 10 ms virtual = 10 mJ.
        assert!((e - 0.010).abs() < 0.002, "energy {e} J");
    }
}
