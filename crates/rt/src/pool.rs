//! The work-stealing thread pool with HERMES tempo control.

use crate::driver::{EmulatedDvfs, FrequencyDriver, NullDriver, PowerCharge};
use crate::elastic::{ElasticConfig, ElasticState, LoadSignal, SleepVerdict, WorkerState};
use crate::job::{HeapJob, JobRef, Priority, StackJob};
use crate::task::FutureTask;
use hermes_core::{
    Frequency, FrequencyActuator, Policy, TempoChange, TempoConfig, TempoController, TempoStats,
    WorkerId,
};
use hermes_deque::{ClassInjector, Lane, LockFreeDeque, Steal, TaskDeque, TheDeque};
use hermes_telemetry::{
    Event, MetricsHub, MetricsSnapshot, PowerKind, SpanPhase, StealOutcome, TelemetrySink,
    MACHINE_STREAM,
};
use hermes_topology::{CoreId, Topology, VictimPolicy, VictimSelector};
use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Idle-spin iterations before a worker parks, unless overridden by
/// [`PoolBuilder::spin_budget`]. Short enough that an idle worker stops
/// burning its core within microseconds, long enough that a worker
/// whose next task is one push away never touches the condvar.
const DEFAULT_SPIN_BUDGET: u32 = 16;

/// Default total capacity of the pool's sharded injection front door
/// (external submission queues); [`PoolBuilder::injector_capacity`]
/// overrides. The budget is divided evenly across the per-clock-domain
/// injector cells (per lane).
const DEFAULT_INJECTOR_CAPACITY: usize = 64 * 1024;

/// Options for class-aware submission ([`Pool::spawn_with`],
/// [`Pool::spawn_future_traced_with`]): the request class, an optional
/// deadline, and an optional injector-cell hint. `Default` is exactly
/// the legacy behaviour — normal class, no deadline, automatic cell
/// selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpawnOptions {
    /// Request class (default [`Priority::Normal`]); picks the drain
    /// lane inside the chosen injector cell.
    pub priority: Priority,
    /// Absolute deadline in pool-epoch nanoseconds, 0 = none. A
    /// deadline on normal-class work routes it into the deadline lane,
    /// which drains before plain normal work (but never before the
    /// high class).
    pub deadline_ns: u64,
    /// Preferred injector cell, as a topology clock-domain index
    /// (taken modulo the cell count). `None` picks the submitting
    /// worker's own cell for worker-originated submits and the
    /// least-loaded cell for external threads.
    pub domain_hint: Option<usize>,
}

impl SpawnOptions {
    /// Set the request class.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set an absolute deadline in pool-epoch nanoseconds (0 = none).
    #[must_use]
    pub fn deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = deadline_ns;
        self
    }

    /// Prefer the injector cell of the given topology clock domain.
    #[must_use]
    pub fn domain_hint(mut self, domain: usize) -> Self {
        self.domain_hint = Some(domain);
        self
    }
}

/// The drain lane a job's class maps to inside an injector cell.
fn lane_for(job: &JobRef) -> Lane {
    match job.priority() {
        Priority::High => Lane::High,
        Priority::Normal if job.deadline_ns() > 0 => Lane::Deadline,
        Priority::Normal => Lane::Normal,
        Priority::Background => Lane::Background,
    }
}

/// Injector-cell polling order for a worker placed on `core`: its own
/// clock domain's cell first, then every other cell in steal-distance
/// order (distance from `core` to the domain's first populated core;
/// domains no core belongs to sort last), ties broken by domain index
/// so the order is deterministic.
fn injector_cell_order(topology: &Topology, core: CoreId) -> Vec<usize> {
    let own = topology.domain_of(core);
    let mut order: Vec<usize> = (0..topology.domains()).collect();
    order.sort_by_key(|&d| {
        if d == own {
            (0u32, d)
        } else {
            let dist = topology
                .cores_in_domain(d)
                .first()
                .map_or(u32::MAX, |&rep| topology.distance(core, rep));
            // Same-core distance is 0 only within the own domain, which
            // is pinned first above; clamp so no foreign cell can tie it.
            (dist.max(1), d)
        }
    });
    order
}

/// Parked workers re-check for work at this interval even without a
/// wakeup — a safety net against (theoretical, see DESIGN.md §Serve)
/// lost notifies on weakly-ordered hardware, cheap enough (an O(workers)
/// scan per tick) to be invisible in both energy and latency.
const PARK_RECHECK: Duration = Duration::from_millis(1);

/// Refresh period of the windowed busy-share estimator feeding the
/// elastic scale controller — two cooldowns, so consecutive scale
/// decisions never act on the same stale sample.
const BUSY_WINDOW_NS: u64 = 4_000_000;

/// Which deque implementation the pool's workers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DequeKind {
    /// The paper's THE-protocol deque (locked steals).
    #[default]
    The,
    /// Atomics-only Chase–Lev deque (steals race on a CAS; no lock on
    /// any path); for the `sweep --ablate-deque` comparison.
    LockFree,
}

/// Scheduler counters of a running [`Pool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Tasks pushed onto worker deques.
    pub pushes: u64,
    /// Tasks popped by their owner.
    pub pops: u64,
    /// Successful steals.
    pub steals: u64,
    /// Steal attempts that found an empty deque (starvation).
    pub empty_steals: u64,
    /// Steal attempts that lost a race for present work to the owner or
    /// another thief (contention) — the signal the deque ablation needs
    /// to separate lock/CAS pressure from plain work shortage.
    pub lost_race_steals: u64,
    /// Tasks executed inline because a deque was full.
    pub inline_fallbacks: u64,
    /// Tasks taken from the external-submission injector.
    pub injector_pops: u64,
    /// Completed park episodes (a worker exhausted its spin budget and
    /// slept on the pool's condvar until work or termination).
    pub parks: u64,
    /// Total nanoseconds workers spent parked.
    pub parked_ns: u64,
    /// Completed elastic-sleep episodes (the pool scaled a worker out;
    /// see [`PoolBuilder::elastic`]). Unlike a park, a sleep ends only
    /// on an explicit wake signal, never on a timed re-check.
    pub sleeps: u64,
    /// Total nanoseconds workers spent in elastic sleep.
    pub slept_ns: u64,
    /// Elastic wake signals that ended a sleep episode (== `sleeps`
    /// once the pool is quiescent).
    pub wakes: u64,
    /// Future-task polls executed (each is one `Future::poll` of a task
    /// spawned via [`Pool::spawn_future`]).
    pub future_polls: u64,
    /// Future-task waker invocations, including no-op wakes of tasks
    /// that were already scheduled or complete.
    pub future_wakes: u64,
    /// Future tasks re-queued by a wake (idle → scheduled transitions;
    /// at most one per wake, at least one fewer than `future_polls`
    /// per task).
    pub future_repushes: u64,
}

impl RtStats {
    /// All unsuccessful steal attempts (empty + lost races).
    #[must_use]
    pub fn failed_steals(&self) -> u64 {
        self.empty_steals + self.lost_race_steals
    }
}

#[derive(Debug, Default)]
struct AtomicStats {
    pushes: AtomicU64,
    pops: AtomicU64,
    steals: AtomicU64,
    empty_steals: AtomicU64,
    lost_race_steals: AtomicU64,
    inline_fallbacks: AtomicU64,
    injector_pops: AtomicU64,
    parks: AtomicU64,
    parked_ns: AtomicU64,
    sleeps: AtomicU64,
    slept_ns: AtomicU64,
    wakes: AtomicU64,
    future_polls: AtomicU64,
    future_wakes: AtomicU64,
    future_repushes: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> RtStats {
        RtStats {
            pushes: self.pushes.load(Ordering::Relaxed),
            pops: self.pops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            empty_steals: self.empty_steals.load(Ordering::Relaxed),
            lost_race_steals: self.lost_race_steals.load(Ordering::Relaxed),
            inline_fallbacks: self.inline_fallbacks.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            parked_ns: self.parked_ns.load(Ordering::Relaxed),
            sleeps: self.sleeps.load(Ordering::Relaxed),
            slept_ns: self.slept_ns.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
            future_polls: self.future_polls.load(Ordering::Relaxed),
            future_wakes: self.future_wakes.load(Ordering::Relaxed),
            future_repushes: self.future_repushes.load(Ordering::Relaxed),
        }
    }
}

/// Builder for [`Pool`].
///
/// ```
/// use hermes_rt::Pool;
/// let pool = Pool::builder().workers(2).build();
/// let sum = pool.install(|| (1..=100).sum::<u32>());
/// assert_eq!(sum, 5050);
/// pool.shutdown();
/// ```
#[derive(Default)]
pub struct PoolBuilder {
    workers: Option<usize>,
    tempo: Option<TempoConfig>,
    deque: DequeKind,
    deque_capacity: Option<usize>,
    driver: Option<Arc<dyn FrequencyDriver>>,
    emulated: Option<(Frequency, f64)>,
    telemetry: Option<Arc<dyn TelemetrySink>>,
    topology: Option<Topology>,
    victim: VictimPolicy,
    spin_budget: Option<u32>,
    parking: Option<bool>,
    injector_capacity: Option<usize>,
    elastic: Option<ElasticConfig>,
}

impl std::fmt::Debug for PoolBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolBuilder")
            .field("workers", &self.workers)
            .field("deque", &self.deque)
            .field("victim", &self.victim)
            .finish()
    }
}

impl PoolBuilder {
    /// Number of worker threads (default: available parallelism).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Tempo-control configuration; its worker count must match the
    /// pool's. Defaults to the baseline policy (no tempo control).
    #[must_use]
    pub fn tempo(mut self, config: TempoConfig) -> Self {
        self.tempo = Some(config);
        self
    }

    /// Deque implementation (default: [`DequeKind::The`]).
    #[must_use]
    pub fn deque(mut self, kind: DequeKind) -> Self {
        self.deque = kind;
        self
    }

    /// Per-worker deque capacity (default 8192).
    #[must_use]
    pub fn deque_capacity(mut self, cap: usize) -> Self {
        self.deque_capacity = Some(cap);
        self
    }

    /// Use a custom frequency driver.
    #[must_use]
    pub fn driver(mut self, driver: Arc<dyn FrequencyDriver>) -> Self {
        self.driver = Some(driver);
        self
    }

    /// Use [`EmulatedDvfs`]: timing dilation plus a `busy_watts_fast`-watt
    /// power model anchored at `fastest`.
    #[must_use]
    pub fn emulated_dvfs(mut self, fastest: Frequency, busy_watts_fast: f64) -> Self {
        self.emulated = Some((fastest, busy_watts_fast));
        self
    }

    /// Attach a telemetry sink (e.g. [`hermes_telemetry::RingSink`]).
    ///
    /// The pool then emits steal attempts (with per-victim outcome),
    /// tempo transitions, and DVFS actuations as they happen; energy
    /// totals are emitted by [`Pool::flush_energy_telemetry`]. Without a
    /// sink the event paths are skipped entirely (not even a timestamp
    /// is read), so the default costs nothing.
    #[must_use]
    pub fn telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Describe the machine the pool runs on (default:
    /// [`Topology::flat`], where every worker is its own clock domain in
    /// one package). Workers are placed on distinct clock domains when
    /// the topology has enough of them — the paper's placement — and
    /// densely over cores `0..workers` otherwise.
    ///
    /// Combine with [`victim_policy`](Self::victim_policy): the topology
    /// defines steal distances, the policy decides how they bias victim
    /// selection. Use [`hermes_topology::discover`] to describe the real
    /// host.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Victim-selection policy for the steal path (default
    /// [`VictimPolicy::UniformRandom`], the classic random ring sweep).
    #[must_use]
    pub fn victim_policy(mut self, victim: VictimPolicy) -> Self {
        self.victim = victim;
        self
    }

    /// Idle-spin iterations (yielding sweeps over pop → injector →
    /// steal) a worker performs before parking (default 16, the
    /// previously hard-wired constant). Larger budgets trade idle
    /// energy for wakeup latency; `0` parks on the first empty sweep.
    /// Ignored when [`parking`](Self::parking) is disabled — the worker
    /// then spins indefinitely.
    #[must_use]
    pub fn spin_budget(mut self, budget: u32) -> Self {
        self.spin_budget = Some(budget);
        self
    }

    /// Enable or disable worker parking (default: enabled). With
    /// parking off, idle workers yield-spin until work appears — the
    /// paper's original idle behaviour, kept as the energy-hungry arm
    /// of the `sweep --serve` ablation.
    #[must_use]
    pub fn parking(mut self, on: bool) -> Self {
        self.parking = Some(on);
        self
    }

    /// Enable elastic worker-count scaling (default: off).
    ///
    /// With a policy attached, an idle worker that exhausts its spin
    /// budget consults the embedded
    /// [`ScaleController`](crate::ScaleController) before blocking:
    /// when the load signals (injector depth, failed-steal evidence,
    /// busy-share) sit under the sleep thresholds and the cooldown
    /// allows it, the worker *sleeps* — an indefinite wait on its own
    /// wake channel, ended only by a load signal, a sentinel rotation,
    /// or shutdown — instead of parking on the 1 ms re-check condvar.
    /// At least [`ElasticConfig::min_awake`] workers never take that
    /// indefinite sleep (the sentinel invariant — the sentinel keeps
    /// spinning/stealing, or parks on the shallow 1 ms re-check condvar
    /// where producer notifies still reach it), and a sleeping worker's
    /// deque stays stealable while the injector cells stay drainable,
    /// so no work is ever stranded. Sleeping time is accounted at
    /// [`crate::SLEEP_WATTS_FRACTION`] — deeper than park watts, since
    /// no re-check timer is armed — and the core is pinned at its
    /// slowest frequency for the duration (the tempo `on_park` hook —
    /// see DESIGN.md §Elastic for the precedence rule between the two
    /// levers). Without this call the subsystem is entirely absent:
    /// closed-model runs and the `sweep --smoke` figures are
    /// byte-identical to a pre-elastic pool.
    #[must_use]
    pub fn elastic(mut self, cfg: ElasticConfig) -> Self {
        self.elastic = Some(cfg);
        self
    }

    /// Total capacity budget of the external-submission front door
    /// (default 65536), divided evenly across the per-clock-domain
    /// injector cells and rounded up to a power of two per lane.
    /// Producers pushing into a full cell back off and retry, so this
    /// bounds memory, not correctness.
    #[must_use]
    pub fn injector_capacity(mut self, capacity: usize) -> Self {
        self.injector_capacity = Some(capacity);
        self
    }

    /// Build and start the pool.
    ///
    /// # Panics
    ///
    /// Panics if the tempo configuration's worker count disagrees with the
    /// pool's worker count, if the topology has fewer cores than the pool
    /// has workers, or if a worker thread cannot be spawned.
    #[must_use]
    pub fn build(self) -> Pool {
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, usize::from));
        let tempo = self.tempo.unwrap_or_else(|| {
            TempoConfig::builder()
                .policy(Policy::Baseline)
                .frequencies(vec![Frequency::from_mhz(1000)])
                .workers(workers)
                .build()
        });
        assert_eq!(
            tempo.num_workers, workers,
            "tempo config is for {} workers but the pool has {}",
            tempo.num_workers, workers
        );
        let emu = self
            .emulated
            .map(|(fastest, watts)| Arc::new(EmulatedDvfs::new(workers, fastest, watts)));
        let driver: Arc<dyn FrequencyDriver> = match (&self.driver, &emu) {
            (Some(d), _) => Arc::clone(d),
            (None, Some(e)) => Arc::clone(e) as Arc<dyn FrequencyDriver>,
            (None, None) => Arc::new(NullDriver),
        };
        let cap = self.deque_capacity.unwrap_or(8192);
        let deques: Vec<Arc<dyn TaskDeque<JobRef>>> = (0..workers)
            .map(|_| match self.deque {
                DequeKind::The => {
                    Arc::new(TheDeque::with_capacity(cap)) as Arc<dyn TaskDeque<JobRef>>
                }
                DequeKind::LockFree => {
                    Arc::new(LockFreeDeque::with_capacity(cap)) as Arc<dyn TaskDeque<JobRef>>
                }
            })
            .collect();

        // Place workers on the topology (distinct clock domains when
        // possible, the paper's protocol) and instantiate the victim
        // selector over the resulting steal-distance matrix.
        let topology = self.topology.unwrap_or_else(|| Topology::flat(workers));
        if let Err(e) = topology.validate() {
            panic!("invalid pool topology: {e}");
        }
        assert!(
            topology.cores() >= workers,
            "topology has {} cores but the pool has {workers} workers",
            topology.cores()
        );
        // Gate on *populated* domains, not the declared domain count: a
        // hand-built topology may declare domains no core belongs to.
        let distinct = topology.distinct_domain_cores();
        let placement: Vec<CoreId> = if distinct.len() >= workers {
            distinct[..workers].to_vec()
        } else {
            (0..workers).map(CoreId).collect()
        };
        let distances = topology.worker_distances(&placement);
        let selector = self.victim.selector(&distances);

        // Shard the front door: one class-aware injector cell per
        // topology clock domain, the configured capacity split evenly
        // across them. Each worker knows its home cell (its core's
        // domain) and a full polling order over the others, nearest
        // first — computed once here so the worker loop's fallback is
        // a plain indexed walk.
        let domains = topology.domains();
        let cell_capacity = self
            .injector_capacity
            .unwrap_or(DEFAULT_INJECTOR_CAPACITY)
            .div_ceil(domains)
            .max(2);
        let cells: Vec<ClassInjector<JobRef>> = (0..domains)
            .map(|_| ClassInjector::with_capacity(cell_capacity))
            .collect();
        let worker_cell: Vec<usize> = placement.iter().map(|&c| topology.domain_of(c)).collect();
        let cell_order: Vec<Vec<usize>> = placement
            .iter()
            .map(|&core| injector_cell_order(&topology, core))
            .collect();
        let cell_pops: Vec<AtomicU64> = (0..domains).map(|_| AtomicU64::new(0)).collect();

        let profile_period_ns = tempo.profiler.period_ns;
        // A NullSink is equivalent to no sink: drop it here so the event
        // paths (timestamps, controller tracing) stay fully dormant.
        let telemetry = self.telemetry.filter(|s| !s.is_null());
        let mut controller = TempoController::new(tempo);
        if telemetry.is_some() {
            controller.set_tracing(true);
        }
        // The live-metrics hub exists only alongside a real sink, so the
        // null path never reads a clock or publishes a counter for it.
        let metrics = telemetry
            .is_some()
            .then(|| Arc::new(MetricsHub::new(workers)));
        let inner = Arc::new(PoolInner {
            deques,
            cells,
            worker_cell,
            cell_order,
            cell_pops,
            controller: Mutex::new(controller),
            driver,
            emu,
            terminate: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cond: Condvar::new(),
            parked_workers: AtomicUsize::new(0),
            spin_budget: self.spin_budget.unwrap_or(DEFAULT_SPIN_BUDGET),
            parking: self.parking.unwrap_or(true),
            elastic: self.elastic.map(|cfg| ElasticState::new(cfg, workers)),
            stats: AtomicStats::default(),
            busy_window_at_ns: AtomicU64::new(0),
            busy_window_busy_ns: AtomicU64::new(0),
            busy_window_permille: AtomicU64::new(0),
            epoch: Instant::now(),
            last_profile_ns: AtomicU64::new(0),
            profile_period_ns,
            sink: telemetry,
            metrics,
            selector,
            distances,
        });

        // Bootstrap tempo: everyone at the fastest frequency.
        {
            let mut ctl = inner.controller.lock();
            let mut act = DriverActuator {
                driver: inner.driver.as_ref(),
                sink: inner.sink.as_deref(),
                epoch: &inner.epoch,
            };
            ctl.initialize(&mut act);
        }

        let handles = (0..workers)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("hermes-worker-{index}"))
                    // Generous stacks: the join resolution loop executes
                    // other tasks while waiting (leapfrogging), so worker
                    // stacks nest several task recursions, like Cilk's
                    // cactus-stack workers.
                    .stack_size(8 << 20)
                    .spawn(move || worker_main(&inner, index))
                    .expect("failed to spawn worker thread")
            })
            .collect();

        Pool {
            inner,
            handles: Some(handles),
        }
    }
}

/// A HERMES work-stealing thread pool.
///
/// Tasks enter through [`install`](Pool::install) (blocking) or
/// [`spawn`](Pool::spawn) (fire-and-forget); inside the pool, use
/// [`join`](crate::join) and [`parallel_for`](crate::parallel_for) for
/// fork-join parallelism. Tempo control runs transparently underneath
/// according to the configured [`TempoConfig`].
pub struct Pool {
    inner: Arc<PoolInner>,
    handles: Option<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.inner.deques.len())
            .field("driver", &self.inner.driver.name())
            .finish()
    }
}

impl Pool {
    /// Start configuring a pool.
    #[must_use]
    pub fn builder() -> PoolBuilder {
        PoolBuilder::default()
    }

    /// A pool with default settings (baseline policy).
    #[must_use]
    pub fn new(workers: usize) -> Pool {
        Pool::builder().workers(workers).build()
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.deques.len()
    }

    /// Run `f` inside the pool, blocking until it completes.
    ///
    /// If called from a worker of this pool, runs `f` directly.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some((pool, _)) = current_worker() {
            if Arc::ptr_eq(&pool, &self.inner) {
                return f();
            }
        }
        let job = StackJob::new(f);
        // SAFETY: we block on the latch below, so the stack frame outlives
        // the job; the injected ref is executed exactly once.
        let job_ref = unsafe { job.as_job_ref() };
        self.inner.inject(job_ref);
        job.latch.wait();
        // SAFETY: latch set implies the result was written.
        unsafe { job.take_result() }
    }

    /// Fire-and-forget a `'static` task into the pool (normal class,
    /// automatic cell selection — [`SpawnOptions::default`]).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.spawn_with(f, SpawnOptions::default());
    }

    /// [`spawn`](Self::spawn) with a request class, optional deadline,
    /// and optional injector-cell hint (see [`SpawnOptions`]). The
    /// class picks the drain lane inside the chosen cell — high before
    /// deadline-bearing before normal before background — and the hint
    /// (or, absent one, least-loaded/nearest selection) picks the cell.
    pub fn spawn_with<F>(&self, f: F, opts: SpawnOptions)
    where
        F: FnOnce() + Send + 'static,
    {
        let job = HeapJob::new(Box::new(f))
            .into_job_ref()
            .with_class(opts.priority, opts.deadline_ns);
        self.inner.inject_hinted(job, opts.domain_hint);
    }

    /// Spawn a future onto the pool, fire-and-forget.
    ///
    /// The future is polled on a worker thread; between polls it costs
    /// nothing — no worker is pinned waiting on it. Its waker re-queues
    /// the task onto the waking worker's own deque (when woken from
    /// inside this pool) or through the external-submission injector,
    /// and both paths drive the parked-worker handshake, so a wake
    /// aimed at a fully parked pool always restarts a worker
    /// (DESIGN.md §Async).
    ///
    /// Completion signalling is the future's own business — resolve a
    /// [`WakerLatch`](crate::WakerLatch), a serving ticket, a channel.
    /// A future that panics is dropped at the offending poll and the
    /// panic resumes on the worker thread, like a panicking
    /// [`spawn`](Self::spawn) closure; callers needing isolation catch
    /// panics inside the future (the serving layer does).
    pub fn spawn_future<F>(&self, future: F)
    where
        F: std::future::Future<Output = ()> + Send + 'static,
    {
        FutureTask::spawn(&self.inner, future, 0, SpawnOptions::default());
    }

    /// [`spawn_future`](Self::spawn_future) with a causal-span id.
    ///
    /// When a telemetry sink is attached, every lifecycle edge of the
    /// task — queued, polled, parked between polls, woken, re-queued —
    /// is recorded as [`Event::SpanBegin`]/[`Event::SpanEnd`] pairs
    /// carrying `span`, so the request's full journey (including
    /// cross-worker wake→re-push hops) can be stitched back together
    /// from the event stream. `span` must be nonzero (0 means untraced,
    /// the `spawn_future` default); ids wider than 56 bits are clamped
    /// by the event encoding. Without a sink this is identical to
    /// `spawn_future`.
    pub fn spawn_future_traced<F>(&self, future: F, span: u64)
    where
        F: std::future::Future<Output = ()> + Send + 'static,
    {
        FutureTask::spawn(&self.inner, future, span, SpawnOptions::default());
    }

    /// [`spawn_future_traced`](Self::spawn_future_traced) with a
    /// request class, optional deadline, and optional injector-cell
    /// hint (see [`SpawnOptions`]). The task keeps its class across
    /// waker re-queues: every re-push lands in the same drain lane the
    /// original submission used.
    pub fn spawn_future_traced_with<F>(&self, future: F, span: u64, opts: SpawnOptions)
    where
        F: std::future::Future<Output = ()> + Send + 'static,
    {
        FutureTask::spawn(&self.inner, future, span, opts);
    }

    /// Controller statistics so far.
    #[must_use]
    pub fn tempo_stats(&self) -> TempoStats {
        self.inner.controller.lock().stats()
    }

    /// Scheduler counters so far.
    #[must_use]
    pub fn stats(&self) -> RtStats {
        self.inner.stats.snapshot()
    }

    /// Number of injector cells the front door is sharded into — one
    /// per clock domain of the pool's topology.
    #[must_use]
    pub fn injector_cells(&self) -> usize {
        self.inner.cells.len()
    }

    /// Per-cell injector pop counters, indexed by clock domain. Their
    /// sum is exactly [`RtStats::injector_pops`] (both counters are
    /// bumped at the same site), which is the merged-view back-compat
    /// contract for pre-sharding consumers.
    #[must_use]
    pub fn injector_cell_pops(&self) -> Vec<u64> {
        self.inner
            .cell_pops
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Current per-cell injector depths, indexed by clock domain (racy
    /// by nature, like any queue length read under concurrency).
    #[must_use]
    pub fn injector_cell_depths(&self) -> Vec<usize> {
        self.inner.cells.iter().map(ClassInjector::len).collect()
    }

    /// A live [`MetricsSnapshot`] — per-worker busy/steal/park time and
    /// task counts (seqlock-published by the workers), plus the current
    /// injector depth — without quiescing the pool. `None` unless a
    /// telemetry sink is attached (the hub only exists alongside one;
    /// see DESIGN.md §Observability). Serving layers wrap this and fill
    /// in the request-level fields (`in_flight`, latency quantiles).
    #[must_use]
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        let hub = self.inner.metrics.as_ref()?;
        let mut workers = hub.sample();
        // The hub publishes scheduler counters only; the energy model
        // lives pool-side, so fill the per-worker joule column here.
        if let Some(emu) = self.inner.emu.as_ref() {
            for (sample, joules) in workers.iter_mut().zip(emu.energy_by_worker()) {
                sample.energy_uj = (joules * 1e6) as u64;
            }
        }
        Some(MetricsSnapshot {
            at_ns: self.elapsed_ns(),
            workers,
            injector_depth: self.inner.cells.iter().map(ClassInjector::len).sum(),
            injector_cell_depths: self.inner.cells.iter().map(ClassInjector::len).collect(),
            in_flight: 0,
            active_workers: self.active_workers(),
            latency_p50_ns: None,
            latency_p99_ns: None,
            energy_p50_uj: None,
            energy_p99_uj: None,
            dropped_events: self
                .inner
                .sink
                .as_deref()
                .map_or(0, TelemetrySink::dropped_events),
        })
    }

    /// Workers currently awake — the full worker count minus those
    /// inside an elastic-sleep bracket; simply the full count when
    /// elastic scaling is off (see [`PoolBuilder::elastic`]).
    #[must_use]
    pub fn active_workers(&self) -> usize {
        self.inner
            .elastic
            .as_ref()
            .map_or(self.workers(), ElasticState::awake_workers)
    }

    /// Per-worker elastic lifecycle states (Busy / Stealing /
    /// Sleeping), `None` when elastic scaling is off. Racy by nature,
    /// like any live state read under concurrency.
    #[must_use]
    pub fn worker_states(&self) -> Option<Vec<WorkerState>> {
        self.inner
            .elastic
            .as_ref()
            .map(|el| (0..self.workers()).map(|w| el.worker_state(w)).collect())
    }

    /// Virtual energy consumed per worker, if the pool runs emulated DVFS.
    #[must_use]
    pub fn energy_by_worker(&self) -> Option<Vec<f64>> {
        self.inner.emu.as_ref().map(|e| e.energy_by_worker())
    }

    /// Total virtual energy, if the pool runs emulated DVFS.
    #[must_use]
    pub fn total_energy(&self) -> Option<f64> {
        self.inner.emu.as_ref().map(|e| e.total_energy())
    }

    /// Emit one [`Event::EnergySample`] per worker carrying its emulated
    /// energy total so far. Call once, after the measured region and
    /// before folding the sink into a
    /// [`RunReport`](hermes_telemetry::RunReport); sinks accumulate
    /// samples, so calling this repeatedly would double-count. No-op
    /// without a telemetry sink or without emulated DVFS.
    pub fn flush_energy_telemetry(&self) {
        if let (Some(sink), Some(emu)) = (self.inner.sink.as_deref(), self.inner.emu.as_ref()) {
            let at_ns = self.inner.epoch.elapsed().as_nanos() as u64;
            for (w, &joules) in emu.energy_by_worker().iter().enumerate() {
                // Split rather than clamp: a single sample saturates at
                // the 60-bit payload (~1.15e6 J), and the total must
                // survive the fold exactly for the closure cross-check.
                for ev in Event::energy_samples_from_joules(joules) {
                    sink.record(w, at_ns, ev);
                }
            }
        }
    }

    /// Emulated energy consumed so far by the worker running the
    /// calling thread, in nanojoules — `None` off-pool or without
    /// emulated DVFS. One relaxed atomic load: cheap enough to bracket
    /// every future poll, which is how the serving layer attributes
    /// joules to individual requests (the delta across a poll is energy
    /// this worker spent inside that request's span).
    #[must_use]
    pub fn current_worker_energy_nj(&self) -> Option<u64> {
        let emu = self.inner.emu.as_ref()?;
        let (inner, index) = current_worker()?;
        if !Arc::ptr_eq(&inner, &self.inner) {
            return None;
        }
        Some(emu.worker_energy_nj(index))
    }

    /// Nanoseconds since the pool started — the timestamp base of every
    /// event this pool records.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// The active frequency driver's name.
    #[must_use]
    pub fn driver_name(&self) -> &'static str {
        self.inner.driver.name()
    }

    /// The active victim-selection policy's name.
    #[must_use]
    pub fn victim_policy_name(&self) -> &'static str {
        self.inner.selector.name()
    }

    /// The worker-to-worker steal-distance matrix induced by the pool's
    /// topology and placement — feed it to
    /// [`RunReport::with_steal_distances`](hermes_telemetry::RunReport::with_steal_distances)
    /// to bucket this pool's steal matrix by distance.
    #[must_use]
    pub fn worker_distances(&self) -> Vec<Vec<u32>> {
        self.inner.distances.clone()
    }

    /// Stop the workers and join their threads.
    ///
    /// Dropping the pool does the same; this explicit form exists so
    /// teardown is visible and non-blocking destructors stay achievable
    /// for callers who care.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Stop and join the workers but keep the pool object alive for
    /// post-run inspection. After this returns no worker is running, so
    /// [`stats`](Self::stats), energy totals, and any attached telemetry
    /// sink are frozen — the way to get exact (not racy-by-a-sweep)
    /// agreement between counters and a folded
    /// [`RunReport`](hermes_telemetry::RunReport), since idle workers
    /// otherwise keep recording empty steal sweeps. Terminal: tasks
    /// submitted afterwards will never run.
    pub fn stop(&mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.terminate.store(true, Ordering::SeqCst);
        // Lock bridge (see PoolInner::notify_parked): a worker between
        // its pre-park terminate check and its wait either sees the
        // store above or receives this notify.
        drop(self.inner.sleep_lock.lock());
        self.inner.sleep_cond.notify_all();
        // Elastic sleepers wait indefinitely on their own channels:
        // deliver the shutdown wake there too (the terminate re-check
        // inside `sleep_wait` covers workers still transitioning).
        if let Some(el) = self.inner.elastic.as_ref() {
            el.wake_all_for_shutdown();
        }
        if let Some(handles) = self.handles.take() {
            for h in handles {
                let _ = h.join();
            }
        }
        // With the workers gone, anything still queued will never run —
        // the documented `stop()` contract. Release it so heap closures
        // and future tasks are freed rather than leaked (stack jobs
        // release to a no-op; their owning frames hold the payload).
        // This also catches tasks injected between `stop()` and drop:
        // both calls drain, and the queues are empty the second time.
        for cell in &self.inner.cells {
            while let Some(job) = cell.pop() {
                // SAFETY: the injector hands each job to exactly one
                // popper, and a released job is never executed.
                unsafe { job.release() };
            }
        }
        for dq in &self.inner.deques {
            // Drain via `steal`, not `pop`: this thread is not the
            // deque's owner, and `steal` is the one entry point a
            // foreign thread may use.
            loop {
                match dq.steal() {
                    Steal::Success { task, .. } => {
                        // SAFETY: a successful steal transfers sole
                        // ownership of the job to this thread.
                        unsafe { task.release() };
                    }
                    Steal::Empty => break,
                    Steal::Retry => std::hint::spin_loop(),
                }
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

// ---------------------------------------------------------------------

pub(crate) struct PoolInner {
    deques: Vec<Arc<dyn TaskDeque<JobRef>>>,
    /// Sharded external-submission front door: one class-aware injector
    /// cell (lock-free bounded MPMC per lane) per topology clock
    /// domain. `install`, `spawn`, and the serving layer push here;
    /// workers poll their own domain's cell between the local pop and
    /// the steal sweep, falling back cross-domain in steal-distance
    /// order.
    cells: Vec<ClassInjector<JobRef>>,
    /// Each worker's home cell: the clock domain its placed core
    /// belongs to.
    worker_cell: Vec<usize>,
    /// Per-worker cell polling order (own cell first, then by steal
    /// distance; see `injector_cell_order`).
    cell_order: Vec<Vec<usize>>,
    /// Per-cell pop counters. Every pop increments its cell's counter
    /// and the merged `stats.injector_pops` at the same site, so the
    /// per-cell view reconciles exactly with the legacy merged counter.
    cell_pops: Vec<AtomicU64>,
    controller: Mutex<TempoController>,
    driver: Arc<dyn FrequencyDriver>,
    emu: Option<Arc<EmulatedDvfs>>,
    terminate: AtomicBool,
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
    /// Workers currently inside a park episode. Producers skip the
    /// notify path entirely while this is zero (the common saturated
    /// case); see `notify_parked` for the lost-wakeup argument.
    parked_workers: AtomicUsize,
    /// Idle-spin iterations before parking (see
    /// [`PoolBuilder::spin_budget`]).
    spin_budget: u32,
    /// Whether idle workers park at all (see [`PoolBuilder::parking`]).
    parking: bool,
    /// Elastic worker-count scaling state; `None` (the default) keeps
    /// the subsystem entirely absent (see [`PoolBuilder::elastic`]).
    elastic: Option<ElasticState>,
    stats: AtomicStats,
    /// Windowed busy-share estimator backing the elastic load signal:
    /// the epoch-ns of the last refresh, the total busy-ns sampled at
    /// it, and the permille it yielded (served until the window rolls).
    busy_window_at_ns: AtomicU64,
    busy_window_busy_ns: AtomicU64,
    busy_window_permille: AtomicU64,
    /// Pool start time and nanoseconds of the last profiler tick since
    /// then; any worker on the steal path advances it.
    epoch: Instant,
    last_profile_ns: AtomicU64,
    profile_period_ns: u64,
    /// Telemetry destination; `None` keeps every event path dormant.
    sink: Option<Arc<dyn TelemetrySink>>,
    /// Live-metrics hub (seqlock-published per-worker counters); exists
    /// exactly when `sink` does, so the null path publishes nothing.
    metrics: Option<Arc<MetricsHub>>,
    /// Victim-selection policy instantiated for this pool's placement.
    selector: Box<dyn VictimSelector>,
    /// Worker-to-worker steal distances under the configured topology.
    distances: Vec<Vec<u32>>,
}

/// Forwards controller actuations to the frequency driver; failures are
/// ignored after the first (tempo control is best-effort). When a
/// telemetry sink is attached, every actuation is also recorded on the
/// target worker's stream.
struct DriverActuator<'a> {
    driver: &'a dyn FrequencyDriver,
    sink: Option<&'a dyn TelemetrySink>,
    epoch: &'a Instant,
}

impl FrequencyActuator for DriverActuator<'_> {
    fn apply(&mut self, change: TempoChange) {
        let _ = self.driver.set_frequency(change.worker.0, change.frequency);
        if let Some(sink) = self.sink {
            sink.record(
                change.worker.0,
                self.epoch.elapsed().as_nanos() as u64,
                Event::DvfsActuation {
                    freq_khz: change.frequency.khz(),
                },
            );
        }
    }
}

impl PoolInner {
    pub(crate) fn inject(self: &Arc<Self>, job: JobRef) {
        self.inject_hinted(job, None);
    }

    /// Route `job` into an injector cell and lane. The lane comes from
    /// the job's class; the cell is the hinted clock domain's when
    /// `domain_hint` is given (modulo the cell count), the submitting
    /// worker's own (nearest) cell for worker-originated submits, and
    /// the least-loaded cell for external threads.
    pub(crate) fn inject_hinted(self: &Arc<Self>, job: JobRef, domain_hint: Option<usize>) {
        // A terminated pool never runs submitted tasks (the documented
        // `stop()` contract): free the job now rather than queueing it
        // until drop. (A terminate racing in after this check just means
        // the job waits in the ring for the drop-time drain.)
        if self.terminate.load(Ordering::SeqCst) {
            // SAFETY: we hold the sole ref; released jobs never execute.
            unsafe { job.release() };
            return;
        }
        let lane = lane_for(&job);
        let cell = match domain_hint {
            Some(d) => d % self.cells.len(),
            None => match current_worker() {
                Some((pool, w)) if Arc::ptr_eq(&pool, self) => self.worker_cell[w],
                _ => self.least_loaded_cell(),
            },
        };
        // The cells are bounded: on overflow, back off and retry.
        // Workers drain every cell on every idle sweep, so space frees
        // as long as the pool is alive; this is backpressure on the
        // producer, by design (an unbounded queue under open-loop
        // overload grows without limit and hides the overload in
        // queueing latency instead).
        let mut job = job;
        loop {
            match self.cells[cell].push(job, lane) {
                Ok(()) => break,
                Err(e) => {
                    job = e.0;
                    // A terminated pool never runs submitted tasks (the
                    // documented `stop()` contract) and has no workers
                    // to drain the ring: retrying would spin forever.
                    // Release the job so it is freed, not leaked.
                    if self.terminate.load(Ordering::SeqCst) {
                        // SAFETY: the push failed, so we still hold the
                        // sole ref; a released job is never executed.
                        unsafe { job.release() };
                        return;
                    }
                    // A worker of THIS pool must not wait for space: if
                    // every worker were in here (tasks fanning out via
                    // `spawn` onto a small injector), nobody would be
                    // left to drain the ring — deadlock. Make progress
                    // ourselves instead: run one injected job inline
                    // (the overflow fallback the deques handle with
                    // inline execution). Draining the *target* cell in
                    // priority order eventually frees the full lane —
                    // higher lanes empty first, then the pop reaches
                    // ours.
                    if let Some((pool, w)) = current_worker() {
                        if Arc::ptr_eq(&pool, self) {
                            if let Some(stolen) = self.cells[cell].pop() {
                                self.count_injector_pop(cell);
                                // SAFETY: the injector hands each job
                                // to exactly one popper.
                                unsafe { self.execute(w, stolen) };
                            }
                            continue;
                        }
                    }
                    std::thread::yield_now();
                }
            }
        }
        self.notify_parked();
    }

    /// The cell with the fewest queued tasks right now (ties to the
    /// lowest index). Racy by nature — the loads are relaxed ring
    /// indices — but mis-picks only cost balance, never correctness:
    /// every worker polls every cell.
    fn least_loaded_cell(&self) -> usize {
        let mut best = 0;
        let mut best_len = usize::MAX;
        for (i, cell) in self.cells.iter().enumerate() {
            let len = cell.len();
            if len < best_len {
                best = i;
                best_len = len;
                if len == 0 {
                    break;
                }
            }
        }
        best
    }

    /// Count one pop from `cell`, keeping the per-cell and merged
    /// legacy counters in exact agreement (single increment site).
    fn count_injector_pop(&self, cell: usize) {
        self.cell_pops[cell].fetch_add(1, Ordering::Relaxed);
        self.stats.injector_pops.fetch_add(1, Ordering::Relaxed);
    }

    /// Poll the injector cells in worker `w`'s polling order: its own
    /// domain's cell first, then cross-domain in steal-distance order.
    fn pop_injected(&self, w: usize) -> Option<JobRef> {
        for &c in &self.cell_order[w] {
            if let Some(job) = self.cells[c].pop() {
                self.count_injector_pop(c);
                return Some(job);
            }
        }
        None
    }

    /// Wake a parked worker after making work visible.
    ///
    /// No-lost-wakeup argument (DESIGN.md §Serve). Producer: (1) make
    /// work visible, (2) `SeqCst` fence, (3) read `parked_workers`.
    /// Parker, under `sleep_lock`: (1) increment `parked_workers`, (2)
    /// `SeqCst` fence, (3) re-check for work, and only then wait. The
    /// fences resolve the store-buffering race ([atomics.fences]): one
    /// of them is first in the total fence order, so either the
    /// producer's work write is visible to the parker's re-check (it
    /// never sleeps), or the parker's increment is visible to the
    /// producer's read — which then routes through the lock bridge
    /// below, landing by mutual exclusion either before the parker's
    /// re-check (which then sees the work) or after the parker
    /// released the lock into its wait (which the notify wakes).
    /// Parked waits are additionally timed (`PARK_RECHECK`) as
    /// defense in depth.
    fn notify_parked(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.parked_workers.load(Ordering::SeqCst) > 0 {
            drop(self.sleep_lock.lock());
            self.sleep_cond.notify_one();
        }
        self.maybe_scale_up();
    }

    /// Producer-side elastic scale-up: when the pool is scaled down and
    /// the just-made-visible work pushes the load signal over the wake
    /// thresholds, wake one sleeper ([`WakeReason::Signal`]). Rides
    /// every `notify_parked` — a no-op branch without an elastic policy
    /// and one atomic load while fully awake, so the closed-model hot
    /// paths keep their shape.
    fn maybe_scale_up(&self) {
        let Some(el) = self.elastic.as_ref() else {
            return;
        };
        if el.awake_workers() >= el.workers() {
            return;
        }
        let sig = self.load_signal(0);
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        let _ = el.try_wake_for_load(sig, now_ns);
    }

    /// One observation of the pool's load for the scale controller:
    /// merged injector depth, the windowed busy-share (when the
    /// live-metrics hub exists), and the caller's failed-sweep
    /// evidence.
    fn load_signal(&self, failed_sweeps: u64) -> LoadSignal {
        LoadSignal {
            queue_depth: self.cells.iter().map(ClassInjector::len).sum(),
            busy_permille: self.busy_share_permille(),
            failed_sweeps,
        }
    }

    /// Windowed busy-share of the pool in permille, refreshed at most
    /// once per [`BUSY_WINDOW_NS`] by whoever crosses the boundary
    /// first (everyone else reads the cached value). 0 without a
    /// live-metrics hub — the depth and steal signals then drive the
    /// elastic decisions alone.
    fn busy_share_permille(&self) -> u32 {
        let Some(hub) = self.metrics.as_ref() else {
            return 0;
        };
        let now = self.epoch.elapsed().as_nanos() as u64;
        let last = self.busy_window_at_ns.load(Ordering::Relaxed);
        if now.saturating_sub(last) < BUSY_WINDOW_NS
            || self
                .busy_window_at_ns
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return self.busy_window_permille.load(Ordering::Relaxed) as u32;
        }
        let total: u64 = hub.sample().iter().map(|s| s.busy_ns).sum();
        let prev = self.busy_window_busy_ns.swap(total, Ordering::Relaxed);
        let wall = now.saturating_sub(last).max(1) * self.deques.len() as u64;
        let permille = (total.saturating_sub(prev).saturating_mul(1000) / wall).min(1000);
        self.busy_window_permille.store(permille, Ordering::Relaxed);
        permille as u32
    }

    /// An idle worker's spin budget ran out: decide between elastic
    /// sleep, ordinary parking, and staying awake. `failed_sweeps` is
    /// the worker's own just-observed evidence (empty sweeps since it
    /// last held work).
    fn idle_block(&self, w: usize, failed_sweeps: u64) {
        if let Some(el) = self.elastic.as_ref() {
            let sig = self.load_signal(failed_sweeps);
            let now_ns = self.epoch.elapsed().as_nanos() as u64;
            match el.consult(w, sig, now_ns) {
                SleepVerdict::Sleep => return self.elastic_sleep(w, el),
                SleepVerdict::Sentinel => {
                    // The sentinel is the pool's wake latency: it may
                    // take the shallow 1 ms-recheck park below (a
                    // producer notify still reaches it there), but
                    // never the indefinite elastic sleep — someone must
                    // answer a wake signal the moment load returns. At
                    // most once per rotation period it taps a sleeper
                    // to take over, so the on-call role circulates.
                    el.try_rotate(now_ns);
                }
                // Cooldown or hysteresis band: fall through to an
                // ordinary (bounded, see `park`) park so the worker
                // re-consults once the cooldown expires.
                SleepVerdict::Hold => {}
            }
            if !self.parking {
                return;
            }
        }
        self.park(w);
    }

    /// Worker `w`'s elastic-sleep bracket. The slot was already
    /// reserved by [`ElasticState::consult`]; this re-checks for work
    /// and shutdown (undoing the reservation instead of sleeping on
    /// visible work), then waits **indefinitely** on the worker's wake
    /// channel — no timed re-check; only a load signal, a sentinel
    /// rotation, or shutdown ends it. With no timer armed the emulated
    /// core reaches the deepest sleep state, so the episode is charged
    /// at [`crate::SLEEP_WATTS_FRACTION`] (an order below park watts;
    /// the tempo `on_park` hook still pins the slowest frequency),
    /// bracketed by [`Event::WorkerSleep`] / [`Event::WorkerWake`].
    fn elastic_sleep(&self, w: usize, el: &ElasticState) {
        if self.terminate.load(Ordering::SeqCst) || self.has_claimable_work() {
            el.finish_sleep(w);
            return;
        }
        let t0 = Instant::now();
        if let Some(sink) = self.sink.as_deref() {
            sink.record(
                w,
                self.epoch.elapsed().as_nanos() as u64,
                Event::WorkerSleep,
            );
        }
        self.with_controller(|ctl, act| ctl.on_park(WorkerId(w), act));
        let reason = el.sleep_wait(w, &self.terminate);
        let slept = t0.elapsed();
        let slept_ns = slept.as_nanos() as u64;
        self.stats.sleeps.fetch_add(1, Ordering::Relaxed);
        self.stats.slept_ns.fetch_add(slept_ns, Ordering::Relaxed);
        self.stats.wakes.fetch_add(1, Ordering::Relaxed);
        if let Some(emu) = &self.emu {
            let charge = emu.account_slept(w, slept);
            self.record_power(w, PowerKind::Parked, charge);
        }
        if let Some(hub) = &self.metrics {
            hub.add_parked_ns(w, slept_ns);
        }
        if let Some(sink) = self.sink.as_deref() {
            sink.record(
                w,
                self.epoch.elapsed().as_nanos() as u64,
                Event::WorkerWake { reason, slept_ns },
            );
        }
        self.with_controller(|ctl, act| ctl.on_unpark(WorkerId(w), act));
        el.finish_sleep(w);
    }

    /// Work a parked worker could acquire: injected tasks or anything
    /// stealable. (Its own deque cannot fill while it sleeps — only the
    /// owner pushes there.)
    fn has_claimable_work(&self) -> bool {
        self.cells.iter().any(|c| !c.is_empty()) || self.deques.iter().any(|d| !d.is_empty())
    }

    /// Record a causal-span edge for task `span` on the calling
    /// thread's stream. No-op for untraced tasks (`span == 0`) and
    /// sinkless pools, so the branch is the entire untraced cost.
    pub(crate) fn record_span(self: &Arc<Self>, span: u64, begin: bool, phase: SpanPhase) {
        if span == 0 {
            return;
        }
        self.record_task_event(if begin {
            Event::SpanBegin { id: span, phase }
        } else {
            Event::SpanEnd { id: span, phase }
        });
    }

    /// Record a task-lifecycle event on the calling thread's stream: the
    /// worker's own stream when the caller is a worker of this pool, the
    /// machine stream otherwise (wakes arriving from external threads).
    fn record_task_event(self: &Arc<Self>, event: Event) {
        if let Some(sink) = self.sink.as_deref() {
            let stream = match current_worker() {
                Some((pool, w)) if Arc::ptr_eq(&pool, self) => w,
                _ => MACHINE_STREAM,
            };
            sink.record(stream, self.epoch.elapsed().as_nanos() as u64, event);
        }
    }

    /// Emit the [`Event::PowerInterval`] for a charge the emulated-DVFS
    /// accountant just billed. Recorded at the interval's end (now), the
    /// event-encoding convention. The meter was already charged, so
    /// without a sink this is a no-op — not even a timestamp read —
    /// and zero-length slices (sub-ns task blips) are skipped: they
    /// carry no energy.
    fn record_power(&self, w: usize, kind: PowerKind, charge: PowerCharge) {
        if charge.duration_ns == 0 {
            return;
        }
        if let Some(sink) = self.sink.as_deref() {
            sink.record(
                w,
                self.epoch.elapsed().as_nanos() as u64,
                Event::PowerInterval {
                    kind,
                    duration_ns: charge.duration_ns,
                    milliwatts: charge.milliwatts,
                },
            );
        }
    }

    /// Count one future-task poll (see [`RtStats::future_polls`]).
    pub(crate) fn task_polled(self: &Arc<Self>) {
        self.stats.future_polls.fetch_add(1, Ordering::Relaxed);
        self.record_task_event(Event::TaskPoll);
    }

    /// Count one future-task wake (see [`RtStats::future_wakes`]).
    pub(crate) fn task_woken(self: &Arc<Self>) {
        self.stats.future_wakes.fetch_add(1, Ordering::Relaxed);
        self.record_task_event(Event::TaskWake);
    }

    /// Re-queue a woken future task: onto the waking worker's own deque
    /// when the waker fired on a worker of this pool (the wake usually
    /// happens where the readiness was produced, so the task stays
    /// local), through the injector otherwise. Both paths end in
    /// `notify_parked`, so the no-lost-wakeup argument on that method
    /// covers re-pushes exactly as it covers fresh submissions.
    pub(crate) fn repush(self: &Arc<Self>, job: JobRef) {
        self.stats.future_repushes.fetch_add(1, Ordering::Relaxed);
        self.record_task_event(Event::TaskRepush);
        if let Some((pool, w)) = current_worker() {
            if Arc::ptr_eq(&pool, self) {
                return match self.deques[w].push(job) {
                    Ok(()) => {
                        self.stats.pushes.fetch_add(1, Ordering::Relaxed);
                        let len = self.deques[w].len();
                        self.with_controller(|ctl, act| ctl.on_push(WorkerId(w), len, act));
                        self.notify_parked();
                    }
                    // Deque full: overflow to the injector rather than
                    // executing inline — a wake must not nest a poll
                    // inside whatever job is currently running.
                    Err(e) => self.inject(e.0),
                };
            }
        }
        self.inject(job);
    }

    /// Park worker `w` until work may be available or the pool shuts
    /// down. Records the park/unpark telemetry bracket, attributes the
    /// parked time to the energy model, and runs the controller's
    /// park hooks (which pin the core at the slowest frequency for the
    /// duration).
    fn park(&self, w: usize) {
        // Lock-free pre-check: the common abort case (work appeared
        // during the last spin) never touches the lock or the
        // controller.
        if self.terminate.load(Ordering::SeqCst) || self.has_claimable_work() {
            return;
        }
        // Record the park bracket and pin the frequency BEFORE taking
        // `sleep_lock`: producers' `notify_parked` serializes on that
        // lock, so nothing slow (controller mutex, a DVFS write in
        // `on_park`'s actuation, sink records) may happen under it —
        // only the parked_workers handshake, the final re-check, and
        // the wait itself.
        let t0 = Instant::now();
        if let Some(sink) = self.sink.as_deref() {
            sink.record(w, self.epoch.elapsed().as_nanos() as u64, Event::WorkerPark);
        }
        self.with_controller(|ctl, act| ctl.on_park(WorkerId(w), act));
        {
            let mut guard = self.sleep_lock.lock();
            // Declare the park *before* the under-lock work re-check,
            // with a SeqCst fence between increment and re-check: see
            // `notify_parked` for why this order (fence against fence)
            // closes the sleep/notify race.
            self.parked_workers.fetch_add(1, Ordering::SeqCst);
            std::sync::atomic::fence(Ordering::SeqCst);
            // Under an elastic policy the park is *bounded*: one timed
            // recheck, then back to the worker loop so the idle worker
            // re-consults the scale controller (whose cooldown may now
            // allow it to sleep for real). Without one, the loop keeps
            // the legacy shape — park until work or termination.
            let bounded = self.elastic.is_some();
            while !(self.terminate.load(Ordering::SeqCst) || self.has_claimable_work()) {
                let timed_out = self
                    .sleep_cond
                    .wait_for(&mut guard, PARK_RECHECK)
                    .timed_out();
                if bounded && timed_out {
                    break;
                }
            }
            self.parked_workers.fetch_sub(1, Ordering::SeqCst);
        }
        let parked = t0.elapsed();
        let parked_ns = parked.as_nanos() as u64;
        self.stats.parks.fetch_add(1, Ordering::Relaxed);
        self.stats.parked_ns.fetch_add(parked_ns, Ordering::Relaxed);
        if let Some(emu) = &self.emu {
            let charge = emu.account_parked(w, parked);
            self.record_power(w, PowerKind::Parked, charge);
        }
        if let Some(hub) = &self.metrics {
            hub.add_parked_ns(w, parked_ns);
        }
        if let Some(sink) = self.sink.as_deref() {
            sink.record(
                w,
                self.epoch.elapsed().as_nanos() as u64,
                Event::WorkerUnpark { parked_ns },
            );
        }
        self.with_controller(|ctl, act| ctl.on_unpark(WorkerId(w), act));
    }

    fn with_controller(&self, f: impl FnOnce(&mut TempoController, &mut DriverActuator<'_>)) {
        let mut ctl = self.controller.lock();
        let mut act = DriverActuator {
            driver: self.driver.as_ref(),
            sink: self.sink.as_deref(),
            epoch: &self.epoch,
        };
        f(&mut ctl, &mut act);
        // Forward the tempo transitions this hook produced (possibly for
        // other workers — relays) while still holding the controller
        // lock, so transition order matches controller order.
        if let Some(sink) = self.sink.as_deref() {
            let at_ns = self.epoch.elapsed().as_nanos() as u64;
            ctl.drain_transitions(|t| sink.record_transition(at_ns, t));
        }
    }

    /// Push a job onto worker `w`'s deque, running the workload hook.
    /// Returns the job back if the deque is full.
    fn push_job(&self, w: usize, job: JobRef) -> Result<(), JobRef> {
        match self.deques[w].push(job) {
            Ok(()) => {
                self.stats.pushes.fetch_add(1, Ordering::Relaxed);
                let len = self.deques[w].len();
                self.with_controller(|ctl, act| ctl.on_push(WorkerId(w), len, act));
                self.notify_parked();
                Ok(())
            }
            Err(e) => {
                self.stats.inline_fallbacks.fetch_add(1, Ordering::Relaxed);
                Err(e.0)
            }
        }
    }

    /// Pop from worker `w`'s own deque, running the workload hook.
    fn pop_job(&self, w: usize) -> Option<JobRef> {
        let job = self.deques[w].pop()?;
        self.stats.pops.fetch_add(1, Ordering::Relaxed);
        let len = self.deques[w].len();
        self.with_controller(|ctl, act| ctl.on_pop(WorkerId(w), len, act));
        Some(job)
    }

    /// One full steal sweep over random-ordered victims; runs the
    /// out-of-work hook first (Fig. 5 lines 5-14), then the steal hook on
    /// success.
    /// The online profiler (paper §3.2), driven from the steal path so it
    /// runs even while workers sit inside join resolution loops: whoever
    /// crosses the period boundary first samples every deque and
    /// recomputes the thresholds.
    fn maybe_profile(&self) {
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        let last = self.last_profile_ns.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) < self.profile_period_ns {
            return;
        }
        if self
            .last_profile_ns
            .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another worker took this tick
        }
        let mut ctl = self.controller.lock();
        for dq in &self.deques {
            ctl.record_deque_sample(dq.len());
        }
        ctl.recompute_thresholds();
    }

    /// `order` is the caller's reusable sweep buffer (each worker loop
    /// owns one, so the hot path never allocates).
    fn steal_job(&self, w: usize, rng: &mut SmallRng, order: &mut Vec<usize>) -> Option<JobRef> {
        // Time the sweep only when the live-metrics hub exists; the
        // sinkless steal path keeps its exact pre-metrics shape.
        match &self.metrics {
            None => self.steal_job_inner(w, rng, order),
            Some(hub) => {
                let t0 = Instant::now();
                let job = self.steal_job_inner(w, rng, order);
                hub.add_steal_ns(w, t0.elapsed().as_nanos() as u64);
                job
            }
        }
    }

    fn steal_job_inner(
        &self,
        w: usize,
        rng: &mut SmallRng,
        order: &mut Vec<usize>,
    ) -> Option<JobRef> {
        self.maybe_profile();
        self.with_controller(|ctl, act| ctl.on_out_of_work(WorkerId(w), act));
        let n = self.deques.len();
        if n <= 1 {
            return None;
        }
        self.selector.sweep(w, rng, order);
        for &v in order.iter() {
            let outcome = self.deques[v].steal();
            if let Some(sink) = self.sink.as_deref() {
                let telemetry_outcome = match &outcome {
                    Steal::Success { .. } => StealOutcome::Success,
                    Steal::Empty => StealOutcome::Empty,
                    Steal::Retry => StealOutcome::LostRace,
                };
                sink.record(
                    w,
                    self.epoch.elapsed().as_nanos() as u64,
                    Event::StealAttempt {
                        victim: v as u32,
                        outcome: telemetry_outcome,
                    },
                );
            }
            match outcome {
                Steal::Success {
                    task: job,
                    victim_len,
                } => {
                    self.stats.steals.fetch_add(1, Ordering::Relaxed);
                    // The controller sees the victim length captured at
                    // the steal's commit point. Re-reading the deque here
                    // would race: another thief (or the owner) may have
                    // moved the indices in between, feeding the workload
                    // algorithm a length the victim never had when this
                    // steal happened.
                    self.with_controller(|ctl, act| {
                        ctl.on_steal(WorkerId(w), WorkerId(v), victim_len, act);
                    });
                    return Some(job);
                }
                Steal::Empty => {
                    self.stats.empty_steals.fetch_add(1, Ordering::Relaxed);
                }
                Steal::Retry => {
                    // Contention, not starvation: the victim had work but
                    // this thief lost the race for it. Move on to the
                    // next victim; the sweep will come back around.
                    self.stats.lost_race_steals.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        None
    }

    /// Execute a job with timing, feeding the emulated-DVFS accountant.
    ///
    /// # Safety
    ///
    /// `job` must be executed exactly once across all threads.
    unsafe fn execute(&self, w: usize, job: JobRef) {
        // Publish the Busy/Stealing lifecycle edges (one relaxed store
        // each) only when an elastic policy is watching them.
        if let Some(el) = &self.elastic {
            el.set_state(w, WorkerState::Busy);
        }
        if let Some(emu) = &self.emu {
            emu.begin_busy(w);
        }
        let t0 = Instant::now();
        // SAFETY: single-execution obligation forwarded to the caller.
        unsafe { job.execute() };
        if self.emu.is_some() || self.metrics.is_some() {
            let elapsed = t0.elapsed();
            if let Some(emu) = &self.emu {
                let charge = emu.account_and_dilate(w, elapsed);
                self.record_power(w, PowerKind::Busy, charge);
            }
            if let Some(hub) = &self.metrics {
                hub.add_busy_ns(w, elapsed.as_nanos() as u64);
                hub.add_task(w);
            }
        }
        if let Some(el) = &self.elastic {
            el.set_state(w, WorkerState::Stealing);
        }
    }

    /// The join resolution loop: keep the worker useful until `latch`.
    fn join_on<A, B, RA, RB>(self: &Arc<Self>, w: usize, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let job_b = StackJob::new(b);
        // SAFETY: this frame blocks (while helping) until job_b's latch is
        // set, so the pointer stays valid; the ref is executed once —
        // either by a thief, or inline below after popping it back.
        let ref_b = unsafe { job_b.as_job_ref() };
        if self.push_job(w, ref_b).is_err() {
            // Deque full: degrade to sequential execution.
            // SAFETY: run_inline consumes the closure; ref_b was never
            // made visible to other workers.
            let rb = unsafe { job_b.run_inline() };
            let ra = a();
            return (ra, rb);
        }
        let ra = a();
        // Resolve b: pop back (fast path), help with other work, or steal.
        let mut rng = SmallRng::seed_from_u64(w as u64 ^ 0x9e37_79b9);
        let mut order = Vec::new();
        loop {
            if job_b.latch.probe() {
                // SAFETY: latch set implies the thief wrote the result.
                let rb = unsafe { job_b.take_result() };
                return (ra, rb);
            }
            if let Some(job) = self.pop_job(w) {
                if job == ref_b {
                    // SAFETY: we popped the unique ref; nobody else has it.
                    let rb = unsafe { job_b.run_inline() };
                    return (ra, rb);
                }
                // Another pending task (e.g. a scope spawn): help.
                // SAFETY: popped jobs are executed exactly once.
                unsafe { self.execute(w, job) };
                continue;
            }
            // Own deque empty: leapfrog by stealing.
            if let Some(job) = self.steal_job(w, &mut rng, &mut order) {
                // SAFETY: stolen jobs are executed exactly once.
                unsafe { self.execute(w, job) };
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Coalesced spin-power accounting for one idle segment. Per-iteration
/// slices are billed to the nanojoule meter as they happen (so a tempo
/// actuation moves the billed power within one sweep+yield), but
/// emitting a [`Event::PowerInterval`] per slice would flood the rings
/// with microsecond-scale events; the slices accumulate here and flush
/// as a single average-power interval when the segment closes (work
/// arrives, the worker parks, or the pool shuts down).
#[derive(Default)]
struct SpinAccum {
    ns: u64,
    /// Picojoules (Σ slice mW × ns), so the flushed interval's energy
    /// matches the meter charges it coalesces.
    pj: u64,
}

/// Flush an open spin segment past this span so the emitted interval
/// never saturates the event encoding's 38-bit duration field.
const SPIN_FLUSH_NS: u64 = 1 << 37; // ~137 s

impl SpinAccum {
    fn add(&mut self, charge: PowerCharge) {
        self.ns += charge.duration_ns;
        self.pj += charge.duration_ns * charge.milliwatts;
    }

    fn flush(&mut self, inner: &PoolInner, index: usize) {
        if self.ns == 0 {
            return;
        }
        let milliwatts = (self.pj + self.ns / 2) / self.ns;
        inner.record_power(
            index,
            PowerKind::Spin,
            PowerCharge {
                duration_ns: self.ns,
                milliwatts,
            },
        );
        *self = SpinAccum::default();
    }
}

/// Close an idle-spin accounting segment: charge the span since
/// `idle_since` to the energy model as spinning time and flush the
/// segment's coalesced power interval.
fn charge_idle_spin(
    inner: &PoolInner,
    index: usize,
    idle_since: &mut Option<Instant>,
    spin: &mut SpinAccum,
) {
    if let (Some(t0), Some(emu)) = (idle_since.take(), inner.emu.as_ref()) {
        spin.add(emu.account_idle_spin(index, t0.elapsed()));
    }
    spin.flush(inner, index);
}

fn worker_main(inner: &Arc<PoolInner>, index: usize) {
    set_current_worker(inner, index);
    let mut rng = SmallRng::seed_from_u64(index as u64 ^ 0x5851_f42d);
    let mut order = Vec::new();
    let mut idle_spins = 0u32;
    // Start of the current idle-spin segment, for energy attribution
    // (tracked only when the pool runs the emulated power model).
    let mut idle_since: Option<Instant> = None;
    let mut spin = SpinAccum::default();
    loop {
        // Local work first — the work-first discipline of §2.
        if let Some(job) = inner.pop_job(index) {
            charge_idle_spin(inner, index, &mut idle_since, &mut spin);
            // SAFETY: popped jobs execute exactly once.
            unsafe { inner.execute(index, job) };
            idle_spins = 0;
            continue;
        }
        // External admission next: the injector cells sit between the
        // local pop and the steal sweep, so a worker prefers fresh
        // requests over raiding a peer's deque (stealing moves work
        // that a busy worker would have run anyway; an injected task
        // has no other path in) while never starving its own subtree.
        // Cells are polled nearest-first — the worker's own clock
        // domain's cell, then cross-domain in steal-distance order —
        // so locality-hinted work stays local while nothing anywhere
        // is stranded.
        if let Some(job) = inner.pop_injected(index) {
            charge_idle_spin(inner, index, &mut idle_since, &mut spin);
            // SAFETY: the injector hands each job to exactly one popper.
            unsafe { inner.execute(index, job) };
            idle_spins = 0;
            continue;
        }
        if let Some(job) = inner.steal_job(index, &mut rng, &mut order) {
            charge_idle_spin(inner, index, &mut idle_since, &mut spin);
            // SAFETY: stolen jobs execute exactly once.
            unsafe { inner.execute(index, job) };
            idle_spins = 0;
            continue;
        }
        if inner.terminate.load(Ordering::SeqCst) {
            break;
        }
        // Close the previous idle slice and open a new one every
        // iteration: tempo actuations (relays, procrastinations) move
        // this worker's frequency *while it spins*, and spin power
        // follows the frequency in force during the slice, not the one
        // sampled when work finally arrives. Per-iteration slices bound
        // the attribution error to a single sweep+yield; the slices
        // coalesce into `spin` and surface as one interval per segment.
        if let Some(emu) = inner.emu.as_ref() {
            let now = Instant::now();
            if let Some(t0) = idle_since.replace(now) {
                spin.add(emu.account_idle_spin(index, now.duration_since(t0)));
                if spin.ns >= SPIN_FLUSH_NS {
                    spin.flush(inner, index);
                }
            }
        }
        // Saturate: with parking disabled the counter is never reset
        // while idle, and a long-idle debug build must not overflow.
        idle_spins = idle_spins.saturating_add(1);
        // An elastic policy can block a worker (by sleeping it) even
        // with parking disabled; without one, parking-off keeps the
        // legacy spin-forever shape.
        let can_block = inner.parking || inner.elastic.is_some();
        if !can_block || idle_spins < inner.spin_budget.max(1) {
            std::thread::yield_now();
        } else {
            // Spin budget exhausted: account the spin segment, then
            // block — elastic sleep, or a park until work or
            // termination (parked/slept time is accounted separately,
            // at park watts). The spent spin budget doubles as the
            // failed-sweep evidence the scale controller wants.
            charge_idle_spin(inner, index, &mut idle_since, &mut spin);
            inner.idle_block(index, u64::from(idle_spins));
            idle_spins = 0;
        }
    }
    charge_idle_spin(inner, index, &mut idle_since, &mut spin);
    clear_current_worker();
}

// ---------------------------------------------------------------------
// Thread-local worker context

thread_local! {
    static CURRENT: RefCell<Option<(Weak<PoolInner>, usize)>> = const { RefCell::new(None) };
}

fn set_current_worker(inner: &Arc<PoolInner>, index: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::downgrade(inner), index)));
}

fn clear_current_worker() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

fn current_worker() -> Option<(Arc<PoolInner>, usize)> {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .and_then(|(weak, idx)| weak.upgrade().map(|p| (p, *idx)))
    })
}

/// Index of the calling thread within its pool, if the caller is a
/// worker thread. Serving layers use this to attribute per-request
/// telemetry (e.g. completion latencies) to the worker stream that ran
/// the request; non-worker threads get `None` and attribute to the
/// machine stream.
#[must_use]
pub fn current_worker_index() -> Option<usize> {
    current_worker().map(|(_, idx)| idx)
}

/// Emulated energy consumed so far by the worker running the calling
/// thread, in nanojoules — `None` off-pool or when the worker's pool
/// has no emulated DVFS. The free-function sibling of
/// [`Pool::current_worker_energy_nj`] for code (like a request closure)
/// that executes on a worker without holding the pool handle: read once
/// on entry, once on exit, and the difference is the energy this worker
/// spent inside the bracket.
#[must_use]
pub fn current_worker_energy_nj() -> Option<u64> {
    let (inner, index) = current_worker()?;
    inner.emu.as_ref().map(|emu| emu.worker_energy_nj(index))
}

// ---------------------------------------------------------------------
// Free functions usable inside `Pool::install`

/// Run two closures, potentially in parallel, returning both results.
///
/// Inside a pool, `b` is pushed onto the calling worker's deque (where a
/// thief may steal it) while the caller runs `a` — the work-first
/// discipline of §2. Outside any pool, runs sequentially.
///
/// ```
/// use hermes_rt::{join, Pool};
/// let pool = Pool::new(2);
/// let (a, b) = pool.install(|| join(|| 2 + 2, || 3 * 3));
/// assert_eq!((a, b), (4, 9));
/// ```
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        Some((pool, w)) => pool.join_on(w, a, b),
        None => (a(), b()),
    }
}

/// Apply `f` to every element of `data` in parallel, recursively splitting
/// down to `grain`-sized chunks via [`join`].
///
/// ```
/// use hermes_rt::{parallel_for, Pool};
/// let pool = Pool::new(2);
/// let mut v: Vec<u64> = (0..1000).collect();
/// pool.install(|| parallel_for(&mut v, 64, |x| *x *= 2));
/// assert_eq!(v[10], 20);
/// ```
pub fn parallel_for<T, F>(data: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    parallel_chunks(data, grain, &|chunk| {
        for item in chunk {
            f(item);
        }
    });
}

/// Apply `f` to disjoint chunks of `data` (each at most `grain` long) in
/// parallel. The chunk-level sibling of [`parallel_for`].
pub fn parallel_chunks<T, F>(data: &mut [T], grain: usize, f: &F)
where
    T: Send,
    F: Fn(&mut [T]) + Sync,
{
    let grain = grain.max(1);
    if data.len() <= grain {
        f(data);
        return;
    }
    let mid = data.len() / 2;
    let (left, right) = data.split_at_mut(mid);
    join(
        || parallel_chunks(left, grain, f),
        || parallel_chunks(right, grain, f),
    );
}

/// Compute `f(i)` for `i` in `0..n` in parallel and reduce the results
/// with `reduce`, returning `identity` for an empty range.
pub fn parallel_map_reduce<R, F, G>(n: usize, grain: usize, identity: R, f: &F, reduce: &G) -> R
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    G: Fn(R, R) -> R + Sync,
{
    fn go<R, F, G>(lo: usize, hi: usize, grain: usize, f: &F, reduce: &G) -> Option<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        G: Fn(R, R) -> R + Sync,
    {
        if hi - lo <= grain {
            let mut acc: Option<R> = None;
            for i in lo..hi {
                let v = f(i);
                acc = Some(match acc {
                    None => v,
                    Some(a) => reduce(a, v),
                });
            }
            return acc;
        }
        let mid = lo + (hi - lo) / 2;
        let (l, r) = join(
            || go(lo, mid, grain, f, reduce),
            || go(mid, hi, grain, f, reduce),
        );
        match (l, r) {
            (Some(a), Some(b)) => Some(reduce(a, b)),
            (x, None) => x,
            (None, y) => y,
        }
    }
    let grain = grain.max(1);
    go(0, n, grain, f, reduce).unwrap_or(identity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_runs_and_returns() {
        let pool = Pool::new(2);
        assert_eq!(pool.install(|| 21 * 2), 42);
        pool.shutdown();
    }

    #[test]
    fn join_computes_both_sides() {
        let pool = Pool::new(4);
        let (a, b) = pool.install(|| join(|| 1 + 1, || 2 + 2));
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn join_outside_pool_is_sequential() {
        let (a, b) = join(|| 5, || 6);
        assert_eq!((a, b), (5, 6));
    }

    #[test]
    fn nested_joins_compute_fib() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = Pool::new(4);
        assert_eq!(pool.install(|| fib(18)), 2584);
        assert!(pool.stats().pushes > 0);
    }

    #[test]
    fn parallel_for_touches_every_element() {
        let pool = Pool::new(4);
        let mut v = vec![1u64; 10_000];
        pool.install(|| parallel_for(&mut v, 128, |x| *x += 1));
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn parallel_map_reduce_sums() {
        let pool = Pool::new(4);
        let total =
            pool.install(|| parallel_map_reduce(1001, 32, 0u64, &|i| i as u64, &|a, b| a + b));
        assert_eq!(total, 500_500);
    }

    #[test]
    fn parallel_map_reduce_empty_range_yields_identity() {
        let pool = Pool::new(2);
        let total = pool.install(|| parallel_map_reduce(0, 8, 7u64, &|i| i as u64, &|a, b| a + b));
        assert_eq!(total, 7);
    }

    #[test]
    fn spawn_runs_static_tasks() {
        use std::sync::atomic::AtomicU32;
        let pool = Pool::new(2);
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::SeqCst) != 16 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    use crate::latch::WakerLatch;
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll, Waker};

    /// Self-wakes on its first `yields` polls (exercising the
    /// RUNNING→NOTIFIED→re-queue path), then completes `latch`.
    struct YieldThenSet {
        yields: u32,
        latch: Arc<WakerLatch>,
    }

    impl Future for YieldThenSet {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yields > 0 {
                self.yields -= 1;
                cx.waker().wake_by_ref();
                return Poll::Pending;
            }
            self.latch.set();
            Poll::Ready(())
        }
    }

    #[test]
    fn spawn_future_completes_ready_future() {
        let pool = Pool::new(2);
        let latch = Arc::new(WakerLatch::new());
        pool.spawn_future(YieldThenSet {
            yields: 0,
            latch: Arc::clone(&latch),
        });
        latch.wait();
        assert_eq!(pool.stats().future_polls, 1);
    }

    #[test]
    fn self_waking_futures_are_repolled_not_lost() {
        let pool = Pool::new(2);
        let latches: Vec<_> = (0..64).map(|_| Arc::new(WakerLatch::new())).collect();
        for l in &latches {
            pool.spawn_future(YieldThenSet {
                yields: 3,
                latch: Arc::clone(l),
            });
        }
        for l in &latches {
            l.wait();
        }
        let stats = pool.stats();
        // Each task: 4 polls (3 yields + completion), and each yield is
        // a wake that re-queues.
        assert_eq!(stats.future_polls, 64 * 4, "{stats:?}");
        assert_eq!(stats.future_repushes, 64 * 3, "{stats:?}");
        assert_eq!(stats.future_wakes, 64 * 3, "{stats:?}");
    }

    /// Parks its waker in a shared slot on the first poll; completes on
    /// the second.
    struct ExternalEvent {
        slot: Arc<parking_lot::Mutex<Option<Waker>>>,
        fired: Arc<AtomicBool>,
        latch: Arc<WakerLatch>,
    }

    impl Future for ExternalEvent {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.fired.load(Ordering::SeqCst) {
                self.latch.set();
                return Poll::Ready(());
            }
            *self.slot.lock() = Some(cx.waker().clone());
            // Decide-then-re-check: the event may have fired between the
            // load above and the waker store (the standard register/
            // re-probe pattern); without this, that wake is lost.
            if self.fired.load(Ordering::SeqCst) {
                self.latch.set();
                return Poll::Ready(());
            }
            Poll::Pending
        }
    }

    #[test]
    fn external_wake_restarts_a_parked_pool() {
        let pool = Pool::new(2);
        let slot = Arc::new(parking_lot::Mutex::new(None));
        let fired = Arc::new(AtomicBool::new(false));
        let latch = Arc::new(WakerLatch::new());
        pool.spawn_future(ExternalEvent {
            slot: Arc::clone(&slot),
            fired: Arc::clone(&fired),
            latch: Arc::clone(&latch),
        });
        // Wait until the first poll parked the waker, then let the pool
        // go fully idle (everyone parked) before firing the event from
        // this external thread.
        let deadline = Instant::now() + Duration::from_secs(5);
        while slot.lock().is_none() && Instant::now() < deadline {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(30));
        fired.store(true, Ordering::SeqCst);
        slot.lock()
            .take()
            .expect("first poll parked a waker")
            .wake();
        latch.wait();
        let stats = pool.stats();
        assert_eq!(stats.future_polls, 2, "{stats:?}");
        assert_eq!(stats.future_repushes, 1, "{stats:?}");
    }

    #[test]
    fn spawn_future_on_stopped_pool_releases_the_task() {
        struct DropFlag(Arc<AtomicBool>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let mut pool = Pool::new(1);
        pool.stop();
        let dropped = Arc::new(AtomicBool::new(false));
        let flag = DropFlag(Arc::clone(&dropped));
        let polled = Arc::new(AtomicBool::new(false));
        let polled2 = Arc::clone(&polled);
        pool.spawn_future(async move {
            let _keep = &flag;
            polled2.store(true, Ordering::SeqCst);
        });
        assert!(dropped.load(Ordering::SeqCst), "task freed, not leaked");
        assert!(
            !polled.load(Ordering::SeqCst),
            "stopped pools never run tasks"
        );
    }

    #[test]
    fn future_telemetry_agrees_with_counters() {
        use hermes_telemetry::RingSink;
        let sink = Arc::new(RingSink::new(2));
        let mut pool = Pool::builder()
            .workers(2)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        let latches: Vec<_> = (0..32).map(|_| Arc::new(WakerLatch::new())).collect();
        for l in &latches {
            pool.spawn_future(YieldThenSet {
                yields: 2,
                latch: Arc::clone(l),
            });
        }
        for l in &latches {
            l.wait();
        }
        pool.stop();
        let stats = pool.stats();
        let report = sink.report("rt-async-unit", "rt", 0.0, 0.0);
        let totals = report.totals();
        // Self-wakes all happen on worker threads, so every event lands
        // on a worker stream and the report must agree exactly.
        assert_eq!(totals.future_polls, stats.future_polls, "{stats:?}");
        assert_eq!(totals.future_wakes, stats.future_wakes, "{stats:?}");
        assert_eq!(totals.future_repushes, stats.future_repushes, "{stats:?}");
        assert_eq!(stats.future_polls, 32 * 3);
    }

    #[test]
    fn traced_futures_emit_balanced_spans() {
        use hermes_telemetry::RingSink;
        // Roomy rings: idle workers also record steal sweeps, and the
        // zero-drop assert below needs the whole timeline retained.
        let sink = Arc::new(RingSink::with_ring_capacity(2, 1 << 16));
        let mut pool = Pool::builder()
            .workers(2)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        let latches: Vec<_> = (0..16).map(|_| Arc::new(WakerLatch::new())).collect();
        for (i, l) in latches.iter().enumerate() {
            pool.spawn_future_traced(
                YieldThenSet {
                    yields: 2,
                    latch: Arc::clone(l),
                },
                i as u64 + 1,
            );
        }
        for l in &latches {
            l.wait();
        }
        pool.stop();
        let report = sink.report("span-unit", "rt", 0.0, 0.0);
        let totals = report.totals();
        // Per task: Queued begin/end per episode (3 episodes), Poll
        // begin/end per poll (3), ParkWait begin/end per self-wake race
        // (2) — every begin has exactly one end. The spawn-time Queued
        // begin is recorded on the submitting thread, which is not a
        // worker here, so it lands on the machine stream and is missing
        // from the per-worker totals.
        assert_eq!(totals.span_ends, 16 * (3 + 3 + 2), "{totals:?}");
        assert_eq!(totals.span_begins, totals.span_ends - 16, "{totals:?}");
        let machine_begins = sink
            .ring(hermes_telemetry::MACHINE_STREAM)
            .snapshot()
            .iter()
            .filter(|(_, e)| matches!(e, Event::SpanBegin { .. }))
            .count();
        assert_eq!(machine_begins, 16, "one spawn-time Queued begin per task");
        assert_eq!(totals.dropped_events, 0, "ring kept the whole trace");
        // Untraced spawns add no spans at all.
        let quiet = Arc::new(RingSink::new(2));
        let mut pool = Pool::builder()
            .workers(2)
            .telemetry(Arc::clone(&quiet) as Arc<dyn TelemetrySink>)
            .build();
        let latch = Arc::new(WakerLatch::new());
        pool.spawn_future(YieldThenSet {
            yields: 1,
            latch: Arc::clone(&latch),
        });
        latch.wait();
        pool.stop();
        assert_eq!(quiet.report("q", "rt", 0.0, 0.0).totals().span_begins, 0);
    }

    #[test]
    fn metrics_snapshot_is_live_and_gated_on_a_sink() {
        use hermes_telemetry::{NullSink, RingSink};
        // Structural "null path is free": no sink (or a NullSink) means
        // no hub exists, so the hot paths cannot even reach a store.
        assert!(Pool::new(1).metrics().is_none());
        assert!(Pool::builder()
            .workers(1)
            .telemetry(Arc::new(NullSink) as Arc<dyn TelemetrySink>)
            .build()
            .metrics()
            .is_none());
        let sink = Arc::new(RingSink::new(2));
        let pool = Pool::builder()
            .workers(2)
            .telemetry(sink as Arc<dyn TelemetrySink>)
            .build();
        pool.install(|| {
            let mut v: Vec<u64> = (0..20_000).collect();
            parallel_for(&mut v, 64, spin_work);
        });
        // Mid-run (the pool is NOT stopped): counters are visible.
        let snap = pool.metrics().expect("sink attached means a hub");
        assert_eq!(snap.workers.len(), 2);
        assert!(snap.tasks() > 0, "{snap:?}");
        assert!(snap.busy_ns() > 0, "{snap:?}");
        assert!(snap.at_ns > 0);
        let util = snap.utilization();
        assert!((0.0..=1.0).contains(&util), "{util}");
        // Counters are monotone across snapshots.
        pool.install(|| {
            let mut v: Vec<u64> = (0..20_000).collect();
            parallel_for(&mut v, 64, spin_work);
        });
        let later = pool.metrics().unwrap();
        assert!(later.tasks() >= snap.tasks());
        assert!(later.busy_ns() >= snap.busy_ns());
        assert!(later.at_ns > snap.at_ns);
    }

    /// Per-element work slow enough that a parallel region spans many OS
    /// scheduler ticks: on single-core hosts thieves only run when the
    /// victim is preempted mid-region, so fast regions finish steal-free.
    fn spin_work(x: &mut u64) {
        let mut acc = *x;
        for _ in 0..2_000 {
            acc = std::hint::black_box(acc.wrapping_mul(2654435761).rotate_left(7));
        }
        *x = acc;
    }

    #[test]
    fn steals_happen_under_load() {
        let pool = Pool::new(4);
        // Retry a few regions: with one core, whether a thief wins a chunk
        // depends on preemption timing within each region.
        for _ in 0..20 {
            let mut v: Vec<u64> = (0..20_000).collect();
            pool.install(|| parallel_for(&mut v, 64, spin_work));
            if pool.stats().steals > 0 {
                break;
            }
        }
        assert!(
            pool.stats().steals > 0,
            "4 workers over 300+ slow chunks should steal: {:?}",
            pool.stats()
        );
    }

    #[test]
    fn tempo_controller_sees_scheduler_events() {
        let tempo = TempoConfig::builder()
            .policy(Policy::Unified)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(4)
            .build();
        let pool = Pool::builder()
            .workers(4)
            .tempo(tempo)
            .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
            .build();
        for _ in 0..20 {
            let mut v: Vec<u64> = (0..20_000).collect();
            pool.install(|| parallel_for(&mut v, 64, spin_work));
            if pool.tempo_stats().steals > 0 {
                break;
            }
        }
        let stats = pool.tempo_stats();
        assert!(stats.steals > 0, "steals observed: {stats}");
        assert!(stats.path_downs > 0, "thief procrastination fired: {stats}");
        assert!(pool.total_energy().unwrap() > 0.0);
    }

    #[test]
    fn telemetry_report_agrees_with_scheduler_counters() {
        use hermes_telemetry::RingSink;
        let sink = Arc::new(RingSink::new(4));
        let tempo = TempoConfig::builder()
            .policy(Policy::Unified)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(4)
            .build();
        let mut pool = Pool::builder()
            .workers(4)
            .tempo(tempo)
            .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        for _ in 0..20 {
            let mut v: Vec<u64> = (0..20_000).collect();
            pool.install(|| parallel_for(&mut v, 64, spin_work));
            if pool.stats().steals > 0 {
                break;
            }
        }
        // Freeze the world: without this, idle workers keep recording
        // empty steal sweeps between the stats snapshot and the report
        // fold, and the equality asserts below would race.
        pool.stop();
        pool.flush_energy_telemetry();
        let stats = pool.stats();
        let elapsed = pool.elapsed_ns() as f64 / 1e9;
        let energy = pool.total_energy().unwrap();
        let report = sink.report("rt-unit", "rt", elapsed, energy);
        let totals = report.totals();
        assert_eq!(totals.steals, stats.steals, "steal events == counters");
        assert_eq!(totals.empty_steals, stats.empty_steals);
        assert_eq!(totals.lost_race_steals, stats.lost_race_steals);
        assert!(totals.steals > 0, "the workload steals: {stats:?}");
        // Every steal procrastinates the thief under the unified policy.
        assert_eq!(report.transition_mix().path_downs, totals.steals);
        // The steal matrix partitions the successful steals by victim.
        let matrix_total: u64 = report.steal_matrix.iter().flatten().sum();
        assert_eq!(matrix_total, totals.steals);
        for w in 0..4 {
            assert_eq!(report.steal_matrix[w][w], 0, "no self-steals");
            let row: u64 = report.steal_matrix[w].iter().sum();
            assert_eq!(row, report.per_worker[w].steals);
        }
        // Energy flushed once: per-worker samples sum to the pool total.
        assert!((totals.energy_j - energy).abs() <= energy * 0.01 + 1e-6);
        // Actuation events mirror the controller's actuation counter.
        assert_eq!(
            totals.actuations,
            pool.tempo_stats().actuations + 4,
            "one bootstrap actuation per worker plus level changes"
        );
        // And the report survives its own JSON codec.
        let parsed = hermes_telemetry::RunReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn power_intervals_close_against_the_meter() {
        use hermes_telemetry::RingSink;
        let sink = Arc::new(RingSink::with_ring_capacity(2, 1 << 14));
        // Budget 8: slices span several yields, so spin segments are
        // microseconds (a budget of 1 can quantize to 0 ns on coarse
        // clocks) while parks still happen well inside the sleep below.
        let mut pool = Pool::builder()
            .workers(2)
            .spin_budget(8)
            .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        let mut v: Vec<u64> = (0..20_000).collect();
        pool.install(|| parallel_for(&mut v, 64, spin_work));
        // Idle long enough to cross spin *and* park accounting. The
        // workers' dilation spins can outlive `install` returning (the
        // dilation runs after the job body), and a parked worker bumps
        // the park counter only when *woken* — so sleep, wake with a
        // trivial install, and repeat until a full park episode landed.
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.stats().parks == 0 {
            assert!(Instant::now() < deadline, "workers never parked");
            std::thread::sleep(Duration::from_millis(20));
            pool.install(|| ());
        }
        pool.stop();
        pool.flush_energy_telemetry();
        let meter = pool.total_energy().unwrap();
        let report = sink.report("power-unit", "rt", pool.elapsed_ns() as f64 / 1e9, meter);
        let totals = report.totals();
        // Worker attribution is live while a frozen pool still answers
        // its own meter; off-pool threads see None.
        assert_eq!(pool.current_worker_energy_nj(), None);
        // Every watts-class saw time: tasks ran, workers spun between
        // sweeps, and the sleep above forced park episodes.
        assert!(totals.power_busy_ns > 0, "{totals:?}");
        assert!(totals.power_spin_ns > 0, "{totals:?}");
        assert!(totals.power_parked_ns > 0, "{totals:?}");
        // Closure: the per-kind interval integrals rebuild the meter.
        // Tolerance covers mW rounding (~1e-3) plus one spin slice per
        // worker whose segment was still open when `stop()` tore down
        // the loop (flushed by the final charge, so it is tighter in
        // practice).
        let intervals = totals.power_busy_j + totals.power_spin_j + totals.power_parked_j;
        assert!(meter > 0.0);
        assert!(
            (intervals - meter).abs() <= meter * 0.01,
            "interval sum {intervals} vs meter {meter}"
        );
        // Nothing was dropped at this capacity, so the fold is exact.
        assert_eq!(sink.dropped_events(), 0);
    }

    #[test]
    fn pool_without_sink_records_nothing_and_flush_is_noop() {
        let pool = Pool::new(2);
        pool.install(|| ());
        pool.flush_energy_telemetry(); // no sink, no emu: must not panic
        assert!(pool.stats().pushes == 0 || pool.stats().pops > 0);
    }

    #[test]
    fn lock_free_deque_pool_works() {
        let pool = Pool::builder()
            .workers(4)
            .deque(DequeKind::LockFree)
            .build();
        let mut v = vec![0u8; 50_000];
        pool.install(|| parallel_for(&mut v, 64, |x| *x = 1));
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn tiny_deque_falls_back_inline() {
        let pool = Pool::builder().workers(2).deque_capacity(2).build();
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(pool.install(|| fib(15)), 610);
        assert!(
            pool.stats().inline_fallbacks > 0,
            "capacity-2 deques must overflow on fib(15): {:?}",
            pool.stats()
        );
    }

    #[test]
    fn install_from_worker_runs_directly() {
        let pool = Pool::new(2);
        let out = pool.install(|| 1 + 1);
        assert_eq!(out, 2);
        // Nested install through the public API would need a second pool;
        // the same-pool fast path is exercised via join + install inside.
    }

    #[test]
    fn topology_and_victim_policy_are_configurable() {
        for victim in VictimPolicy::all() {
            let pool = Pool::builder()
                .workers(4)
                .topology(Topology::system_b())
                .victim_policy(victim)
                .build();
            assert_eq!(pool.victim_policy_name(), victim.label());
            // 4 workers on System B sit on distinct clock domains: the
            // distance matrix is 0 on the diagonal, 2 elsewhere.
            let d = pool.worker_distances();
            for (i, row) in d.iter().enumerate() {
                for (j, &dist) in row.iter().enumerate() {
                    assert_eq!(dist, if i == j { 0 } else { 2 });
                }
            }
            let mut v = vec![1u64; 20_000];
            pool.install(|| parallel_for(&mut v, 64, |x| *x += 1));
            assert!(v.iter().all(|&x| x == 2), "{victim} pool computes");
        }
        // 8 workers exceed System B's 4 domains: dense placement, domain
        // siblings at distance 1.
        let pool = Pool::builder()
            .workers(8)
            .topology(Topology::system_b())
            .build();
        assert_eq!(pool.worker_distances()[0][1], 1);
        assert_eq!(pool.worker_distances()[0][2], 2);
    }

    #[test]
    #[should_panic(expected = "topology has 2 cores")]
    fn too_small_topology_panics() {
        let _ = Pool::builder()
            .workers(4)
            .topology(Topology::flat(2))
            .build();
    }

    #[test]
    fn spin_budget_controls_time_to_park() {
        // A tiny spin budget parks an idle worker almost immediately…
        let mut eager = Pool::builder().workers(2).spin_budget(1).build();
        std::thread::sleep(Duration::from_millis(40));
        eager.stop();
        assert!(eager.stats().parks > 0, "{:?}", eager.stats());
        assert!(eager.stats().parked_ns > 0);
        // …while an effectively unbounded budget never parks within the
        // same window (4 billion yields do not fit in 40 ms).
        let mut reluctant = Pool::builder().workers(2).spin_budget(u32::MAX).build();
        std::thread::sleep(Duration::from_millis(40));
        reluctant.stop();
        assert_eq!(reluctant.stats().parks, 0, "{:?}", reluctant.stats());
    }

    #[test]
    fn parking_disabled_spins_forever() {
        let mut pool = Pool::builder()
            .workers(2)
            .parking(false)
            .spin_budget(1)
            .build();
        std::thread::sleep(Duration::from_millis(40));
        pool.stop();
        assert_eq!(pool.stats().parks, 0);
        assert_eq!(pool.stats().parked_ns, 0);
    }

    #[test]
    fn parked_workers_wake_for_submitted_work() {
        use std::sync::atomic::AtomicU32;
        let pool = Pool::builder().workers(2).spin_budget(1).build();
        // Let both workers park.
        std::thread::sleep(Duration::from_millis(30));
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..8 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::SeqCst) != 8 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 8, "parked pool must wake");
        // And a blocking install still round-trips through the injector.
        assert_eq!(pool.install(|| 6 * 7), 42);
    }

    #[test]
    fn tiny_injector_applies_backpressure_without_loss() {
        use std::sync::atomic::AtomicU32;
        let pool = Pool::builder()
            .workers(2)
            .spin_budget(1)
            .injector_capacity(2)
            .build();
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            // Each spawn may have to wait for the 2-slot injector to
            // drain; none may be dropped.
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::SeqCst) != 50 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 50);
        assert!(pool.stats().injector_pops >= 50);
        // The merged counter is definitionally the sum of the per-cell
        // counters: both are bumped at the same pop site.
        let per_cell: u64 = pool.injector_cell_pops().iter().sum();
        assert_eq!(per_cell, pool.stats().injector_pops);
    }

    #[test]
    fn cell_order_prefers_own_domain_then_distance() {
        // Dense placement on a 2-domain topology: 8 workers on 8 cores,
        // 4 cores per clock domain. Workers 0..4 sit on domain 0,
        // workers 4..8 on domain 1.
        let topo = Topology::uniform(8, 4, 2);
        assert_eq!(topo.domains(), 2);
        let pool = Pool::builder().workers(8).topology(topo.clone()).build();
        assert_eq!(pool.injector_cells(), 2);
        // Every worker polls its own domain's cell first, then the
        // farther one — never the reverse.
        for w in 0..8 {
            let own = if w < 4 { 0 } else { 1 };
            assert_eq!(
                pool.inner.cell_order[w],
                vec![own, 1 - own],
                "worker {w} drains its own cell before the farther one"
            );
            assert_eq!(pool.inner.worker_cell[w], own);
        }
        // The pure ordering function agrees on a bigger machine: from
        // core 0 of System A, domain 0 comes first and every domain in
        // package 0 precedes every domain in package 1.
        let sys_a = Topology::system_a();
        let order = injector_cell_order(&sys_a, CoreId(0));
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), sys_a.domains());
        let pos = |d: usize| order.iter().position(|&x| x == d).unwrap();
        for near in 0..8 {
            for far in 8..16 {
                assert!(
                    pos(near) < pos(far),
                    "same-package domain {near} must precede cross-package {far}"
                );
            }
        }
    }

    #[test]
    fn hinted_submits_land_in_hinted_cells_and_pops_reconcile() {
        use std::sync::atomic::AtomicU32;
        let pool = Pool::builder()
            .workers(8)
            .topology(Topology::uniform(8, 4, 2))
            .build();
        let hits = Arc::new(AtomicU32::new(0));
        const N: u32 = 40;
        for i in 0..N {
            let hits = Arc::clone(&hits);
            pool.spawn_with(
                move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                },
                SpawnOptions::default().domain_hint((i % 2) as usize),
            );
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::SeqCst) != N && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), N);
        // A hinted submit is pushed to (and therefore popped from) the
        // hinted cell — the steal sweep never touches injector cells.
        let pops = pool.injector_cell_pops();
        assert_eq!(pops.len(), 2);
        assert!(pops[0] >= u64::from(N / 2), "{pops:?}");
        assert!(pops[1] >= u64::from(N / 2), "{pops:?}");
        // Per-cell counters reconcile exactly with the merged legacy
        // counter, and the live metrics expose per-cell depths.
        assert_eq!(pops.iter().sum::<u64>(), pool.stats().injector_pops);
        // Depths are visible per cell too (all drained by now).
        let depths = pool.injector_cell_depths();
        assert_eq!(depths.len(), 2);
        assert_eq!(depths.iter().sum::<usize>(), 0);
    }

    #[test]
    fn request_classes_all_execute() {
        use std::sync::atomic::AtomicU32;
        let pool = Pool::new(4);
        let hits = Arc::new(AtomicU32::new(0));
        let classes = [
            SpawnOptions::default().priority(Priority::High),
            SpawnOptions::default(),
            SpawnOptions::default().deadline_ns(1),
            SpawnOptions::default().priority(Priority::Background),
        ];
        for opts in classes {
            for _ in 0..25 {
                let hits = Arc::clone(&hits);
                pool.spawn_with(
                    move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                    },
                    opts,
                );
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::SeqCst) != 100 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(
            hits.load(Ordering::SeqCst),
            100,
            "every class drains; lower lanes are not starved once higher lanes empty"
        );
    }

    #[test]
    fn park_telemetry_matches_scheduler_counters() {
        use hermes_telemetry::RingSink;
        let sink = Arc::new(RingSink::new(2));
        let mut pool = Pool::builder()
            .workers(2)
            .spin_budget(1)
            .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        pool.install(|| ());
        // Idle long enough for several park episodes.
        std::thread::sleep(Duration::from_millis(50));
        pool.stop();
        let stats = pool.stats();
        assert!(stats.parks > 0, "{stats:?}");
        let report = sink.report("park-unit", "rt", pool.elapsed_ns() as f64 / 1e9, 0.0);
        let totals = report.totals();
        assert_eq!(totals.parks, stats.parks, "park events == counters");
        assert_eq!(totals.parked_ns, stats.parked_ns);
        // Idle time (spin before the budget, then parked) was charged
        // to the virtual energy model even though no task ran for most
        // of the window.
        assert!(pool.total_energy().unwrap() > 0.0);
    }

    #[test]
    fn elastic_pool_scales_down_to_the_sentinel_and_back_up() {
        use std::sync::atomic::AtomicU32;
        let mut pool = Pool::builder()
            .workers(4)
            .spin_budget(1)
            .elastic(ElasticConfig {
                cooldown_ns: 100_000,
                ..ElasticConfig::default()
            })
            .build();
        // Idle: the scale controller sheds workers one cooldown at a
        // time until only the sentinel is awake.
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.active_workers() > 1 {
            assert!(
                Instant::now() < deadline,
                "pool never scaled down: {} still awake",
                pool.active_workers()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.active_workers(), 1, "the sentinel never sleeps");
        let states = pool.worker_states().expect("elastic pool exposes states");
        assert_eq!(
            states
                .iter()
                .filter(|s| **s == WorkerState::Sleeping)
                .count(),
            3
        );
        // Load: every task completes (the sentinel and the wake signal
        // between them guarantee it), no work is lost to a sleeper.
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::SeqCst) != 64 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 64, "scaled-down pool serves");
        pool.stop();
        let stats = pool.stats();
        assert!(stats.sleeps > 0, "{stats:?}");
        assert!(stats.slept_ns > 0, "{stats:?}");
        // Quiescent: every sleep bracket was closed by exactly one wake
        // (shutdown wakes included), and shutdown left everyone awake.
        assert_eq!(stats.wakes, stats.sleeps, "{stats:?}");
        assert_eq!(pool.active_workers(), 4);
    }

    #[test]
    fn sleep_telemetry_matches_scheduler_counters() {
        use hermes_telemetry::RingSink;
        let sink = Arc::new(RingSink::new(2));
        let mut pool = Pool::builder()
            .workers(2)
            .spin_budget(1)
            .elastic(ElasticConfig {
                cooldown_ns: 100_000,
                ..ElasticConfig::default()
            })
            .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
            .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
            .build();
        pool.install(|| ());
        // Idle long enough for a sleep episode to begin.
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.active_workers() > 1 {
            assert!(Instant::now() < deadline, "no worker slept");
            std::thread::sleep(Duration::from_millis(2));
        }
        pool.stop();
        let stats = pool.stats();
        assert!(stats.sleeps > 0, "{stats:?}");
        let report = sink.report("sleep-unit", "rt", pool.elapsed_ns() as f64 / 1e9, 0.0);
        let totals = report.totals();
        assert_eq!(totals.sleeps, stats.sleeps, "sleep events == counters");
        assert_eq!(totals.slept_ns, stats.slept_ns);
        assert_eq!(totals.wakes, stats.wakes);
        // Slept time is attributed to the power model at park watts.
        assert!(pool.total_energy().unwrap() > 0.0);
    }

    #[test]
    fn elastic_with_parking_disabled_still_sleeps() {
        let mut pool = Pool::builder()
            .workers(2)
            .parking(false)
            .spin_budget(1)
            .elastic(ElasticConfig {
                cooldown_ns: 100_000,
                ..ElasticConfig::default()
            })
            .build();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.active_workers() > 1 {
            assert!(Instant::now() < deadline, "no worker slept");
            std::thread::sleep(Duration::from_millis(2));
        }
        pool.stop();
        // Elastic sleep is independent of the parking machinery: the
        // pool slept without a single park episode.
        assert_eq!(pool.stats().parks, 0, "{:?}", pool.stats());
        assert!(pool.stats().sleeps > 0);
    }

    #[test]
    fn two_pools_coexist() {
        let p1 = Pool::new(2);
        let p2 = Pool::new(2);
        let a = p1.install(|| 1);
        let b = p2.install(|| 2);
        assert_eq!(a + b, 3);
    }

    #[test]
    fn shutdown_is_idempotent_through_drop() {
        let pool = Pool::new(2);
        pool.install(|| ());
        pool.shutdown(); // Drop after shutdown must not double-join.
    }
}
