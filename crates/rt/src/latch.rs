//! Completion latches used to coordinate fork-join tasks.

use std::sync::atomic::{AtomicBool, Ordering};

/// A one-shot completion flag.
///
/// The latch is *pure-spin*: [`set`](Self::set) performs a single release
/// store and touches nothing else afterwards. This is a hard requirement,
/// not an optimisation: latches live on the stack frame of the `join` or
/// `install` that waits on them, and the waiter frees that frame the
/// moment it observes the flag. Any post-store access in `set` (say,
/// signalling a condvar stored next to the flag) would race with that
/// free — the classic fork-join latch use-after-free.
///
/// Workers poll [`probe`](Self::probe) between useful work
/// (leapfrogging); external threads use [`wait`](Self::wait), which polls
/// with a short sleep — `install` happens once per top-level computation,
/// so the microseconds of poll granularity are immaterial.
///
/// ```
/// use hermes_rt::Latch;
/// let latch = Latch::new();
/// assert!(!latch.probe());
/// latch.set();
/// assert!(latch.probe());
/// latch.wait(); // returns immediately once set
/// ```
#[derive(Debug, Default)]
pub struct Latch {
    set: AtomicBool,
}

impl Latch {
    /// A fresh, unset latch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the latch has been set (non-blocking).
    #[must_use]
    pub fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Set the latch.
    ///
    /// This is the last access `set` makes to `self`; the waiter may free
    /// the latch immediately after observing the store.
    pub fn set(&self) {
        self.set.store(true, Ordering::Release);
    }

    /// Block the calling thread until the latch is set, by polling.
    ///
    /// Intended for non-worker threads (e.g. the caller of
    /// [`Pool::install`](crate::Pool::install)); workers should poll
    /// [`probe`](Self::probe) and keep executing tasks instead.
    pub fn wait(&self) {
        let mut spins = 0u32;
        while !self.probe() {
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < 128 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_then_wait_returns() {
        let l = Latch::new();
        l.set();
        l.wait();
        assert!(l.probe());
    }

    #[test]
    fn cross_thread_wakeup() {
        let l = Arc::new(Latch::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            l2.set();
        });
        l.wait();
        assert!(l.probe());
        h.join().unwrap();
    }

    #[test]
    fn probe_is_initially_false() {
        assert!(!Latch::new().probe());
    }

    #[test]
    fn set_is_idempotent() {
        let l = Latch::new();
        l.set();
        l.set();
        assert!(l.probe());
    }
}
