//! Completion latches used to coordinate fork-join tasks.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::task::Waker;

/// A one-shot completion flag.
///
/// The latch is *pure-spin*: [`set`](Self::set) performs a single release
/// store and touches nothing else afterwards. This is a hard requirement,
/// not an optimisation: latches live on the stack frame of the `join` or
/// `install` that waits on them, and the waiter frees that frame the
/// moment it observes the flag. Any post-store access in `set` (say,
/// signalling a condvar stored next to the flag) would race with that
/// free — the classic fork-join latch use-after-free.
///
/// Workers poll [`probe`](Self::probe) between useful work
/// (leapfrogging); external threads use [`wait`](Self::wait), which polls
/// with a short sleep — `install` happens once per top-level computation,
/// so the microseconds of poll granularity are immaterial.
///
/// ```
/// use hermes_rt::Latch;
/// let latch = Latch::new();
/// assert!(!latch.probe());
/// latch.set();
/// assert!(latch.probe());
/// latch.wait(); // returns immediately once set
/// ```
#[derive(Debug, Default)]
pub struct Latch {
    set: AtomicBool,
}

impl Latch {
    /// A fresh, unset latch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the latch has been set (non-blocking).
    #[must_use]
    pub fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Set the latch.
    ///
    /// This is the last access `set` makes to `self`; the waiter may free
    /// the latch immediately after observing the store.
    pub fn set(&self) {
        self.set.store(true, Ordering::Release);
    }

    /// Block the calling thread until the latch is set, by polling.
    ///
    /// Intended for non-worker threads (e.g. the caller of
    /// [`Pool::install`](crate::Pool::install)); workers should poll
    /// [`probe`](Self::probe) and keep executing tasks instead.
    pub fn wait(&self) {
        let mut spins = 0u32;
        while !self.probe() {
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < 128 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }
}

/// A one-shot completion flag with a waker slot, for *heap-shared*
/// completion objects (serving tickets, async latches).
///
/// [`Latch`]'s contract makes `set` a single release store because stack
/// waiters free the latch the instant they observe the flag. A
/// `WakerLatch` lives in shared ownership (an `Arc` held by both setter
/// and waiter), so `set` may do more after publishing the flag: it takes
/// the registered [`Waker`], if any, and wakes it. That post-store access
/// is exactly what `Latch` forbids, which is why this is a separate type
/// rather than a slot grown onto `Latch`.
///
/// The register/set race loses no wakeups: `register` stores the waker
/// under the lock and then re-probes the flag, so either `set`'s take
/// (under the same lock) sees the waker, or the registering thread's
/// re-probe sees the flag and wakes itself.
#[derive(Debug, Default)]
pub struct WakerLatch {
    set: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

impl WakerLatch {
    /// A fresh, unset latch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the latch has been set (non-blocking).
    #[must_use]
    pub fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Set the latch and wake the registered waker, if any.
    pub fn set(&self) {
        self.set.store(true, Ordering::Release);
        let waker = self.waker.lock().take();
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Register `waker` to be woken by [`set`](Self::set), replacing any
    /// previous registration. Returns `true` if the latch is already set
    /// (the waker is then woken immediately instead of stored).
    pub fn register(&self, waker: &Waker) -> bool {
        {
            let mut slot = self.waker.lock();
            if self.probe() {
                // Set won before we stored; don't leave a stale waker.
                drop(slot.take());
                waker.wake_by_ref();
                return true;
            }
            *slot = Some(waker.clone());
        }
        // `set` may have raced between our probe and the store above; its
        // take runs under the lock we just released, so it either saw our
        // waker (and wakes it) or we see the flag here and wake ourselves.
        if self.probe() {
            if let Some(w) = self.waker.lock().take() {
                w.wake();
            }
            return true;
        }
        false
    }

    /// Block the calling thread until the latch is set, by polling (same
    /// cadence as [`Latch::wait`]).
    pub fn wait(&self) {
        let mut spins = 0u32;
        while !self.probe() {
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < 128 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_then_wait_returns() {
        let l = Latch::new();
        l.set();
        l.wait();
        assert!(l.probe());
    }

    #[test]
    fn cross_thread_wakeup() {
        let l = Arc::new(Latch::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            l2.set();
        });
        l.wait();
        assert!(l.probe());
        h.join().unwrap();
    }

    #[test]
    fn probe_is_initially_false() {
        assert!(!Latch::new().probe());
    }

    #[test]
    fn set_is_idempotent() {
        let l = Latch::new();
        l.set();
        l.set();
        assert!(l.probe());
    }

    use std::sync::atomic::{AtomicU32, Ordering as AtomOrd};

    struct CountingWake(AtomicU32);

    impl std::task::Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, AtomOrd::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWake>, Waker) {
        let cw = Arc::new(CountingWake(AtomicU32::new(0)));
        let waker = Waker::from(Arc::clone(&cw));
        (cw, waker)
    }

    #[test]
    fn waker_latch_set_wakes_registered_waker() {
        let (cw, waker) = counting_waker();
        let l = WakerLatch::new();
        assert!(!l.register(&waker));
        assert_eq!(cw.0.load(AtomOrd::SeqCst), 0);
        l.set();
        assert!(l.probe());
        assert_eq!(cw.0.load(AtomOrd::SeqCst), 1);
        // Setting again finds an empty slot: no double wake.
        l.set();
        assert_eq!(cw.0.load(AtomOrd::SeqCst), 1);
    }

    #[test]
    fn waker_latch_register_after_set_wakes_immediately() {
        let (cw, waker) = counting_waker();
        let l = WakerLatch::new();
        l.set();
        assert!(l.register(&waker));
        assert_eq!(cw.0.load(AtomOrd::SeqCst), 1);
    }

    #[test]
    fn waker_latch_reregistration_replaces_previous_waker() {
        let (cw1, w1) = counting_waker();
        let (cw2, w2) = counting_waker();
        let l = WakerLatch::new();
        assert!(!l.register(&w1));
        assert!(!l.register(&w2));
        l.set();
        assert_eq!(cw1.0.load(AtomOrd::SeqCst), 0);
        assert_eq!(cw2.0.load(AtomOrd::SeqCst), 1);
    }

    #[test]
    fn waker_latch_cross_thread_set_wakes() {
        let l = Arc::new(WakerLatch::new());
        let (cw, waker) = counting_waker();
        assert!(!l.register(&waker));
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            l2.set();
        });
        l.wait();
        h.join().unwrap();
        assert_eq!(cw.0.load(AtomOrd::SeqCst), 1);
    }
}
