//! Property tests for the telemetry subsystem: ring wraparound against a
//! sequential model, concurrent writers, and report JSON round-trips.

use hermes_telemetry::{
    Event, EventRing, LatencyHistogram, PowerKind, RingSink, RunReport, StealOutcome,
    TelemetrySink, TransitionKind, TransitionMix, WorkerTelemetry,
};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (any::<u32>(), 0u8..3).prop_map(|(victim, o)| Event::StealAttempt {
            victim,
            outcome: match o {
                0 => StealOutcome::Success,
                1 => StealOutcome::Empty,
                _ => StealOutcome::LostRace,
            },
        }),
        (0u8..4, any::<u32>()).prop_map(|(k, level)| Event::TempoTransition {
            kind: match k {
                0 => TransitionKind::PathDown,
                1 => TransitionKind::RelayUp,
                2 => TransitionKind::WorkloadUp,
                _ => TransitionKind::WorkloadDown,
            },
            level,
        }),
        (1u64..10_000_000).prop_map(|khz| Event::DvfsActuation { freq_khz: khz }),
        (0u64..1_000_000_000_000).prop_map(|uj| Event::EnergySample { microjoules: uj }),
        (0u8..3, 0u64..(1 << 38), 0u64..(1 << 20)).prop_map(|(k, duration_ns, milliwatts)| {
            Event::PowerInterval {
                kind: match k {
                    0 => PowerKind::Busy,
                    1 => PowerKind::Spin,
                    _ => PowerKind::Parked,
                },
                duration_ns,
                milliwatts,
            }
        }),
        (0u64..1_000_000_000_000).prop_map(|uj| Event::RequestEnergy { microjoules: uj }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding is lossless for every representable event.
    #[test]
    fn event_encoding_round_trips(ev in arb_event()) {
        prop_assert_eq!(Event::decode(ev.encode()), Some(ev));
    }

    /// A ring behaves like "keep the last `capacity` of the sequence":
    /// wraparound drops exactly the oldest events, in order.
    #[test]
    fn ring_wraparound_matches_sequential_model(
        events in proptest::collection::vec(arb_event(), 0..300),
        cap in 1usize..64,
    ) {
        let ring = EventRing::new(cap);
        for (i, ev) in events.iter().enumerate() {
            ring.record(i as u64, *ev);
        }
        let cap = ring.capacity();
        prop_assert_eq!(ring.recorded(), events.len() as u64);
        prop_assert_eq!(ring.len(), events.len().min(cap));
        prop_assert_eq!(
            ring.dropped(),
            events.len().saturating_sub(cap) as u64
        );
        let expected: Vec<(u64, Event)> = events
            .iter()
            .enumerate()
            .skip(events.len().saturating_sub(cap))
            .map(|(i, &ev)| (i as u64, ev))
            .collect();
        prop_assert_eq!(ring.snapshot(), expected);
    }

    /// Concurrent writers (beyond the usual one-writer-per-stream
    /// discipline) never corrupt the sink: totals are exact and every
    /// retained slot decodes.
    #[test]
    fn concurrent_writers_keep_tallies_exact(
        per_thread in 1usize..400,
        threads in 2usize..5,
        cap in 1usize..64,
    ) {
        let sink = Arc::new(RingSink::with_ring_capacity(2, cap));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        sink.record(
                            0,
                            i as u64,
                            Event::StealAttempt {
                                victim: 1,
                                outcome: if (i + t) % 3 == 0 {
                                    StealOutcome::Empty
                                } else {
                                    StealOutcome::Success
                                },
                            },
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * per_thread) as u64;
        let report = sink.report("stress", "test", 0.0, 0.0);
        prop_assert_eq!(
            report.per_worker[0].steals + report.per_worker[0].empty_steals,
            total
        );
        prop_assert_eq!(report.per_worker[0].steals, report.steal_matrix[0][1]);
        prop_assert_eq!(sink.ring(0).recorded(), total);
        for (_, ev) in sink.ring(0).snapshot() {
            prop_assert!(matches!(ev, Event::StealAttempt { victim: 1, .. }));
        }
    }

    /// RunReport JSON persistence is lossless for arbitrary counter
    /// values (within exact-integer JSON range).
    #[test]
    fn run_report_json_round_trips(
        steals in proptest::collection::vec(0u64..1_000_000, 1..5),
        elapsed in 0.0f64..1e6,
        energy in 0.0f64..1e9,
    ) {
        let workers = steals.len();
        let report = RunReport {
            schema: RunReport::SCHEMA.to_string(),
            label: "prop \"label\" with\nescapes".to_string(),
            executor: "rt".to_string(),
            workers,
            elapsed_s: elapsed,
            energy_j: energy,
            machine_energy_j: energy / 2.0,
            per_worker: steals
                .iter()
                .map(|&s| WorkerTelemetry {
                    steals: s,
                    empty_steals: s / 2,
                    lost_race_steals: s / 3,
                    transitions: TransitionMix {
                        path_downs: s,
                        relay_ups: s / 4,
                        workload_ups: s / 5,
                        workload_downs: s / 6,
                    },
                    actuations: s / 7,
                    energy_j: energy / workers as f64,
                    parks: s / 8,
                    parked_ns: s.wrapping_mul(1_000),
                    sleeps: s / 15,
                    slept_ns: s.wrapping_mul(2_000),
                    wakes: s / 16,
                    future_polls: s / 9,
                    future_wakes: s / 10,
                    future_repushes: s / 11,
                    span_begins: s / 12,
                    span_ends: s / 13,
                    power_busy_ns: s.wrapping_mul(500),
                    power_spin_ns: s.wrapping_mul(40),
                    power_parked_ns: s.wrapping_mul(900),
                    power_busy_j: energy / (workers as f64 * 2.0),
                    power_spin_j: energy / (workers as f64 * 32.0),
                    power_parked_j: energy / (workers as f64 * 64.0),
                    dropped_events: s / 14,
                })
                .collect(),
            steal_matrix: (0..workers)
                .map(|i| (0..workers).map(|j| if i == j { 0 } else { steals[j] }).collect())
                .collect(),
            steal_distance_hist: steals.iter().map(|&s| s % 97).collect(),
            latency_hist: {
                let mut h = LatencyHistogram::new();
                for &s in &steals {
                    h.record(s.wrapping_mul(41));
                }
                h
            },
            energy_hist: {
                let mut h = LatencyHistogram::new();
                for &s in &steals {
                    h.record(s.wrapping_mul(23));
                }
                h
            },
        };
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        prop_assert_eq!(parsed, report);
    }

    /// The log-bucketed histogram's quantiles bracket the true
    /// percentiles from below, within the documented 1/16 relative
    /// bucket width.
    #[test]
    fn latency_quantiles_bound_true_percentiles(
        samples in proptest::collection::vec(0u64..10_000_000_000, 1..200),
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = h.quantile(q).unwrap();
            prop_assert!(est <= truth, "estimate {} above truth {}", est, truth);
            prop_assert!(
                truth - est <= truth / 16 + 1,
                "estimate {} too far below truth {}",
                est,
                truth
            );
        }
    }
}
