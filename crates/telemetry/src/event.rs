//! Telemetry events and their fixed-width encoding.
//!
//! Events are encoded into a single `u64` word so the
//! [`EventRing`](crate::EventRing) can stay lock-free with plain atomics
//! and zero allocation on the record path. The layout reserves the top
//! four bits for a tag (tag `0` marks a vacant ring slot) and packs each
//! variant's payload into the remaining sixty.

use hermes_core::TransitionKind;

/// Outcome of one steal attempt, as seen by the thief.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StealOutcome {
    /// A task was transferred from the victim.
    Success,
    /// The victim's deque was empty before the thief committed.
    Empty,
    /// The victim had work but the thief lost the race for it (to the
    /// owner or another thief) — contention, not starvation.
    LostRace,
}

impl StealOutcome {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StealOutcome::Success => "success",
            StealOutcome::Empty => "empty",
            StealOutcome::LostRace => "lost_race",
        }
    }
}

/// Lifecycle phase of a causal span (`hermes-obs` tracing).
///
/// A span id is minted once per request or spawned task; the host then
/// brackets each phase of that task's life with a
/// [`Event::SpanBegin`]/[`Event::SpanEnd`] pair carrying the same id.
/// [`Complete`](SpanPhase::Complete) is terminal and instant-like: only
/// a `SpanEnd` is recorded for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanPhase {
    /// Admission: submit-time until the pool accepts the work.
    Inject,
    /// Sitting in a deque or the injector waiting for an executor.
    Queued,
    /// Being transferred by a thief (simulator: the steal-cost stall).
    Steal,
    /// An executor is running the task (one poll episode, or the whole
    /// closure for run-once requests).
    Poll,
    /// Pending off-queue: the task parked its waker and occupies no
    /// worker; ends on the stream that fired the wake.
    ParkWait,
    /// Terminal marker: the request's result was published.
    Complete,
}

impl SpanPhase {
    /// All phases, in code order.
    pub const ALL: [SpanPhase; 6] = [
        SpanPhase::Inject,
        SpanPhase::Queued,
        SpanPhase::Steal,
        SpanPhase::Poll,
        SpanPhase::ParkWait,
        SpanPhase::Complete,
    ];

    /// Short label for reports and trace exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Inject => "inject",
            SpanPhase::Queued => "queued",
            SpanPhase::Steal => "steal",
            SpanPhase::Poll => "poll",
            SpanPhase::ParkWait => "park_wait",
            SpanPhase::Complete => "complete",
        }
    }
}

/// Watts-class of a [`Event::PowerInterval`]: what the worker was doing
/// while it drew the interval's power.
///
/// The three classes mirror the emulated-DVFS cost model: `Busy` draws
/// frequency-dependent power while executing, `Spin` draws busy power at
/// the current operating point while idle-spinning for work, and
/// `Parked` draws the park fraction. The class is what lets the energy
/// ledger split "joules doing requests" from "joules keeping cores
/// warm".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PowerKind {
    /// Executing a task at some DVFS operating point.
    Busy,
    /// Idle-spinning (stealing sweeps, bounded spin before parking) at
    /// busy power for the current frequency.
    Spin,
    /// Parked on the pool's condvar at the park power fraction.
    Parked,
}

impl PowerKind {
    /// All kinds, in code order.
    pub const ALL: [PowerKind; 3] = [PowerKind::Busy, PowerKind::Spin, PowerKind::Parked];

    /// Short label for reports and trace exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PowerKind::Busy => "busy",
            PowerKind::Spin => "spin",
            PowerKind::Parked => "parked",
        }
    }
}

/// Why a sleeping worker woke (carried by [`Event::WorkerWake`]).
///
/// Elastic sleep has no timeout — a sleeper stays down until something
/// names a reason to get up, and the reason is worth keeping: a pool
/// that wakes mostly on `Signal` is tracking load, one that wakes
/// mostly on `SentinelRotation` is churning its sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WakeReason {
    /// A load signal (scale-up decision or submitted work) woke the
    /// worker to absorb demand.
    Signal,
    /// The sentinel rotated: this worker was woken to take over the
    /// stay-awake duty so the previous sentinel could sleep.
    SentinelRotation,
    /// Pool shutdown: every sleeper is woken to exit.
    Shutdown,
}

impl WakeReason {
    /// All reasons, in code order.
    pub const ALL: [WakeReason; 3] = [
        WakeReason::Signal,
        WakeReason::SentinelRotation,
        WakeReason::Shutdown,
    ];

    /// Short label for reports and trace exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WakeReason::Signal => "signal",
            WakeReason::SentinelRotation => "sentinel_rotation",
            WakeReason::Shutdown => "shutdown",
        }
    }
}

/// One telemetry event, attributed by the recording host to a worker
/// stream (or the machine stream) and a host-defined timestamp.
///
/// The variants are exactly the signals the perf roadmap needs: steal
/// outcomes per victim (deque ablation, locality-aware victim
/// selection), tempo transitions (controller semantics), DVFS actuations
/// (transition overhead), energy samples (headline metric), worker
/// park/unpark brackets (idle-energy attribution under open-loop load),
/// and per-request latencies (the serving tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A steal attempt against `victim` and how it ended.
    StealAttempt {
        /// The victim worker probed.
        victim: u32,
        /// How the attempt ended.
        outcome: StealOutcome,
    },
    /// A tempo transition of the stream's worker.
    TempoTransition {
        /// Why the tempo moved.
        kind: TransitionKind,
        /// Logical tempo level after the transition.
        level: u32,
    },
    /// The controller actuated a frequency for the stream's worker.
    DvfsActuation {
        /// The requested operating point, kHz.
        freq_khz: u64,
    },
    /// An energy contribution in microjoules. Streams accumulate samples,
    /// so hosts may emit either periodic deltas (the simulator's supply
    /// meter) or one final total per worker (the runtime's emulated DVFS
    /// accountant).
    EnergySample {
        /// Energy contributed since the previous sample, µJ.
        microjoules: u64,
    },
    /// The stream's worker gave up its bounded idle spin and parked on
    /// the pool's condvar. Paired with [`Event::WorkerUnpark`]; the
    /// park/unpark bracket is what makes idle-thief energy attributable
    /// (a parked worker burns park watts, a spinning one burns busy
    /// watts at its tempo frequency).
    WorkerPark,
    /// The stream's worker woke from a park episode.
    WorkerUnpark {
        /// Length of the completed park episode, ns.
        parked_ns: u64,
    },
    /// One serving request completed on the stream's worker.
    RequestLatency {
        /// Submit-to-completion latency, ns.
        ns: u64,
    },
    /// The stream's worker polled a future task once (the poll may have
    /// returned `Ready` or `Pending`; completion is visible as the
    /// absence of further polls).
    TaskPoll,
    /// A future task's waker fired on this stream (a worker stream when
    /// the waking code ran on a pool worker, the machine stream for
    /// external wakers such as timer drivers).
    TaskWake,
    /// A future task was re-enqueued for another poll — by its waker
    /// (wake while idle) or by the poller itself (wake raced with the
    /// poll). Recorded on the stream that performed the re-push.
    TaskRepush,
    /// A causal span entered `phase` (see [`SpanPhase`]). `id` is the
    /// request/task identity minted at submit or spawn; 56 bits are
    /// encoded, so hosts must mint below 2^56 (a monotone counter takes
    /// two millennia at a billion requests per second).
    SpanBegin {
        /// Span identity (request or task id).
        id: u64,
        /// The phase being entered.
        phase: SpanPhase,
    },
    /// A causal span left `phase`. For [`SpanPhase::Complete`] this is
    /// the terminal instant — no matching begin exists.
    SpanEnd {
        /// Span identity (request or task id).
        id: u64,
        /// The phase being left.
        phase: SpanPhase,
    },
    /// A constant-power interval on the stream's worker. Recorded at the
    /// interval's **end** (the [`Event::WorkerUnpark`] convention), so
    /// the interval covers `[at_ns - duration_ns, at_ns]`. The energy it
    /// represents is exactly `milliwatts × duration_ns` picojoules —
    /// what the emulated-DVFS accountant (rt) or the engine's per-core
    /// integrator (sim) charged for the slice — so summing interval
    /// energy reproduces the cumulative meters, and the
    /// [`obs` ledger](Event::PowerInterval) can charge each slice to the
    /// span that was occupying the worker.
    PowerInterval {
        /// What the worker was doing (busy / spin / parked).
        kind: PowerKind,
        /// Interval length, ns (saturates at 2³⁸ − 1 ≈ 274 s).
        duration_ns: u64,
        /// Average power over the interval, mW (saturates at
        /// 2²⁰ − 1 ≈ 1048 W — far beyond any per-core draw).
        milliwatts: u64,
    },
    /// One serving request completed and this is the energy it was
    /// charged: the sum of the executing worker's busy-power draw over
    /// the request's poll episodes. The per-request twin of
    /// [`Event::RequestLatency`], recorded on the same stream at the
    /// same completion instant.
    RequestEnergy {
        /// Energy attributed to the completed request, µJ.
        microjoules: u64,
    },
    /// The stream's worker entered elastic sleep: an *indefinite* park
    /// with no 1 ms re-check, entered only when the `ElasticPolicy`
    /// allows it (the sentinel invariant keeps at least one worker
    /// awake). Distinct from [`Event::WorkerPark`] — a parked worker is
    /// napping between re-checks, a sleeping worker is out of the pool's
    /// active set until a [`WakeReason`] names why it should return.
    WorkerSleep,
    /// The stream's worker woke from an elastic sleep episode. The
    /// sleep/wake bracket mirrors park/unpark: duration rides the wake.
    WorkerWake {
        /// Why the sleeper was woken.
        reason: WakeReason,
        /// Length of the completed sleep episode, ns (saturates at
        /// 2⁵⁶ − 1 ≈ 2.3 years).
        slept_ns: u64,
    },
}

impl Event {
    /// An [`Event::EnergySample`] from a joule value: clamped at zero
    /// and converted to µJ. The single home of that conversion — every
    /// host (rt energy flush, sim finalizer, supply meter) goes through
    /// it. Values above the 60-bit payload saturate on encode; hosts
    /// that could plausibly exceed it should use
    /// [`energy_samples_from_joules`](Self::energy_samples_from_joules)
    /// instead, which splits rather than clamps.
    #[must_use]
    pub fn energy_from_joules(joules: f64) -> Event {
        Event::EnergySample {
            microjoules: (joules.max(0.0) * 1e6) as u64,
        }
    }

    /// Split an energy contribution into however many
    /// [`Event::EnergySample`] words the 60-bit payload field needs, so
    /// no joules are silently clamped away. Streams accumulate samples,
    /// so emitting the chunks back-to-back is equivalent to one event.
    /// Always yields at least one event (a zero contribution is a
    /// recorded heartbeat, matching the single-event helpers).
    pub fn energy_samples(microjoules: u64) -> impl Iterator<Item = Event> {
        let mut remaining = microjoules;
        let mut first = true;
        std::iter::from_fn(move || {
            if !first && remaining == 0 {
                return None;
            }
            first = false;
            let chunk = remaining.min(PAYLOAD_MASK);
            remaining -= chunk;
            Some(Event::EnergySample { microjoules: chunk })
        })
    }

    /// [`energy_samples`](Self::energy_samples) from a joule value:
    /// clamped at zero, converted to µJ, split across events as needed.
    pub fn energy_samples_from_joules(joules: f64) -> impl Iterator<Item = Event> {
        Self::energy_samples((joules.max(0.0) * 1e6) as u64)
    }
}

const TAG_SHIFT: u32 = 60;
const TAG_STEAL: u64 = 1;
const TAG_TEMPO: u64 = 2;
const TAG_DVFS: u64 = 3;
const TAG_ENERGY: u64 = 4;
const TAG_PARK: u64 = 5;
const TAG_UNPARK: u64 = 6;
const TAG_LATENCY: u64 = 7;
const TAG_TASK_POLL: u64 = 8;
const TAG_TASK_WAKE: u64 = 9;
const TAG_TASK_REPUSH: u64 = 10;
const TAG_SPAN_BEGIN: u64 = 11;
const TAG_SPAN_END: u64 = 12;
const TAG_POWER: u64 = 13;
const TAG_REQ_ENERGY: u64 = 14;
/// The last free tag carries *both* elastic lifecycle events,
/// discriminated by payload bit 59: clear = sleep (remaining payload
/// must be zero, the payload-free posture), set = wake (bits 56..59 the
/// 3-bit [`WakeReason`] code, bits 0..56 the slept nanoseconds).
const TAG_ELASTIC: u64 = 15;

const PAYLOAD_MASK: u64 = (1 << TAG_SHIFT) - 1;
const FREQ_MASK: u64 = (1 << 48) - 1;
/// Span payload layout: bits 0..56 hold the id, bits 56..59 the phase.
const SPAN_ID_MASK: u64 = (1 << 56) - 1;
const SPAN_PHASE_SHIFT: u32 = 56;
/// Power-interval payload layout: bits 0..38 duration (ns), bits 38..58
/// milliwatts, bits 58..60 the watts-class.
const POWER_NS_MASK: u64 = (1 << 38) - 1;
const POWER_MW_SHIFT: u32 = 38;
const POWER_MW_MASK: u64 = (1 << 20) - 1;
const POWER_KIND_SHIFT: u32 = 58;
/// Elastic payload layout: bit 59 the sleep/wake discriminator, bits
/// 56..59 the wake reason, bits 0..56 the slept nanoseconds.
const ELASTIC_WAKE_BIT: u64 = 1 << 59;
const ELASTIC_REASON_SHIFT: u32 = 56;
const ELASTIC_REASON_MASK: u64 = 0b111;
const ELASTIC_NS_MASK: u64 = (1 << 56) - 1;

fn outcome_code(o: StealOutcome) -> u64 {
    match o {
        StealOutcome::Success => 0,
        StealOutcome::Empty => 1,
        StealOutcome::LostRace => 2,
    }
}

fn kind_code(k: TransitionKind) -> u64 {
    match k {
        TransitionKind::PathDown => 0,
        TransitionKind::RelayUp => 1,
        TransitionKind::WorkloadUp => 2,
        TransitionKind::WorkloadDown => 3,
    }
}

fn phase_code(p: SpanPhase) -> u64 {
    match p {
        SpanPhase::Inject => 0,
        SpanPhase::Queued => 1,
        SpanPhase::Steal => 2,
        SpanPhase::Poll => 3,
        SpanPhase::ParkWait => 4,
        SpanPhase::Complete => 5,
    }
}

fn phase_from_code(code: u64) -> Option<SpanPhase> {
    Some(match code {
        0 => SpanPhase::Inject,
        1 => SpanPhase::Queued,
        2 => SpanPhase::Steal,
        3 => SpanPhase::Poll,
        4 => SpanPhase::ParkWait,
        5 => SpanPhase::Complete,
        _ => return None,
    })
}

fn span_payload(id: u64, phase: SpanPhase) -> u64 {
    (phase_code(phase) << SPAN_PHASE_SHIFT) | id.min(SPAN_ID_MASK)
}

fn power_kind_code(k: PowerKind) -> u64 {
    match k {
        PowerKind::Busy => 0,
        PowerKind::Spin => 1,
        PowerKind::Parked => 2,
    }
}

fn power_kind_from_code(code: u64) -> Option<PowerKind> {
    Some(match code {
        0 => PowerKind::Busy,
        1 => PowerKind::Spin,
        2 => PowerKind::Parked,
        _ => return None,
    })
}

fn wake_reason_code(r: WakeReason) -> u64 {
    match r {
        WakeReason::Signal => 0,
        WakeReason::SentinelRotation => 1,
        WakeReason::Shutdown => 2,
    }
}

fn wake_reason_from_code(code: u64) -> Option<WakeReason> {
    Some(match code {
        0 => WakeReason::Signal,
        1 => WakeReason::SentinelRotation,
        2 => WakeReason::Shutdown,
        _ => return None,
    })
}

impl Event {
    /// Pack the event into one word. Oversized payloads saturate at
    /// their field maximum (48 bits for frequencies, 60 bits for
    /// energy — a 281 THz clock or 1.15 × 10¹² J sample, far beyond
    /// anything real) rather than corrupting the tag or wrapping to an
    /// arbitrary small value.
    #[must_use]
    pub fn encode(self) -> u64 {
        match self {
            Event::StealAttempt { victim, outcome } => {
                (TAG_STEAL << TAG_SHIFT) | (outcome_code(outcome) << 32) | u64::from(victim)
            }
            Event::TempoTransition { kind, level } => {
                (TAG_TEMPO << TAG_SHIFT) | (kind_code(kind) << 32) | u64::from(level)
            }
            Event::DvfsActuation { freq_khz } => (TAG_DVFS << TAG_SHIFT) | freq_khz.min(FREQ_MASK),
            Event::EnergySample { microjoules } => {
                (TAG_ENERGY << TAG_SHIFT) | microjoules.min(PAYLOAD_MASK)
            }
            Event::WorkerPark => TAG_PARK << TAG_SHIFT,
            Event::WorkerUnpark { parked_ns } => {
                (TAG_UNPARK << TAG_SHIFT) | parked_ns.min(PAYLOAD_MASK)
            }
            Event::RequestLatency { ns } => (TAG_LATENCY << TAG_SHIFT) | ns.min(PAYLOAD_MASK),
            Event::TaskPoll => TAG_TASK_POLL << TAG_SHIFT,
            Event::TaskWake => TAG_TASK_WAKE << TAG_SHIFT,
            Event::TaskRepush => TAG_TASK_REPUSH << TAG_SHIFT,
            Event::SpanBegin { id, phase } => {
                (TAG_SPAN_BEGIN << TAG_SHIFT) | span_payload(id, phase)
            }
            Event::SpanEnd { id, phase } => (TAG_SPAN_END << TAG_SHIFT) | span_payload(id, phase),
            Event::PowerInterval {
                kind,
                duration_ns,
                milliwatts,
            } => {
                (TAG_POWER << TAG_SHIFT)
                    | (power_kind_code(kind) << POWER_KIND_SHIFT)
                    | (milliwatts.min(POWER_MW_MASK) << POWER_MW_SHIFT)
                    | duration_ns.min(POWER_NS_MASK)
            }
            Event::RequestEnergy { microjoules } => {
                (TAG_REQ_ENERGY << TAG_SHIFT) | microjoules.min(PAYLOAD_MASK)
            }
            Event::WorkerSleep => TAG_ELASTIC << TAG_SHIFT,
            Event::WorkerWake { reason, slept_ns } => {
                (TAG_ELASTIC << TAG_SHIFT)
                    | ELASTIC_WAKE_BIT
                    | (wake_reason_code(reason) << ELASTIC_REASON_SHIFT)
                    | slept_ns.min(ELASTIC_NS_MASK)
            }
        }
    }

    /// Unpack a word produced by [`encode`](Self::encode); `None` for the
    /// vacant-slot sentinel (tag 0) or any malformed word.
    #[must_use]
    pub fn decode(word: u64) -> Option<Event> {
        let payload = word & PAYLOAD_MASK;
        match word >> TAG_SHIFT {
            TAG_STEAL => {
                let outcome = match payload >> 32 {
                    0 => StealOutcome::Success,
                    1 => StealOutcome::Empty,
                    2 => StealOutcome::LostRace,
                    _ => return None,
                };
                Some(Event::StealAttempt {
                    victim: (payload & u64::from(u32::MAX)) as u32,
                    outcome,
                })
            }
            TAG_TEMPO => {
                let kind = match payload >> 32 {
                    0 => TransitionKind::PathDown,
                    1 => TransitionKind::RelayUp,
                    2 => TransitionKind::WorkloadUp,
                    3 => TransitionKind::WorkloadDown,
                    _ => return None,
                };
                Some(Event::TempoTransition {
                    kind,
                    level: (payload & u64::from(u32::MAX)) as u32,
                })
            }
            TAG_DVFS => Some(Event::DvfsActuation { freq_khz: payload }),
            TAG_ENERGY => Some(Event::EnergySample {
                microjoules: payload,
            }),
            TAG_PARK if payload == 0 => Some(Event::WorkerPark),
            TAG_UNPARK => Some(Event::WorkerUnpark { parked_ns: payload }),
            TAG_LATENCY => Some(Event::RequestLatency { ns: payload }),
            TAG_TASK_POLL if payload == 0 => Some(Event::TaskPoll),
            TAG_TASK_WAKE if payload == 0 => Some(Event::TaskWake),
            TAG_TASK_REPUSH if payload == 0 => Some(Event::TaskRepush),
            TAG_SPAN_BEGIN => Some(Event::SpanBegin {
                id: payload & SPAN_ID_MASK,
                phase: phase_from_code(payload >> SPAN_PHASE_SHIFT)?,
            }),
            TAG_SPAN_END => Some(Event::SpanEnd {
                id: payload & SPAN_ID_MASK,
                phase: phase_from_code(payload >> SPAN_PHASE_SHIFT)?,
            }),
            TAG_POWER => Some(Event::PowerInterval {
                kind: power_kind_from_code(payload >> POWER_KIND_SHIFT)?,
                duration_ns: payload & POWER_NS_MASK,
                milliwatts: (payload >> POWER_MW_SHIFT) & POWER_MW_MASK,
            }),
            TAG_REQ_ENERGY => Some(Event::RequestEnergy {
                microjoules: payload,
            }),
            TAG_ELASTIC if payload == 0 => Some(Event::WorkerSleep),
            TAG_ELASTIC if payload & ELASTIC_WAKE_BIT != 0 => Some(Event::WorkerWake {
                reason: wake_reason_from_code(
                    (payload >> ELASTIC_REASON_SHIFT) & ELASTIC_REASON_MASK,
                )?,
                slept_ns: payload & ELASTIC_NS_MASK,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let events = [
            Event::StealAttempt {
                victim: 17,
                outcome: StealOutcome::Success,
            },
            Event::StealAttempt {
                victim: u32::MAX,
                outcome: StealOutcome::Empty,
            },
            Event::StealAttempt {
                victim: 0,
                outcome: StealOutcome::LostRace,
            },
            Event::TempoTransition {
                kind: TransitionKind::PathDown,
                level: 3,
            },
            Event::TempoTransition {
                kind: TransitionKind::RelayUp,
                level: 0,
            },
            Event::TempoTransition {
                kind: TransitionKind::WorkloadUp,
                level: 60,
            },
            Event::TempoTransition {
                kind: TransitionKind::WorkloadDown,
                level: 1,
            },
            Event::DvfsActuation {
                freq_khz: 2_400_000,
            },
            Event::EnergySample {
                microjoules: 123_456_789,
            },
            Event::WorkerPark,
            Event::WorkerUnpark {
                parked_ns: 1_500_000,
            },
            Event::RequestLatency { ns: 42_000 },
            Event::TaskPoll,
            Event::TaskWake,
            Event::TaskRepush,
            Event::RequestEnergy {
                microjoules: 987_654,
            },
            Event::WorkerSleep,
        ];
        for ev in events {
            assert_eq!(Event::decode(ev.encode()), Some(ev), "{ev:?}");
        }
        // Every wake reason round-trips with boundary sleep durations.
        for reason in WakeReason::ALL {
            for slept_ns in [0u64, 1, 2_500_000_000, ELASTIC_NS_MASK] {
                let ev = Event::WorkerWake { reason, slept_ns };
                assert_eq!(Event::decode(ev.encode()), Some(ev), "{ev:?}");
            }
        }
        // Every (phase, begin/end) span combination round-trips too.
        for phase in SpanPhase::ALL {
            for id in [0u64, 1, 12_345, SPAN_ID_MASK] {
                for ev in [Event::SpanBegin { id, phase }, Event::SpanEnd { id, phase }] {
                    assert_eq!(Event::decode(ev.encode()), Some(ev), "{ev:?}");
                }
            }
        }
        // Every power-interval kind round-trips with full-width fields.
        for kind in PowerKind::ALL {
            for (duration_ns, milliwatts) in [
                (0u64, 0u64),
                (1, 1),
                (1_000_000_000, 8_000),
                (POWER_NS_MASK, POWER_MW_MASK),
            ] {
                let ev = Event::PowerInterval {
                    kind,
                    duration_ns,
                    milliwatts,
                };
                assert_eq!(Event::decode(ev.encode()), Some(ev), "{ev:?}");
            }
        }
    }

    #[test]
    fn vacant_sentinel_decodes_to_none() {
        assert_eq!(Event::decode(0), None);
        // Tag 15 (the last tag, shared by sleep/wake) with the wake bit
        // clear and stray payload bits set is neither a sleep (payload
        // must be zero) nor a wake (bit 59 must be set): malformed.
        assert_eq!(Event::decode((TAG_ELASTIC << TAG_SHIFT) | 42), None);
        // A wake word with the invalid reason codes (3..8).
        for code in 3u64..8 {
            assert_eq!(
                Event::decode(
                    (TAG_ELASTIC << TAG_SHIFT)
                        | ELASTIC_WAKE_BIT
                        | (code << ELASTIC_REASON_SHIFT)
                        | 42
                ),
                None
            );
        }
        // Steal with an invalid outcome code.
        assert_eq!(Event::decode((TAG_STEAL << TAG_SHIFT) | (3 << 32)), None);
        // Power interval with the invalid kind code (3).
        assert_eq!(
            Event::decode((TAG_POWER << TAG_SHIFT) | (3 << POWER_KIND_SHIFT) | 42),
            None
        );
        // Span words with an invalid phase code (6, 7).
        assert_eq!(
            Event::decode((TAG_SPAN_BEGIN << TAG_SHIFT) | (6 << SPAN_PHASE_SHIFT)),
            None
        );
        assert_eq!(
            Event::decode((TAG_SPAN_END << TAG_SHIFT) | (7 << SPAN_PHASE_SHIFT) | 42),
            None
        );
    }

    #[test]
    fn span_ids_saturate_at_fifty_six_bits() {
        // Oversized ids clamp to the field maximum instead of bleeding
        // into the phase bits or the tag.
        for id in [u64::MAX, SPAN_ID_MASK + 1] {
            match Event::decode(
                Event::SpanBegin {
                    id,
                    phase: SpanPhase::Poll,
                }
                .encode(),
            ) {
                Some(Event::SpanBegin { id, phase }) => {
                    assert_eq!(id, SPAN_ID_MASK);
                    assert_eq!(phase, SpanPhase::Poll);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn phase_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            SpanPhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), SpanPhase::ALL.len());
    }

    #[test]
    fn oversized_payloads_saturate_into_their_field() {
        // Saturation, not truncation: one-past-the-field must clamp to
        // the field maximum, not wrap to a small value.
        for freq_khz in [u64::MAX, (1 << 48) + 1000] {
            match Event::decode(Event::DvfsActuation { freq_khz }.encode()) {
                Some(Event::DvfsActuation { freq_khz }) => assert_eq!(freq_khz, FREQ_MASK),
                other => panic!("unexpected {other:?}"),
            }
        }
        match Event::decode(
            Event::EnergySample {
                microjoules: u64::MAX,
            }
            .encode(),
        ) {
            Some(Event::EnergySample { microjoules }) => assert_eq!(microjoules, PAYLOAD_MASK),
            other => panic!("unexpected {other:?}"),
        }
        match Event::decode(
            Event::WorkerUnpark {
                parked_ns: u64::MAX,
            }
            .encode(),
        ) {
            Some(Event::WorkerUnpark { parked_ns }) => assert_eq!(parked_ns, PAYLOAD_MASK),
            other => panic!("unexpected {other:?}"),
        }
        match Event::decode(Event::RequestLatency { ns: u64::MAX }.encode()) {
            Some(Event::RequestLatency { ns }) => assert_eq!(ns, PAYLOAD_MASK),
            other => panic!("unexpected {other:?}"),
        }
        match Event::decode(
            Event::RequestEnergy {
                microjoules: u64::MAX,
            }
            .encode(),
        ) {
            Some(Event::RequestEnergy { microjoules }) => assert_eq!(microjoules, PAYLOAD_MASK),
            other => panic!("unexpected {other:?}"),
        }
        // Power-interval fields saturate independently without bleeding
        // into each other or the kind bits.
        match Event::decode(
            Event::PowerInterval {
                kind: PowerKind::Spin,
                duration_ns: u64::MAX,
                milliwatts: u64::MAX,
            }
            .encode(),
        ) {
            Some(Event::PowerInterval {
                kind,
                duration_ns,
                milliwatts,
            }) => {
                assert_eq!(kind, PowerKind::Spin);
                assert_eq!(duration_ns, POWER_NS_MASK);
                assert_eq!(milliwatts, POWER_MW_MASK);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Oversized sleep durations clamp into the 56-bit field without
        // bleeding into the reason bits or the wake discriminator.
        for slept_ns in [u64::MAX, ELASTIC_NS_MASK + 1] {
            match Event::decode(
                Event::WorkerWake {
                    reason: WakeReason::SentinelRotation,
                    slept_ns,
                }
                .encode(),
            ) {
                Some(Event::WorkerWake { reason, slept_ns }) => {
                    assert_eq!(reason, WakeReason::SentinelRotation);
                    assert_eq!(slept_ns, ELASTIC_NS_MASK);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // A park word with payload bits set is malformed, not a park.
        assert_eq!(Event::decode((TAG_PARK << TAG_SHIFT) | 1), None);
        // Same for the payload-free task events.
        assert_eq!(Event::decode((TAG_TASK_POLL << TAG_SHIFT) | 1), None);
        assert_eq!(Event::decode((TAG_TASK_WAKE << TAG_SHIFT) | 1), None);
        assert_eq!(Event::decode((TAG_TASK_REPUSH << TAG_SHIFT) | 1), None);
    }

    #[test]
    fn outcome_labels() {
        assert_eq!(StealOutcome::Success.label(), "success");
        assert_eq!(StealOutcome::Empty.label(), "empty");
        assert_eq!(StealOutcome::LostRace.label(), "lost_race");
    }

    #[test]
    fn wake_reason_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            WakeReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), WakeReason::ALL.len());
    }

    #[test]
    fn power_kind_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            PowerKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), PowerKind::ALL.len());
    }

    #[test]
    fn energy_splitting_never_clamps_joules_away() {
        // At the field boundary: exactly one event, the full value.
        let at_mask: Vec<_> = Event::energy_samples(PAYLOAD_MASK).collect();
        assert_eq!(
            at_mask,
            vec![Event::EnergySample {
                microjoules: PAYLOAD_MASK
            }]
        );
        // One past the boundary: two events, nothing lost.
        let past: Vec<_> = Event::energy_samples(PAYLOAD_MASK + 1).collect();
        assert_eq!(
            past,
            vec![
                Event::EnergySample {
                    microjoules: PAYLOAD_MASK
                },
                Event::EnergySample { microjoules: 1 },
            ]
        );
        // The worst case splits into chunks that sum back exactly, and
        // every chunk survives its own encode round-trip un-clamped.
        let mut total = 0u64;
        for ev in Event::energy_samples(u64::MAX) {
            assert_eq!(Event::decode(ev.encode()), Some(ev));
            let Event::EnergySample { microjoules } = ev else {
                panic!("unexpected {ev:?}");
            };
            total += microjoules;
        }
        assert_eq!(total, u64::MAX);
        // Zero still yields the heartbeat sample.
        assert_eq!(
            Event::energy_samples(0).collect::<Vec<_>>(),
            vec![Event::EnergySample { microjoules: 0 }]
        );
        // The joule-denominated form agrees with the single-event helper
        // for in-range values.
        let single: Vec<_> = Event::energy_samples_from_joules(1.5).collect();
        assert_eq!(single, vec![Event::energy_from_joules(1.5)]);
    }
}
