//! The fixed-capacity, lock-free event ring.

use crate::Event;
use std::sync::atomic::{AtomicU64, Ordering};

/// A bounded, lock-free ring of telemetry events.
///
/// Writers claim a ticket from a monotone counter with one `fetch_add`
/// and store the encoded event (plus its timestamp) into the ticket's
/// slot — no locks, no allocation, wait-free per record. Once the ring
/// wraps, old events are overwritten; [`recorded`](Self::recorded) keeps
/// the true total so [`dropped`](Self::dropped) reports how much history
/// was lost.
///
/// The intended discipline is single-writer per ring (each worker owns
/// its stream), matching the work-stealing deque's ownership model; the
/// ring nevertheless tolerates concurrent writers — tickets never
/// collide, and on wraparound races a slot holds one writer's complete
/// event (the word and its timestamp are separate atomics, so a stamp
/// may pair with a neighbouring lap's event; snapshots are taken
/// quiescently, after the run, where no such race exists).
///
/// ```
/// use hermes_telemetry::{Event, EventRing, StealOutcome};
/// let ring = EventRing::new(4);
/// for v in 0..6u32 {
///     ring.record(v as u64, Event::StealAttempt { victim: v, outcome: StealOutcome::Empty });
/// }
/// assert_eq!(ring.recorded(), 6);
/// assert_eq!(ring.dropped(), 2); // capacity 4: the two oldest fell off
/// let kept: Vec<u32> = ring
///     .snapshot()
///     .iter()
///     .map(|&(_, ev)| match ev {
///         Event::StealAttempt { victim, .. } => victim,
///         _ => unreachable!(),
///     })
///     .collect();
/// assert_eq!(kept, vec![2, 3, 4, 5]);
/// ```
#[derive(Debug)]
pub struct EventRing {
    /// Total events ever recorded; slot index = ticket & mask.
    head: AtomicU64,
    words: Box<[AtomicU64]>,
    stamps: Box<[AtomicU64]>,
    mask: u64,
}

/// Default per-stream capacity: enough for the trace tail of a long run
/// without dominating sink memory (2 × 8 B × 4096 = 64 KiB per stream).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

impl EventRing {
    /// A ring holding at most `capacity` events (rounded up to a power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let cap = capacity.next_power_of_two();
        EventRing {
            head: AtomicU64::new(0),
            words: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            stamps: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap as u64 - 1,
        }
    }

    /// Maximum number of events retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Record `event` with a host-defined timestamp (virtual nanoseconds
    /// in the simulator, nanoseconds since pool start in the runtime).
    pub fn record(&self, at_ns: u64, event: Event) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (ticket & self.mask) as usize;
        self.stamps[idx].store(at_ns, Ordering::Relaxed);
        self.words[idx].store(event.encode(), Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.recorded().min(self.mask + 1)) as usize
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Events lost to wraparound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.mask + 1)
    }

    /// The retained events, oldest first, as `(at_ns, event)` pairs.
    ///
    /// Meant to be called after the run, when writers are quiescent; a
    /// concurrent snapshot is memory-safe but may skip slots that are
    /// mid-overwrite.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(u64, Event)> {
        let head = self.recorded();
        let retained = head.min(self.mask + 1);
        let mut out = Vec::with_capacity(retained as usize);
        for ticket in head - retained..head {
            let idx = (ticket & self.mask) as usize;
            let word = self.words[idx].load(Ordering::Acquire);
            if let Some(event) = Event::decode(word) {
                out.push((self.stamps[idx].load(Ordering::Relaxed), event));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StealOutcome;

    fn steal(v: u32) -> Event {
        Event::StealAttempt {
            victim: v,
            outcome: StealOutcome::Success,
        }
    }

    #[test]
    fn records_in_order_below_capacity() {
        let ring = EventRing::new(8);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.record(i * 10, steal(i as u32));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 0);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        for (i, &(at, ev)) in snap.iter().enumerate() {
            assert_eq!(at, i as u64 * 10);
            assert_eq!(ev, steal(i as u32));
        }
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let ring = EventRing::new(4);
        for i in 0..21u32 {
            ring.record(u64::from(i), steal(i));
        }
        assert_eq!(ring.recorded(), 21);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 17);
        let victims: Vec<u32> = ring
            .snapshot()
            .iter()
            .map(|&(_, ev)| match ev {
                Event::StealAttempt { victim, .. } => victim,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(victims, vec![17, 18, 19, 20]);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::new(5).capacity(), 8);
        assert_eq!(EventRing::new(1).capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = EventRing::new(0);
    }

    #[test]
    fn concurrent_writers_never_lose_the_count() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(64));
        let threads = 4;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        ring.record(i, steal(t as u32));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), threads as u64 * per_thread);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 64);
        // Quiescent snapshot: every slot decodes to a valid event.
        for (_, ev) in snap {
            assert!(matches!(ev, Event::StealAttempt { .. }));
        }
    }
}
