//! Live metrics: seqlock-published per-worker counters readable without
//! quiescing the pool.
//!
//! [`RunReport`](crate::RunReport) answers "where did the time go" only
//! after a run drains; admission control and elastic sizing need the
//! same signal *mid-run*. The [`MetricsHub`] is the bridge: each worker
//! owns one cache-line-isolated cell and publishes its busy/steal/park
//! nanosecond totals with plain relaxed stores; any thread may
//! [`sample`](MetricsHub::sample) the hub at any time and gets a
//! per-cell-consistent snapshot.
//!
//! ## The seqlock protocol
//!
//! Classic seqlocks bracket a writer critical section with two counter
//! bumps (odd = in progress). Our writers never hold an open section —
//! every update writes exactly one field — so the protocol degenerates
//! to a version counter:
//!
//! * **Writer** (the owning worker, single-writer by construction):
//!   `field.store(total, Relaxed)` then `seq.store(seq + 1, Release)` —
//!   two relaxed-class stores, no RMW, no fence on x86.
//! * **Reader** (any thread): load `seq` (Acquire), load the fields,
//!   re-load `seq` (Acquire); if the two loads agree the fields are a
//!   consistent cut, otherwise retry. Individual fields are `AtomicU64`,
//!   so a "torn" retry can only mean *skew between fields*, never a
//!   torn word; after a bounded number of retries the reader accepts
//!   the latest values (the counters are monotone, so skew is bounded
//!   by one in-flight update).
//!
//! Hosts create a hub only when a real telemetry sink is attached, so
//! the null path does not merely make these stores cheap — the stores
//! (and the `Instant` reads feeding them) do not exist.

use std::sync::atomic::{AtomicU64, Ordering};

/// One worker's published counters plus its version counter, padded to
/// a cache line so worker-to-worker publishing never false-shares.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Cell {
    /// Version counter: bumped (Release) after every field store.
    seq: AtomicU64,
    /// Nanoseconds spent executing tasks.
    busy_ns: AtomicU64,
    /// Nanoseconds spent in steal sweeps (victim selection + attempts).
    steal_ns: AtomicU64,
    /// Nanoseconds spent parked on the pool's condvar.
    parked_ns: AtomicU64,
    /// Tasks executed (jobs popped, injected, or stolen and run).
    tasks: AtomicU64,
}

/// Per-worker live counters published by the scheduler's hot paths and
/// readable from any thread without stopping the pool.
///
/// ```
/// use hermes_telemetry::MetricsHub;
/// let hub = MetricsHub::new(2);
/// hub.add_busy_ns(0, 1_000);
/// hub.add_task(0);
/// let s = hub.sample();
/// assert_eq!(s[0].busy_ns, 1_000);
/// assert_eq!(s[0].tasks, 1);
/// assert_eq!(s[1].busy_ns, 0);
/// ```
#[derive(Debug)]
pub struct MetricsHub {
    cells: Box<[Cell]>,
}

/// A consistent cut of one worker's [`MetricsHub`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerMetricsSample {
    /// Nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Nanoseconds spent in steal sweeps.
    pub steal_ns: u64,
    /// Nanoseconds spent parked.
    pub parked_ns: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Energy attributed to this worker so far, µJ. The hub does not
    /// track energy (the emulated-DVFS accountant is authoritative);
    /// hosts with an energy model fill this in when composing a
    /// [`MetricsSnapshot`], others leave it 0.
    pub energy_uj: u64,
}

impl MetricsHub {
    /// A hub for `workers` single-writer cells.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "at least one worker cell is required");
        MetricsHub {
            cells: (0..workers).map(|_| Cell::default()).collect(),
        }
    }

    /// Number of worker cells.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn publish(cell: &Cell, field: &AtomicU64, delta: u64) {
        // Single-writer: the owning worker is the only thread storing
        // to this cell, so load-add-store is race-free. Two stores per
        // update — the field total and the version bump.
        field.store(field.load(Ordering::Relaxed) + delta, Ordering::Relaxed);
        cell.seq
            .store(cell.seq.load(Ordering::Relaxed) + 1, Ordering::Release);
    }

    /// Add task-execution time to worker `w`'s cell. Call only from the
    /// owning worker (single-writer protocol).
    #[inline]
    pub fn add_busy_ns(&self, w: usize, ns: u64) {
        let cell = &self.cells[w];
        Self::publish(cell, &cell.busy_ns, ns);
    }

    /// Add steal-sweep time to worker `w`'s cell (owning worker only).
    #[inline]
    pub fn add_steal_ns(&self, w: usize, ns: u64) {
        let cell = &self.cells[w];
        Self::publish(cell, &cell.steal_ns, ns);
    }

    /// Add parked time to worker `w`'s cell (owning worker only).
    #[inline]
    pub fn add_parked_ns(&self, w: usize, ns: u64) {
        let cell = &self.cells[w];
        Self::publish(cell, &cell.parked_ns, ns);
    }

    /// Count one executed task on worker `w`'s cell (owning worker only).
    #[inline]
    pub fn add_task(&self, w: usize) {
        let cell = &self.cells[w];
        Self::publish(cell, &cell.tasks, 1);
    }

    /// Read every worker's counters as a consistent-per-cell snapshot.
    #[must_use]
    pub fn sample(&self) -> Vec<WorkerMetricsSample> {
        self.cells.iter().map(Self::sample_cell).collect()
    }

    fn sample_cell(cell: &Cell) -> WorkerMetricsSample {
        // Retry while the version moves under us; the counters are
        // monotone and each field load is atomic, so after the bounded
        // retries the latest (at worst one-update-skewed) cut is fine.
        let mut out = WorkerMetricsSample::default();
        for _ in 0..64 {
            let s1 = cell.seq.load(Ordering::Acquire);
            out = WorkerMetricsSample {
                busy_ns: cell.busy_ns.load(Ordering::Relaxed),
                steal_ns: cell.steal_ns.load(Ordering::Relaxed),
                parked_ns: cell.parked_ns.load(Ordering::Relaxed),
                tasks: cell.tasks.load(Ordering::Relaxed),
                energy_uj: 0,
            };
            if cell.seq.load(Ordering::Acquire) == s1 {
                break;
            }
        }
        out
    }
}

/// A live view of a pool (or server) at one instant, composed by the
/// host from its [`MetricsHub`] plus host-only signals (queue depth,
/// admission counters, the rolling latency histogram).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the host's epoch when the snapshot was taken —
    /// the denominator for utilization.
    pub at_ns: u64,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerMetricsSample>,
    /// Tasks waiting in the external-submission injector right now,
    /// summed across every cell of a sharded front door — the merged
    /// legacy view.
    pub injector_depth: usize,
    /// Per-cell injector depths, indexed by clock domain, for hosts
    /// whose front door is sharded. Empty means "single merged cell"
    /// (pre-sharding hosts and snapshots), and the field always sums
    /// to `injector_depth` when present — the back-compat contract.
    pub injector_cell_depths: Vec<usize>,
    /// Requests admitted but not yet completed (0 for bare pools).
    pub in_flight: u64,
    /// Workers currently awake (not in elastic sleep). Hosts without an
    /// elastic policy fill this with the full worker count; it is the
    /// live face of the pool's scale decisions (the
    /// `hermes_active_workers` Prometheus gauge).
    pub active_workers: usize,
    /// Rolling request-latency median, ns (serving hosts only).
    pub latency_p50_ns: Option<u64>,
    /// Rolling request-latency 99th percentile, ns (serving hosts only).
    pub latency_p99_ns: Option<u64>,
    /// Rolling per-request energy median, µJ (serving hosts with an
    /// energy model only).
    pub energy_p50_uj: Option<u64>,
    /// Rolling per-request energy 99th percentile, µJ.
    pub energy_p99_uj: Option<u64>,
    /// Telemetry events dropped to ring overflow so far (0 when the
    /// host has no bounded sink attached).
    pub dropped_events: u64,
}

impl MetricsSnapshot {
    /// Fraction of worker-time spent executing tasks since the epoch:
    /// `sum(busy) / (workers * at_ns)`, clamped to `[0, 1]`. Zero when
    /// no time has passed.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.workers.is_empty() || self.at_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        (busy as f64 / (self.workers.len() as f64 * self.at_ns as f64)).clamp(0.0, 1.0)
    }

    /// Total busy nanoseconds across workers.
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Total parked nanoseconds across workers.
    #[must_use]
    pub fn parked_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.parked_ns).sum()
    }

    /// Total tasks executed across workers.
    #[must_use]
    pub fn tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum()
    }

    /// Total energy attributed across workers, joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.workers.iter().map(|w| w.energy_uj).sum::<u64>() as f64 / 1e6
    }

    /// Average power drawn by worker `w` since the epoch, watts — its
    /// attributed energy over the snapshot's elapsed time. Zero when no
    /// time has passed.
    #[must_use]
    pub fn worker_watts(&self, w: usize) -> f64 {
        if self.at_ns == 0 {
            return 0.0;
        }
        (self.workers[w].energy_uj as f64 / 1e6) / (self.at_ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_per_worker() {
        let hub = MetricsHub::new(3);
        hub.add_busy_ns(0, 100);
        hub.add_busy_ns(0, 50);
        hub.add_steal_ns(1, 7);
        hub.add_parked_ns(2, 1_000);
        hub.add_task(0);
        hub.add_task(0);
        let s = hub.sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].busy_ns, 150);
        assert_eq!(s[0].tasks, 2);
        assert_eq!(s[1].steal_ns, 7);
        assert_eq!(s[2].parked_ns, 1_000);
        assert_eq!(s[1].busy_ns, 0);
    }

    #[test]
    fn concurrent_readers_see_monotone_counters() {
        // One writer hammering a cell, readers sampling concurrently:
        // every observed busy_ns must be monotone non-decreasing per
        // reader (the seqlock never serves a rolled-back value).
        let hub = Arc::new(MetricsHub::new(1));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let hub = Arc::clone(&hub);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = hub.sample()[0];
                        assert!(s.busy_ns >= last, "{} rolled back past {last}", s.busy_ns);
                        last = s.busy_ns;
                    }
                })
            })
            .collect();
        for _ in 0..100_000 {
            hub.add_busy_ns(0, 1);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(hub.sample()[0].busy_ns, 100_000);
    }

    #[test]
    fn utilization_is_busy_over_worker_time() {
        let snap = MetricsSnapshot {
            at_ns: 1_000,
            workers: vec![
                WorkerMetricsSample {
                    busy_ns: 600,
                    ..Default::default()
                },
                WorkerMetricsSample {
                    busy_ns: 400,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert!((snap.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(snap.busy_ns(), 1_000);
        assert_eq!(MetricsSnapshot::default().utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_worker_hub_panics() {
        let _ = MetricsHub::new(0);
    }

    #[test]
    fn energy_and_watts_derive_from_host_filled_samples() {
        let snap = MetricsSnapshot {
            at_ns: 2_000_000_000, // 2 s
            workers: vec![
                WorkerMetricsSample {
                    energy_uj: 16_000_000, // 16 J → 8 W over 2 s
                    ..Default::default()
                },
                WorkerMetricsSample {
                    energy_uj: 1_000_000, // 1 J → 0.5 W
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert!((snap.energy_j() - 17.0).abs() < 1e-9);
        assert!((snap.worker_watts(0) - 8.0).abs() < 1e-9);
        assert!((snap.worker_watts(1) - 0.5).abs() < 1e-9);
        assert_eq!(MetricsSnapshot::default().energy_j(), 0.0);
    }
}
